//! A segmented, CRC-framed write-ahead log with tiered append lanes.
//!
//! The paper requires external messages to be logged "either to external
//! stable storage, or to the backup machine" (§II.E). This module is the
//! stable-storage half done properly: an append-only log split into
//! fixed-threshold **segments**, each record framed as
//! `u32 length (BE) | u32 crc32 (BE) | body`, with a pluggable
//! [`FsyncPolicy`] governing when appends are forced to disk and a
//! per-record [`DurabilityPolicy`] lane API ([`Wal::append_lane`]) layered
//! on top of the same log.
//!
//! # Write path
//!
//! Appends **frame into a user-space staging buffer** and hand completed
//! commit windows to a background flusher thread as jobs; the flusher owns
//! all file I/O (seek + write + fsync + rotation). Encoding therefore never
//! blocks on `sync_all` — while one buffer is being synced the next window
//! accumulates in a recycled spare (double buffering). Lanes share the one
//! log, so record order on disk is exactly append order across tiers:
//!
//! - [`DurabilityPolicy::Strict`] promotes the staging buffer with an fsync
//!   and blocks until the record is durable. A strict record riding behind
//!   buffered records forces the whole open window to disk with it.
//! - [`DurabilityPolicy::Buffered`] stages and returns immediately; the
//!   flusher closes the window when its `flush_window` deadline expires or
//!   when [`BUFFERED_MAX_RECORDS`] records have accumulated.
//! - [`DurabilityPolicy::InMemory`] records never reach the WAL at all
//!   (callers skip it; the lane API refuses them).
//!
//! Segments are **preallocated** to the rotation threshold (up to 1 GiB) so
//! steady-state appends never extend the file, and the flusher keeps one
//! preallocated spare (`wal-NNNNNNNN.pre`) ready to rename into place at
//! rotation — a one-deep recycle pool. Sealing truncates the segment to its
//! logical length, so sealed segments are always exact-sized.
//!
//! # Recovery
//!
//! Recovery ([`Wal::open`]) scans every segment in order. Sealed segments
//! (every segment but the last) were fsynced at rotation and must parse
//! completely — any corruption there is a hard [`WalError::Corrupt`]. The
//! *final* segment may legitimately end in a torn record (the crash the log
//! exists to survive): the scan stops at the first invalid record, truncates
//! the file back to the last valid one, and reports how many bytes were
//! discarded in the [`WalRecovery`] report. An **all-zero tail** is
//! preallocation padding, not a torn record: it is kept in place and
//! reported as zero truncated bytes.

use std::collections::VecDeque;
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use tart_codec::crc32;

/// Per-record frame overhead: u32 length + u32 crc.
pub(crate) const FRAME_HEADER: usize = 8;

/// Record cap on a [`DurabilityPolicy::Buffered`] commit window: the window
/// closes early once this many records have staged, whatever the
/// `flush_window` deadline says. This is the "one flush window" that bounds
/// Buffered loss in DURABILITY.md, and the cap the durability bench gates
/// against.
pub const BUFFERED_MAX_RECORDS: u32 = 512;

/// Segments at or below this size are preallocated to the rotation
/// threshold at creation (and recycled through the spare pool). Larger
/// thresholds — e.g. the `u64::MAX` used by single-segment tests — grow on
/// demand instead.
const PREALLOC_LIMIT: u64 = 1 << 30;

/// The single wall-clock read of the WAL plane. Group-commit windows,
/// per-tier flush deadlines, and fsync-latency telemetry all take their
/// `Instant`s here — this is the one reasoned TAINT-FLOW boundary for the
/// module. Commit pacing decides *when* bytes reach disk, never *which*
/// bytes, so replayed logic cannot observe it.
#[allow(clippy::disallowed_methods)]
fn wall_now() -> Instant {
    Instant::now()
}

/// When appended records are forced to stable storage.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Fsync after every append: nothing acknowledged is ever lost, at the
    /// cost of one disk round-trip per record.
    Always,
    /// Fsync after every `n` appends: bounds loss to at most `n - 1`
    /// acknowledged records.
    Interval(u32),
    /// Group commit: one fsync amortized across a commit window. The log
    /// syncs when `max_records` appends have accumulated, or when the
    /// oldest staged append turns `max_delay` old (the flusher thread wakes
    /// on the deadline — no follow-up append is needed). Loss is bounded to
    /// the open window; rotation and [`Wal::sync`] still force everything
    /// down regardless.
    GroupCommit {
        /// Appends that force a sync (clamped to at least 1).
        max_records: u32,
        /// Age of the oldest unsynced append that forces a sync.
        max_delay: Duration,
    },
    /// Never fsync explicitly; the OS flushes when it pleases. Fastest, and
    /// a whole-machine crash may lose everything since the last rotation
    /// (rotation always seals with an fsync).
    Never,
}

/// Per-component durability tier (ROADMAP item 3; see DURABILITY.md for the
/// normative contract table).
///
/// The derived ordering is by strictness — `InMemory < Buffered < Strict` —
/// so the strictest tier hosted by an engine is the `max()` of its
/// components' tiers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum DurabilityPolicy {
    /// No stable storage at all: the component's inputs live only in
    /// memory and its recovery source is peer replay (upstream retention
    /// buffers). A machine crash loses whatever peers cannot resend.
    InMemory,
    /// Inputs ride the shared group-commit window and are acknowledged
    /// before they are durable: a crash loses at most the open window
    /// (`flush_window` of time, capped at [`BUFFERED_MAX_RECORDS`]
    /// records).
    Buffered {
        /// Maximum age of a staged record before the flusher forces the
        /// window closed.
        flush_window: Duration,
    },
    /// Every input is fsynced before the append returns: acknowledged
    /// records are never lost, and a strict append forces any riding
    /// buffered records down with it.
    Strict,
}

/// Errors from the write-ahead log.
#[derive(Debug)]
pub enum WalError {
    /// Underlying file I/O failed.
    Io(std::io::Error),
    /// A sealed (non-final) segment failed verification — stable storage
    /// itself has decayed, which truncation must not paper over.
    Corrupt {
        /// File name of the offending segment.
        segment: String,
        /// Byte offset of the first bad record within it.
        offset: u64,
    },
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal i/o failed: {e}"),
            WalError::Corrupt { segment, offset } => {
                write!(f, "sealed wal segment {segment} corrupt at offset {offset}")
            }
        }
    }
}

impl std::error::Error for WalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WalError::Io(e) => Some(e),
            WalError::Corrupt { .. } => None,
        }
    }
}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e)
    }
}

/// What [`Wal::open`] found on disk.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WalRecovery {
    /// Records recovered, oldest first, with frames already verified.
    pub records: Vec<Vec<u8>>,
    /// Bytes discarded from the torn/corrupt tail of the final segment
    /// (zero on a clean shutdown; preallocation padding does not count).
    pub truncated_bytes: u64,
    /// Number of segment files scanned.
    pub segments: usize,
}

/// One scanned segment: the valid records and where validity ended.
pub(crate) struct SegmentScan {
    pub(crate) records: Vec<Vec<u8>>,
    /// Offset just past the last valid record.
    pub(crate) valid_len: u64,
    /// Total bytes in the file.
    pub(crate) file_len: u64,
}

pub(crate) fn scan_segment(bytes: &[u8]) -> SegmentScan {
    let mut records = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        if pos + FRAME_HEADER > bytes.len() {
            break; // torn header
        }
        let len = u32::from_be_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_be_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes"));
        if len == 0 && crc == 0 {
            // Eight zero bytes are preallocation padding, never a record:
            // empty bodies are refused at append time precisely so the
            // scanner can tell padding from data.
            break;
        }
        let end = pos + FRAME_HEADER + len;
        if end > bytes.len() {
            break; // torn body
        }
        let body = &bytes[pos + FRAME_HEADER..end];
        if crc32(body) != crc {
            break; // corrupt record — caller decides whether that is fatal
        }
        records.push(body.to_vec());
        pos = end;
    }
    SegmentScan {
        records,
        valid_len: pos as u64,
        file_len: bytes.len() as u64,
    }
}

fn segment_name(index: u64) -> String {
    format!("wal-{index:08}.seg")
}

fn spare_name(index: u64) -> String {
    format!("wal-{index:08}.pre")
}

/// Appends one `u32 length | u32 crc32 | body` frame to `buf`.
fn frame_into(buf: &mut Vec<u8>, body: &[u8]) {
    buf.reserve(body.len() + FRAME_HEADER);
    buf.extend_from_slice(&(body.len() as u32).to_be_bytes());
    buf.extend_from_slice(&crc32(body).to_be_bytes());
    buf.extend_from_slice(body);
}

/// One unit of flusher work: a closed commit window (or a bare fsync /
/// rotation marker) bound for a specific segment offset.
struct Job {
    segment: u64,
    offset: u64,
    buf: Vec<u8>,
    /// Highest record index covered once this job lands.
    high: u64,
    /// Records carried in `buf` (zero for bare fsync / seal jobs).
    records: u32,
    sync: bool,
    /// Whether a strict-lane append closed this window (telemetry only).
    strict: bool,
    rotate_after: bool,
    /// Logical length to seal the segment at when rotating.
    seal_len: u64,
}

/// Everything the appender and the flusher share, under one mutex.
struct State {
    /// Open commit window: frames staged in user space, not yet handed to
    /// the flusher.
    staging: Vec<u8>,
    staging_records: u32,
    /// When the flusher must force the open window closed.
    staging_deadline: Option<Instant>,
    /// Segment the staging buffer will land in.
    staging_segment: u64,
    /// Bytes of that segment already promoted to the flusher.
    staging_offset: u64,
    segment_bytes: u64,
    segment_count: u64,
    /// Records assigned an index so far (1-based; 0 = none).
    assigned: u64,
    /// Highest index handed to the kernel (written, maybe unsynced).
    written_index: u64,
    /// Highest index covered by a completed fsync.
    durable_index: u64,
    jobs: VecDeque<Job>,
    inflight: bool,
    /// First flusher I/O failure; sticky — surfaces on every later call.
    error: Option<(std::io::ErrorKind, String)>,
    shutdown: bool,
    /// Set by [`Wal::crash_discard`]: the open window is gone and shutdown
    /// must not flush or tidy the files.
    crashed: bool,
    /// Recycled window buffers (double buffering).
    spare_bufs: Vec<Vec<u8>>,
    obs: Option<Arc<tart_obs::ObsHub>>,
}

struct Shared {
    state: Mutex<State>,
    /// Wakes the flusher: new job, new deadline, shutdown, crash.
    work: Condvar,
    /// Wakes appenders waiting on durability or drain.
    done: Condvar,
}

fn lock_state(shared: &Shared) -> MutexGuard<'_, State> {
    shared.state.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Stages one framed record into the open window; returns its index.
fn stage(st: &mut State, body: &[u8]) -> u64 {
    frame_into(&mut st.staging, body);
    st.staging_records += 1;
    st.assigned += 1;
    st.assigned
}

/// Closes the open window into a flusher job. Rotation is decided here — a
/// window that pushes the segment past its threshold seals it (sealing
/// always fsyncs, whatever `sync` says). No-op when there is nothing to
/// write and no rotation due.
fn promote_locked(st: &mut State, sync: bool, strict: bool) {
    let rotate = st.staging_offset + st.staging.len() as u64 >= st.segment_bytes;
    if st.staging.is_empty() && !rotate {
        return;
    }
    let buf = std::mem::replace(&mut st.staging, st.spare_bufs.pop().unwrap_or_default());
    let seal_len = st.staging_offset + buf.len() as u64;
    let job = Job {
        segment: st.staging_segment,
        offset: st.staging_offset,
        high: st.assigned,
        records: st.staging_records,
        sync: sync || rotate,
        strict,
        rotate_after: rotate,
        seal_len,
        buf,
    };
    st.staging_records = 0;
    st.staging_deadline = None;
    if rotate {
        st.staging_segment += 1;
        st.staging_offset = 0;
        st.segment_count += 1;
    } else {
        st.staging_offset = seal_len;
    }
    st.jobs.push_back(job);
}

/// The flusher's side of the world: file handles and the spare-segment
/// recycle pool. Lives on the flusher thread; never touches the mutex.
struct FlusherIo {
    dir: PathBuf,
    segment_bytes: u64,
    prealloc: bool,
    current: Option<(u64, File)>,
    spare: Option<(u64, PathBuf)>,
}

impl FlusherIo {
    fn file_for(&mut self, segment: u64) -> std::io::Result<&File> {
        let cached = matches!(&self.current, Some((idx, _)) if *idx == segment);
        if !cached {
            let path = self.dir.join(segment_name(segment));
            let file = OpenOptions::new().write(true).open(&path)?;
            self.current = Some((segment, file));
        }
        Ok(&self.current.as_ref().expect("segment file cached").1)
    }

    fn create_segment(&self, path: &Path) -> std::io::Result<File> {
        let f = OpenOptions::new().create_new(true).write(true).open(path)?;
        if self.prealloc {
            f.set_len(self.segment_bytes)?;
        }
        Ok(f)
    }

    /// Makes segment `index` the current file: renames the preallocated
    /// spare into place when it matches, creates fresh otherwise, and
    /// fsyncs the directory so the new name is durable.
    fn install_segment(&mut self, index: u64) -> std::io::Result<()> {
        let path = self.dir.join(segment_name(index));
        let file = match self.spare.take() {
            Some((spare_idx, spare_path)) if spare_idx == index => {
                fs::rename(&spare_path, &path)?;
                OpenOptions::new().write(true).open(&path)?
            }
            Some((_, spare_path)) => {
                let _ = fs::remove_file(&spare_path);
                self.create_segment(&path)?
            }
            None => self.create_segment(&path)?,
        };
        sync_dir(&self.dir)?;
        self.current = Some((index, file));
        Ok(())
    }

    /// Best-effort: keep one preallocated `.pre` file ready for the next
    /// rotation. Failure here never fails an append — the rotation path
    /// just falls back to `create_new`.
    fn replenish_spare(&mut self, index: u64) {
        if !self.prealloc || self.spare.is_some() {
            return;
        }
        let path = self.dir.join(spare_name(index));
        match OpenOptions::new().create_new(true).write(true).open(&path) {
            Ok(f) if f.set_len(self.segment_bytes).is_ok() => {
                self.spare = Some((index, path));
            }
            Ok(_) => {
                let _ = fs::remove_file(&path);
            }
            Err(_) => {}
        }
    }

    fn discard_spare(&mut self) {
        if let Some((_, path)) = self.spare.take() {
            let _ = fs::remove_file(path);
        }
    }

    fn process(&mut self, job: &Job, obs: Option<&tart_obs::ObsHub>) -> std::io::Result<()> {
        {
            let mut file = self.file_for(job.segment)?;
            if !job.buf.is_empty() {
                file.seek(SeekFrom::Start(job.offset))?;
                file.write_all(&job.buf)?;
            }
            if job.sync {
                let t0 = wall_now();
                file.sync_data()?;
                let ns = wall_now().duration_since(t0).as_nanos() as u64;
                if let Some(hub) = obs {
                    if job.records > 0 {
                        hub.wal_group_commit(u64::from(job.records));
                    }
                    hub.wal_fsync_ns(job.strict, ns);
                }
            }
            if job.rotate_after {
                file.set_len(job.seal_len)?;
                file.sync_all()?;
            }
        }
        if job.rotate_after {
            self.current = None;
            self.install_segment(job.segment + 1)?;
            self.replenish_spare(job.segment + 2);
        }
        Ok(())
    }
}

fn run_flusher(shared: Arc<Shared>, mut io: FlusherIo) {
    let mut g = lock_state(&shared);
    loop {
        if let Some(mut job) = g.jobs.pop_front() {
            g.inflight = true;
            let obs = g.obs.clone();
            drop(g);
            let result = io.process(&job, obs.as_deref());
            g = lock_state(&shared);
            g.inflight = false;
            match result {
                Ok(()) => {
                    g.written_index = g.written_index.max(job.high);
                    if job.sync {
                        g.durable_index = g.durable_index.max(job.high);
                    }
                    let mut buf = std::mem::take(&mut job.buf);
                    if !buf.is_empty() && g.spare_bufs.len() < 2 {
                        buf.clear();
                        g.spare_bufs.push(buf);
                    }
                }
                Err(e) => {
                    if g.error.is_none() {
                        g.error = Some((e.kind(), e.to_string()));
                    }
                }
            }
            shared.done.notify_all();
            continue;
        }
        if g.shutdown {
            break;
        }
        if !g.staging.is_empty() && !g.crashed {
            if let Some(deadline) = g.staging_deadline {
                let now = wall_now();
                if now >= deadline {
                    promote_locked(&mut g, true, false);
                    continue;
                }
                let (guard, _) = shared
                    .work
                    .wait_timeout(g, deadline - now)
                    .unwrap_or_else(PoisonError::into_inner);
                g = guard;
                continue;
            }
        }
        g = shared.work.wait(g).unwrap_or_else(PoisonError::into_inner);
    }
    let crashed = g.crashed;
    drop(g);
    if !crashed {
        io.discard_spare();
    }
}

/// Removes stray preallocated spares; they are advisory and never hold data.
fn clear_spares(dir: &Path) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        if entry.file_name().to_string_lossy().ends_with(".pre") {
            let _ = fs::remove_file(entry.path());
        }
    }
    Ok(())
}

/// A segmented, CRC-framed append-only log of opaque byte records.
///
/// # Example
///
/// ```
/// use tart_engine::{FsyncPolicy, Wal};
///
/// let dir = std::env::temp_dir().join(format!("wal-doc-{}", std::process::id()));
/// let mut wal = Wal::create(&dir, 1024, FsyncPolicy::Always)?;
/// wal.append(b"hello")?;
/// drop(wal);
/// let (wal, recovery) = Wal::open(&dir, 1024, FsyncPolicy::Always)?;
/// assert_eq!(recovery.records, vec![b"hello".to_vec()]);
/// assert_eq!(recovery.truncated_bytes, 0);
/// drop(wal);
/// std::fs::remove_dir_all(&dir).ok();
/// # Ok::<(), tart_engine::WalError>(())
/// ```
pub struct Wal {
    dir: PathBuf,
    policy: FsyncPolicy,
    shared: Arc<Shared>,
    flusher: Option<JoinHandle<()>>,
}

impl Wal {
    /// Creates a fresh WAL in `dir` (which must be empty of segments),
    /// rotating segments once they exceed `segment_bytes`.
    ///
    /// # Errors
    ///
    /// Returns [`WalError::Io`] if the directory cannot be created or
    /// already contains segment files.
    pub fn create(
        dir: impl AsRef<Path>,
        segment_bytes: u64,
        policy: FsyncPolicy,
    ) -> Result<Self, WalError> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        if !list_segments(&dir)?.is_empty() {
            return Err(WalError::Io(std::io::Error::new(
                std::io::ErrorKind::AlreadyExists,
                "wal directory already contains segments; use Wal::open to recover",
            )));
        }
        clear_spares(&dir)?;
        let segment_bytes = segment_bytes.max(FRAME_HEADER as u64 + 1);
        let first = OpenOptions::new()
            .create_new(true)
            .write(true)
            .open(dir.join(segment_name(0)))?;
        if segment_bytes <= PREALLOC_LIMIT {
            first.set_len(segment_bytes)?;
        }
        drop(first);
        Ok(Wal::start(dir, segment_bytes, policy, 0, 0, 1))
    }

    /// Opens an existing WAL, verifying every record. Sealed segments must
    /// be fully valid; a torn or corrupt tail of the final segment is
    /// truncated away and reported. An all-zero tail is preallocation
    /// padding and is kept.
    ///
    /// # Errors
    ///
    /// Returns [`WalError::Corrupt`] for sealed-segment corruption or
    /// [`WalError::Io`] on read failure.
    pub fn open(
        dir: impl AsRef<Path>,
        segment_bytes: u64,
        policy: FsyncPolicy,
    ) -> Result<(Self, WalRecovery), WalError> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        clear_spares(&dir)?;
        let segments = list_segments(&dir)?;
        if segments.is_empty() {
            let wal = Wal::create(&dir, segment_bytes, policy)?;
            return Ok((wal, WalRecovery::default()));
        }
        let mut recovery = WalRecovery {
            segments: segments.len(),
            ..WalRecovery::default()
        };
        let last = segments.len() - 1;
        let mut last_valid_len = 0u64;
        for (i, (index, path)) in segments.iter().enumerate() {
            let mut bytes = Vec::new();
            File::open(path)?.read_to_end(&mut bytes)?;
            let scan = scan_segment(&bytes);
            if scan.valid_len < scan.file_len {
                let tail_is_padding = bytes[scan.valid_len as usize..].iter().all(|b| *b == 0);
                if tail_is_padding {
                    // Preallocation padding past the last record — clean.
                } else if i < last {
                    return Err(WalError::Corrupt {
                        segment: segment_name(*index),
                        offset: scan.valid_len,
                    });
                } else {
                    // Torn or corrupt tail of the active segment: truncate
                    // back to the last valid record so appends continue
                    // cleanly.
                    recovery.truncated_bytes = scan.file_len - scan.valid_len;
                    let f = OpenOptions::new().write(true).open(path)?;
                    f.set_len(scan.valid_len)?;
                    f.sync_all()?;
                }
            }
            if i == last {
                last_valid_len = scan.valid_len;
            }
            recovery.records.extend(scan.records);
        }
        let segment_bytes = segment_bytes.max(FRAME_HEADER as u64 + 1);
        let active_index = segments[last].0;
        let wal = Wal::start(
            dir,
            segment_bytes,
            policy,
            active_index,
            last_valid_len,
            segments.len() as u64,
        );
        // A recovered active segment past the threshold seals immediately
        // (an empty promote still rotates when the offset is past the
        // threshold).
        {
            let mut g = wal.lock();
            if g.staging_offset >= g.segment_bytes {
                promote_locked(&mut g, true, false);
                wal.shared.work.notify_one();
            }
        }
        Ok((wal, recovery))
    }

    fn start(
        dir: PathBuf,
        segment_bytes: u64,
        policy: FsyncPolicy,
        staging_segment: u64,
        staging_offset: u64,
        segment_count: u64,
    ) -> Self {
        let state = State {
            staging: Vec::new(),
            staging_records: 0,
            staging_deadline: None,
            staging_segment,
            staging_offset,
            segment_bytes,
            segment_count,
            assigned: 0,
            written_index: 0,
            durable_index: 0,
            jobs: VecDeque::new(),
            inflight: false,
            error: None,
            shutdown: false,
            crashed: false,
            spare_bufs: Vec::new(),
            obs: None,
        };
        let shared = Arc::new(Shared {
            state: Mutex::new(state),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let io = FlusherIo {
            dir: dir.clone(),
            segment_bytes,
            prealloc: segment_bytes <= PREALLOC_LIMIT,
            current: None,
            spare: None,
        };
        let flusher = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("tart-wal-flusher".into())
                .spawn(move || run_flusher(shared, io))
                .expect("spawn wal flusher thread")
        };
        Wal {
            dir,
            policy,
            shared,
            flusher: Some(flusher),
        }
    }

    fn lock(&self) -> MutexGuard<'_, State> {
        lock_state(&self.shared)
    }

    fn check_error(st: &State) -> Result<(), WalError> {
        if let Some((kind, msg)) = &st.error {
            return Err(WalError::Io(std::io::Error::new(*kind, msg.clone())));
        }
        Ok(())
    }

    fn reject_empty(body: &[u8]) -> Result<(), WalError> {
        if body.is_empty() {
            return Err(WalError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "empty record bodies are not supported (an all-zero frame is \
                 indistinguishable from preallocation padding)",
            )));
        }
        Ok(())
    }

    /// Blocks until every record up to `idx` is fsynced (or the flusher has
    /// failed).
    fn wait_durable(&self, idx: u64) -> Result<(), WalError> {
        let mut g = self.lock();
        loop {
            if g.durable_index >= idx {
                return Ok(());
            }
            Self::check_error(&g)?;
            g = self
                .shared
                .done
                .wait(g)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Applies the legacy [`FsyncPolicy`] after records landed in staging.
    /// Returns whether the caller must block for durability.
    fn apply_policy(&self, g: &mut State) -> bool {
        let rotate_pending = g.staging_offset + g.staging.len() as u64 >= g.segment_bytes;
        match self.policy {
            FsyncPolicy::Always => {
                promote_locked(g, true, false);
                true
            }
            FsyncPolicy::Interval(n) => {
                if g.staging_records >= n.max(1) || rotate_pending {
                    promote_locked(g, true, false);
                }
                false
            }
            FsyncPolicy::GroupCommit {
                max_records,
                max_delay,
            } => {
                if g.staging_records >= max_records.max(1) || rotate_pending {
                    promote_locked(g, true, false);
                } else {
                    let d = wall_now() + max_delay;
                    g.staging_deadline = Some(match g.staging_deadline {
                        Some(cur) => cur.min(d),
                        None => d,
                    });
                }
                false
            }
            FsyncPolicy::Never => {
                promote_locked(g, false, false);
                false
            }
        }
    }

    /// Appends one record, framing it with length and CRC, honouring the
    /// fsync policy, and rotating the segment past the byte threshold.
    ///
    /// # Errors
    ///
    /// Returns [`WalError::Io`] if the write (or a policy-mandated fsync)
    /// fails, or if `body` is empty.
    pub fn append(&mut self, body: &[u8]) -> Result<(), WalError> {
        Self::reject_empty(body)?;
        let (idx, wait) = {
            let mut g = self.lock();
            Self::check_error(&g)?;
            let idx = stage(&mut g, body);
            let wait = self.apply_policy(&mut g);
            self.shared.work.notify_one();
            (idx, wait)
        };
        if wait {
            self.wait_durable(idx)?;
        }
        Ok(())
    }

    /// Appends a whole batch of records with **one** staged window,
    /// applying the fsync policy once for the batch and checking the
    /// rotation threshold once at the end (never mid-batch): a batch that
    /// straddles the threshold seals exactly one segment. Returns the
    /// number of records appended.
    ///
    /// # Errors
    ///
    /// Returns [`WalError::Io`] if the write (or a policy-mandated fsync)
    /// fails, or if any body is empty.
    pub fn append_all<'a, I>(&mut self, bodies: I) -> Result<u32, WalError>
    where
        I: IntoIterator<Item = &'a [u8]>,
    {
        let (idx, count, wait) = {
            let mut g = self.lock();
            Self::check_error(&g)?;
            let mut count: u32 = 0;
            for body in bodies {
                Self::reject_empty(body)?;
                stage(&mut g, body);
                count += 1;
            }
            if count == 0 {
                return Ok(0);
            }
            let wait = self.apply_policy(&mut g);
            self.shared.work.notify_one();
            (g.assigned, count, wait)
        };
        if wait {
            self.wait_durable(idx)?;
        }
        Ok(count)
    }

    /// Appends one record on an explicit durability lane, bypassing the
    /// log-wide [`FsyncPolicy`]. All lanes share the same segments, so disk
    /// order is append order across tiers. Returns the record's 1-based
    /// index within this process's session (compare with
    /// [`Wal::durable_index`]).
    ///
    /// - [`DurabilityPolicy::Strict`]: forces the open window (including
    ///   any riding buffered records) to disk and blocks until durable.
    /// - [`DurabilityPolicy::Buffered`]: stages and returns; the flusher
    ///   closes the window at the `flush_window` deadline or at
    ///   [`BUFFERED_MAX_RECORDS`] staged records, whichever comes first.
    /// - [`DurabilityPolicy::InMemory`]: refused — such records must never
    ///   reach the WAL; the caller keeps them in memory only.
    ///
    /// # Errors
    ///
    /// Returns [`WalError::Io`] on write/fsync failure, for an empty body,
    /// or for the `InMemory` tier.
    pub fn append_lane(&mut self, body: &[u8], tier: DurabilityPolicy) -> Result<u64, WalError> {
        Self::reject_empty(body)?;
        match tier {
            DurabilityPolicy::InMemory => Err(WalError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "InMemory records never reach the WAL",
            ))),
            DurabilityPolicy::Strict => {
                let idx = {
                    let mut g = self.lock();
                    Self::check_error(&g)?;
                    let idx = stage(&mut g, body);
                    promote_locked(&mut g, true, true);
                    self.shared.work.notify_one();
                    idx
                };
                self.wait_durable(idx)?;
                Ok(idx)
            }
            DurabilityPolicy::Buffered { flush_window } => {
                let mut g = self.lock();
                Self::check_error(&g)?;
                let idx = stage(&mut g, body);
                let rotate_pending = g.staging_offset + g.staging.len() as u64 >= g.segment_bytes;
                if g.staging_records >= BUFFERED_MAX_RECORDS || rotate_pending {
                    promote_locked(&mut g, true, false);
                } else {
                    let d = wall_now() + flush_window;
                    g.staging_deadline = Some(match g.staging_deadline {
                        Some(cur) => cur.min(d),
                        None => d,
                    });
                }
                self.shared.work.notify_one();
                Ok(idx)
            }
        }
    }

    /// Forces everything appended so far to stable storage and closes any
    /// open commit window. Blocks until the fsync completes.
    ///
    /// # Errors
    ///
    /// Returns [`WalError::Io`] if the fsync fails.
    pub fn sync(&mut self) -> Result<(), WalError> {
        let target = {
            let mut g = self.lock();
            Self::check_error(&g)?;
            let target = g.assigned;
            if !g.staging.is_empty() {
                promote_locked(&mut g, true, false);
                self.shared.work.notify_one();
            } else if g.durable_index < target || !g.jobs.is_empty() {
                // Everything staged is already queued or written; a bare
                // fsync job (FIFO behind any pending writes) covers it.
                let job = Job {
                    segment: g.staging_segment,
                    offset: g.staging_offset,
                    buf: Vec::new(),
                    high: target,
                    records: 0,
                    sync: true,
                    strict: false,
                    rotate_after: false,
                    seal_len: g.staging_offset,
                };
                g.jobs.push_back(job);
                self.shared.work.notify_one();
            }
            target
        };
        self.wait_durable(target)
    }

    /// Simulates a process crash for recovery drills: the open commit
    /// window (records staged but not yet handed to the kernel) is
    /// discarded, queued windows drain to the file, and the WAL refuses
    /// further tidying on drop — files are left exactly as the "crash"
    /// found them, preallocation padding included. Returns the highest
    /// record index that reached the kernel (what [`Wal::open`] will
    /// recover after an in-process crash).
    pub fn crash_discard(&mut self) -> u64 {
        let mut g = self.lock();
        g.crashed = true;
        g.staging.clear();
        g.staging_records = 0;
        g.staging_deadline = None;
        self.shared.work.notify_all();
        while !g.jobs.is_empty() || g.inflight {
            g = self
                .shared
                .done
                .wait(g)
                .unwrap_or_else(PoisonError::into_inner);
        }
        g.written_index
    }

    /// Attaches the observability hub: every subsequent fsync records its
    /// latency (split by strict vs buffered lane) and how many appends the
    /// closed window accumulated.
    pub fn set_obs(&mut self, hub: Arc<tart_obs::ObsHub>) {
        self.lock().obs = Some(hub);
    }

    /// Highest record index covered by a completed fsync (1-based; 0 =
    /// none). Indices count appends within this process's session.
    pub fn durable_index(&self) -> u64 {
        self.lock().durable_index
    }

    /// Records staged in the open commit window, not yet handed to the
    /// flusher.
    pub fn staged_records(&self) -> u32 {
        self.lock().staging_records
    }

    /// The directory this WAL lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of segment files (sealed + active).
    pub fn segment_count(&self) -> u64 {
        self.lock().segment_count
    }
}

impl Drop for Wal {
    fn drop(&mut self) {
        let (segment, len, crashed) = {
            let mut g = self.lock();
            if !g.crashed && !g.staging.is_empty() {
                promote_locked(&mut g, false, false);
            }
            g.shutdown = true;
            self.shared.work.notify_all();
            (g.staging_segment, g.staging_offset, g.crashed)
        };
        if let Some(h) = self.flusher.take() {
            let _ = h.join();
        }
        if !crashed {
            // Clean close: trim preallocation padding so the active
            // segment's file length equals its logical length.
            if let Ok(f) = OpenOptions::new()
                .write(true)
                .open(self.dir.join(segment_name(segment)))
            {
                let _ = f.set_len(len);
            }
        }
    }
}

impl fmt::Debug for Wal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let g = self.lock();
        f.debug_struct("Wal")
            .field("dir", &self.dir)
            .field("segments", &g.segment_count)
            .field("assigned", &g.assigned)
            .field("durable", &g.durable_index)
            .field("policy", &self.policy)
            .finish()
    }
}

/// All segment files in `dir`, ascending by index.
fn list_segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>, WalError> {
    let mut segments = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(index) = name
            .strip_prefix("wal-")
            .and_then(|s| s.strip_suffix(".seg"))
            .and_then(|s| s.parse::<u64>().ok())
        {
            segments.push((index, entry.path()));
        }
    }
    segments.sort();
    Ok(segments)
}

/// Fsyncs a directory so renames/creations within it are durable (no-op on
/// platforms where directories cannot be opened).
pub(crate) fn sync_dir(dir: &Path) -> std::io::Result<()> {
    match File::open(dir) {
        Ok(f) => f.sync_all(),
        Err(_) => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tart-wal-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    /// Polls for an asynchronous flusher effect (deadline syncs land on the
    /// flusher's clock, not the appender's).
    fn wait_for(what: &str, mut cond: impl FnMut() -> bool) {
        let deadline = wall_now() + Duration::from_secs(10);
        while !cond() {
            assert!(wall_now() < deadline, "timed out waiting for {what}");
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    #[test]
    fn round_trip_and_reopen() {
        let dir = tmp("roundtrip");
        {
            let mut wal = Wal::create(&dir, 4096, FsyncPolicy::Always).unwrap();
            wal.append(b"one").unwrap();
            wal.append(b"two").unwrap();
            wal.append(b"three").unwrap();
        }
        let (mut wal, rec) = Wal::open(&dir, 4096, FsyncPolicy::Always).unwrap();
        assert_eq!(
            rec.records,
            vec![b"one".to_vec(), b"two".to_vec(), b"three".to_vec()]
        );
        assert_eq!(rec.truncated_bytes, 0);
        assert_eq!(rec.segments, 1);
        // Appends continue after recovery.
        wal.append(b"four").unwrap();
        drop(wal);
        let (_, rec) = Wal::open(&dir, 4096, FsyncPolicy::Always).unwrap();
        assert_eq!(rec.records.len(), 4);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rotation_seals_segments_at_threshold() {
        let dir = tmp("rotate");
        let mut wal = Wal::create(&dir, 32, FsyncPolicy::Never).unwrap();
        for i in 1..=10u8 {
            wal.append(&[i; 16]).unwrap();
        }
        assert!(wal.segment_count() > 1, "threshold forces rotation");
        drop(wal);
        let (_, rec) = Wal::open(&dir, 32, FsyncPolicy::Never).unwrap();
        assert_eq!(rec.records.len(), 10);
        assert!(rec.segments > 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_truncated_and_reported() {
        let dir = tmp("torn");
        {
            let mut wal = Wal::create(&dir, 4096, FsyncPolicy::Always).unwrap();
            wal.append(b"keep-me").unwrap();
            wal.append(b"torn-away").unwrap();
        }
        let seg = dir.join(segment_name(0));
        let full = fs::metadata(&seg).unwrap().len();
        let f = OpenOptions::new().write(true).open(&seg).unwrap();
        f.set_len(full - 4).unwrap();
        drop(f);
        let (mut wal, rec) = Wal::open(&dir, 4096, FsyncPolicy::Always).unwrap();
        assert_eq!(rec.records, vec![b"keep-me".to_vec()]);
        assert_eq!(
            rec.truncated_bytes,
            b"torn-away".len() as u64 + FRAME_HEADER as u64 - 4
        );
        // The file was physically truncated: a fresh append lands cleanly.
        wal.append(b"after").unwrap();
        drop(wal);
        let (_, rec) = Wal::open(&dir, 4096, FsyncPolicy::Always).unwrap();
        assert_eq!(rec.records, vec![b"keep-me".to_vec(), b"after".to_vec()]);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_tail_of_final_segment_is_truncated() {
        let dir = tmp("crc-tail");
        {
            let mut wal = Wal::create(&dir, 4096, FsyncPolicy::Always).unwrap();
            wal.append(b"solid").unwrap();
            wal.append(b"rotten").unwrap();
        }
        let seg = dir.join(segment_name(0));
        let mut bytes = fs::read(&seg).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        fs::write(&seg, &bytes).unwrap();
        let (_, rec) = Wal::open(&dir, 4096, FsyncPolicy::Always).unwrap();
        assert_eq!(rec.records, vec![b"solid".to_vec()]);
        assert!(rec.truncated_bytes > 0);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn preallocated_padding_is_not_a_torn_tail() {
        let dir = tmp("padding");
        let mut wal = Wal::create(&dir, 4096, FsyncPolicy::Never).unwrap();
        wal.append(b"one").unwrap();
        wal.append(b"two").unwrap();
        wal.sync().unwrap();
        let survived = wal.crash_discard();
        assert_eq!(survived, 2);
        drop(wal);
        let seg = dir.join(segment_name(0));
        assert_eq!(
            fs::metadata(&seg).unwrap().len(),
            4096,
            "a crash leaves the preallocated padding in place"
        );
        let (_, rec) = Wal::open(&dir, 4096, FsyncPolicy::Never).unwrap();
        assert_eq!(rec.records, vec![b"one".to_vec(), b"two".to_vec()]);
        assert_eq!(rec.truncated_bytes, 0, "zero padding is not a torn tail");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sealed_segment_corruption_is_fatal() {
        let dir = tmp("sealed");
        {
            let mut wal = Wal::create(&dir, 24, FsyncPolicy::Always).unwrap();
            for i in 1..=6u8 {
                wal.append(&[i; 16]).unwrap();
            }
            assert!(wal.segment_count() > 1);
        }
        // Flip a byte in the FIRST (sealed) segment's first record body.
        let seg = dir.join(segment_name(0));
        let mut bytes = fs::read(&seg).unwrap();
        bytes[FRAME_HEADER + 2] ^= 0x01;
        fs::write(&seg, &bytes).unwrap();
        match Wal::open(&dir, 24, FsyncPolicy::Always) {
            Err(WalError::Corrupt { segment, offset }) => {
                assert_eq!(segment, segment_name(0));
                assert_eq!(offset, 0);
            }
            other => panic!("expected sealed corruption, got {other:?}"),
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn interval_policy_stages_between_syncs() {
        let dir = tmp("interval");
        let mut wal = Wal::create(&dir, 4096, FsyncPolicy::Interval(3)).unwrap();
        for _ in 0..7 {
            wal.append(b"x").unwrap();
        }
        // 7 appends, windows promoted at 3 and 6: one record still staged.
        assert_eq!(wal.staged_records(), 1);
        wal.sync().unwrap();
        assert_eq!(wal.staged_records(), 0);
        assert_eq!(wal.durable_index(), 7);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn group_commit_syncs_at_max_records() {
        let dir = tmp("group-records");
        let policy = FsyncPolicy::GroupCommit {
            max_records: 4,
            max_delay: Duration::from_secs(3600),
        };
        let mut wal = Wal::create(&dir, 4096, policy).unwrap();
        for _ in 0..3 {
            wal.append(b"x").unwrap();
        }
        assert_eq!(wal.staged_records(), 3, "window still open");
        wal.append(b"x").unwrap();
        assert_eq!(wal.staged_records(), 0, "fourth append closed the window");
        wait_for("group-commit fsync", || wal.durable_index() == 4);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn group_commit_syncs_after_max_delay() {
        let dir = tmp("group-delay");
        let policy = FsyncPolicy::GroupCommit {
            max_records: 1_000_000,
            max_delay: Duration::from_millis(10),
        };
        let mut wal = Wal::create(&dir, 4096, policy).unwrap();
        wal.append(b"opens-the-window").unwrap();
        assert_eq!(wal.staged_records(), 1);
        // The flusher's own deadline timer forces the sync — no second
        // append is needed.
        wait_for("deadline fsync", || wal.durable_index() == 1);
        assert_eq!(wal.staged_records(), 0);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn strict_lane_blocks_until_durable() {
        let dir = tmp("strict");
        let mut wal = Wal::create(&dir, 4096, FsyncPolicy::Never).unwrap();
        let idx = wal
            .append_lane(b"ledger", DurabilityPolicy::Strict)
            .unwrap();
        assert_eq!(idx, 1);
        assert_eq!(
            wal.durable_index(),
            1,
            "a strict append returns only after its fsync completed"
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn strict_append_closes_the_buffered_window() {
        let dir = tmp("strict-closes");
        let buffered = DurabilityPolicy::Buffered {
            flush_window: Duration::from_secs(3600),
        };
        let mut wal = Wal::create(&dir, 4096, FsyncPolicy::Never).unwrap();
        wal.append_lane(b"buffered-1", buffered).unwrap();
        wal.append_lane(b"buffered-2", buffered).unwrap();
        assert_eq!(wal.staged_records(), 2);
        wal.append_lane(b"strict", DurabilityPolicy::Strict)
            .unwrap();
        assert_eq!(wal.staged_records(), 0);
        assert_eq!(
            wal.durable_index(),
            3,
            "the strict fsync carried the riding buffered records with it"
        );
        drop(wal);
        let (_, rec) = Wal::open(&dir, 4096, FsyncPolicy::Never).unwrap();
        assert_eq!(
            rec.records,
            vec![
                b"buffered-1".to_vec(),
                b"buffered-2".to_vec(),
                b"strict".to_vec()
            ],
            "lanes share one log: disk order is append order"
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn buffered_lane_flushes_at_record_cap() {
        let dir = tmp("buffered-cap");
        let buffered = DurabilityPolicy::Buffered {
            flush_window: Duration::from_secs(3600),
        };
        let mut wal = Wal::create(&dir, 1 << 24, FsyncPolicy::Never).unwrap();
        for _ in 0..BUFFERED_MAX_RECORDS {
            wal.append_lane(b"x", buffered).unwrap();
        }
        assert_eq!(wal.staged_records(), 0, "the cap closed the window");
        wait_for("cap fsync", || {
            wal.durable_index() == u64::from(BUFFERED_MAX_RECORDS)
        });
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn buffered_lane_flushes_at_deadline() {
        let dir = tmp("buffered-deadline");
        let buffered = DurabilityPolicy::Buffered {
            flush_window: Duration::from_millis(10),
        };
        let mut wal = Wal::create(&dir, 4096, FsyncPolicy::Never).unwrap();
        wal.append_lane(b"hot-path", buffered).unwrap();
        assert_eq!(wal.staged_records(), 1, "buffered append returns open");
        wait_for("flush-window fsync", || wal.durable_index() == 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crash_discard_drops_the_open_window() {
        let dir = tmp("crash-discard");
        let buffered = DurabilityPolicy::Buffered {
            flush_window: Duration::from_secs(3600),
        };
        let mut wal = Wal::create(&dir, u64::MAX, FsyncPolicy::Never).unwrap();
        wal.append(b"written").unwrap();
        wal.sync().unwrap();
        wal.append_lane(b"still-staged", buffered).unwrap();
        let survived = wal.crash_discard();
        assert_eq!(survived, 1, "the open window never reached the kernel");
        drop(wal);
        let (_, rec) = Wal::open(&dir, u64::MAX, FsyncPolicy::Never).unwrap();
        assert_eq!(rec.records, vec![b"written".to_vec()]);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn in_memory_lane_is_refused() {
        let dir = tmp("in-memory");
        let mut wal = Wal::create(&dir, 4096, FsyncPolicy::Never).unwrap();
        assert!(matches!(
            wal.append_lane(b"x", DurabilityPolicy::InMemory),
            Err(WalError::Io(_))
        ));
        assert!(matches!(wal.append(b""), Err(WalError::Io(_))));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rotation_maintains_a_preallocated_spare() {
        let dir = tmp("spare");
        let mut wal = Wal::create(&dir, 32, FsyncPolicy::Never).unwrap();
        for i in 1..=4u8 {
            wal.append(&[i; 16]).unwrap();
        }
        wal.sync().unwrap();
        assert!(wal.segment_count() > 1, "rotation happened");
        let spares = |d: &Path| {
            fs::read_dir(d)
                .unwrap()
                .filter(|e| {
                    e.as_ref()
                        .unwrap()
                        .file_name()
                        .to_string_lossy()
                        .ends_with(".pre")
                })
                .count()
        };
        assert_eq!(spares(&dir), 1, "one recycled spare stands ready");
        drop(wal);
        assert_eq!(spares(&dir), 0, "clean shutdown tidies the spare");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn append_all_writes_once_and_recovers() {
        let dir = tmp("append-all");
        let mut wal = Wal::create(&dir, 4096, FsyncPolicy::Always).unwrap();
        let bodies: Vec<&[u8]> = vec![b"one", b"two", b"three"];
        assert_eq!(wal.append_all(bodies).unwrap(), 3);
        assert_eq!(
            wal.append_all(std::iter::empty()).unwrap(),
            0,
            "empty batch"
        );
        drop(wal);
        let (_, rec) = Wal::open(&dir, 4096, FsyncPolicy::Always).unwrap();
        assert_eq!(
            rec.records,
            vec![b"one".to_vec(), b"two".to_vec(), b"three".to_vec()]
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn batch_straddling_rotation_threshold_seals_exactly_one_segment() {
        let dir = tmp("straddle");
        // Threshold 64 bytes; the batch carries 10 × (16 + 8) = 240 bytes —
        // several thresholds' worth — yet rotation is checked once, after
        // the batch, so exactly one segment seals.
        let mut wal = Wal::create(&dir, 64, FsyncPolicy::Never).unwrap();
        let body = [7u8; 16];
        let bodies: Vec<&[u8]> = (0..10).map(|_| &body[..]).collect();
        assert_eq!(wal.append_all(bodies).unwrap(), 10);
        assert_eq!(
            wal.segment_count(),
            2,
            "one sealed segment + the fresh active one"
        );
        drop(wal);
        let (_, rec) = Wal::open(&dir, 64, FsyncPolicy::Never).unwrap();
        assert_eq!(rec.records.len(), 10, "every record of the batch survives");
        assert_eq!(rec.segments, 2);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn create_refuses_populated_directory() {
        let dir = tmp("refuse");
        {
            let mut wal = Wal::create(&dir, 4096, FsyncPolicy::Never).unwrap();
            wal.append(b"existing").unwrap();
        }
        assert!(matches!(
            Wal::create(&dir, 4096, FsyncPolicy::Never),
            Err(WalError::Io(_))
        ));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn error_display() {
        let e = WalError::Corrupt {
            segment: "wal-00000000.seg".into(),
            offset: 12,
        };
        assert!(e.to_string().contains("offset 12"));
        let e = WalError::from(std::io::Error::other("boom"));
        assert!(e.to_string().contains("boom"));
        use std::error::Error;
        assert!(e.source().is_some());
    }
}
