//! Cluster deployment, external I/O, failover orchestration.

// Ops-plane module (tart-lint tier: Ops): wall-clock reads and hash maps never flow into the replayable core; the interprocedural TAINT-FLOW pass fences the boundary, so raw reads need no per-line allows here.
#![allow(clippy::disallowed_methods, clippy::disallowed_types)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use tart_estimator::EstimatorSpec;
use tart_model::{AppSpec, Value};
use tart_vtime::{ComponentId, EngineId, VirtualTime, WireId};

use crate::chaos::{ChaosHandle, ChaosPlan};
use crate::checkpoint::{verify_chain, ChainDefect};
use crate::core::{EngineCore, Flow};
use crate::router::{EXTERNAL_ENGINE, SUPERVISOR_ENGINE};
use crate::standby::{StandbyPlane, StandbyStatus, WarmCandidate};
use crate::store::CheckpointStore;
use crate::supervise::{SupervisionMetrics, Supervisor};
use crate::{
    ClusterConfig, DurabilityConfig, DurabilityPolicy, EngineCheckpoint, EngineMetrics, Envelope,
    MessageLog, OutputRecord, Placement, ReplicaStore, Router, SharedEngineMetrics,
};

/// Cap on envelopes an engine batches per loop iteration, so a saturated
/// inbox cannot starve heartbeat emission indefinitely.
const BATCH_LIMIT: usize = 128;

/// Errors raised at deployment time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeployError {
    /// The placement does not assign every component.
    IncompletePlacement,
    /// The configured log file could not be created.
    LogUnavailable,
    /// [`Cluster::deploy`] with durability found prior on-disk state in the
    /// durability directory. Starting fresh over old state would silently
    /// orphan a recoverable run — use [`Cluster::recover_from_disk`], or
    /// point at an empty directory.
    DurabilityDirNotEmpty,
    /// [`Cluster::recover_from_disk`] was called without
    /// [`ClusterConfig::with_durability`].
    DurabilityNotConfigured,
    /// The durability layer could not be brought up (WAL or checkpoint
    /// store unopenable, or unrecoverably corrupt).
    DurabilityUnavailable(String),
}

impl fmt::Display for DeployError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeployError::IncompletePlacement => {
                write!(f, "placement does not cover every component")
            }
            DeployError::LogUnavailable => {
                write!(
                    f,
                    "the configured external-input log file could not be created"
                )
            }
            DeployError::DurabilityDirNotEmpty => {
                write!(
                    f,
                    "durability directory holds prior state; recover_from_disk or use an empty dir"
                )
            }
            DeployError::DurabilityNotConfigured => {
                write!(
                    f,
                    "recover_from_disk requires ClusterConfig::with_durability"
                )
            }
            DeployError::DurabilityUnavailable(why) => {
                write!(f, "durability layer unavailable: {why}")
            }
        }
    }
}

impl std::error::Error for DeployError {}

/// Errors raised by [`Cluster::promote`].
///
/// A mistimed promotion — from a racing supervisor, an operator script, or
/// a chaos drill — degrades to a structured error the caller can log and
/// retry, instead of unwinding inside the host lock and poisoning every
/// later cluster operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PromoteError {
    /// The engine id was never deployed on this cluster.
    UnknownEngine(EngineId),
    /// The engine is still alive — fail-stop it ([`Cluster::kill`]) first.
    EngineStillAlive(EngineId),
    /// Hash verification discarded **every** generation of a non-empty
    /// checkpoint chain: nothing restorable survives, and resuming from
    /// scratch would silently discard the engine's entire history. The
    /// engine is left dead; its flight-recorder dumps say which members
    /// diverged.
    ChainExhausted {
        /// The engine whose chain was exhausted.
        engine: EngineId,
        /// Generations verification discarded on the way to empty.
        discarded: usize,
    },
}

impl fmt::Display for PromoteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PromoteError::UnknownEngine(e) => write!(f, "engine {e} was never deployed"),
            PromoteError::EngineStillAlive(e) => {
                write!(f, "engine {e} is still alive; kill it before promoting")
            }
            PromoteError::ChainExhausted { engine, discarded } => write!(
                f,
                "engine {engine}: all {discarded} checkpoint generations failed verification"
            ),
        }
    }
}

impl std::error::Error for PromoteError {}

/// Shared per-external-wire producer state: the timestamp floor (covering
/// data and heartbeat silence) so data and silence never contradict.
struct SourceState {
    wire: WireId,
    target: EngineId,
    /// Every tick `<= watermark` is accounted (data sent or silence
    /// promised).
    watermark: Option<VirtualTime>,
    /// The last data tick actually sent (the `prev_vt` chain head).
    last_data: Option<VirtualTime>,
    finished: bool,
}

/// A handle for feeding one external producer's messages into the system.
///
/// Sends are timestamped with the cluster clock, logged (§II.E: external
/// messages are the only logged messages), and routed to the engine hosting
/// the destination component.
#[derive(Clone)]
pub struct Injector {
    name: String,
    state: Arc<Mutex<SourceState>>,
    log: Arc<Mutex<MessageLog>>,
    router: Router,
    clock: Arc<dyn crate::TimeSource>,
}

impl Injector {
    /// Sends one external message; returns the virtual time it was stamped
    /// with.
    ///
    /// # Panics
    ///
    /// Panics if [`Injector::finish`] was already called.
    pub fn send(&self, payload: Value) -> VirtualTime {
        let mut state = self.state.lock();
        assert!(!state.finished, "injector {} already finished", self.name);
        let now = self.clock.now();
        let ts = match state.watermark {
            Some(w) => now.max_with(w.next()),
            None => now,
        };
        state.watermark = Some(ts);
        let prev_vt = state.last_data.unwrap_or(VirtualTime::ZERO);
        state.last_data = Some(ts);
        self.log
            .lock()
            .append(state.wire, ts, &payload)
            .expect("timestamps are monotone by construction");
        self.router.send(
            state.target,
            Envelope::Data {
                wire: state.wire,
                vt: ts,
                prev_vt,
                payload,
            },
        );
        ts
    }

    /// Promises silence up to (just before) the present: an idle external
    /// producer's way of letting downstream pessimism resolve.
    pub fn heartbeat(&self) {
        let mut state = self.state.lock();
        if state.finished {
            return;
        }
        let bound = self.clock.now().prev();
        if state.watermark.is_none_or(|w| bound > w) {
            state.watermark = Some(bound);
            self.router.send(
                state.target,
                Envelope::Silence {
                    wire: state.wire,
                    through: bound,
                    last_data: state.last_data.unwrap_or(VirtualTime::ZERO),
                },
            );
        }
    }

    /// Declares end-of-stream: unbounded silence. No further sends allowed.
    pub fn finish(&self) {
        let mut state = self.state.lock();
        if state.finished {
            return;
        }
        state.finished = true;
        self.router.send(
            state.target,
            Envelope::Eos {
                wire: state.wire,
                last_data: state.last_data.unwrap_or(VirtualTime::ZERO),
            },
        );
    }

    /// The producer's name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl fmt::Debug for Injector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Injector")
            .field("name", &self.name)
            .finish()
    }
}

struct EngineSlot {
    sender: Sender<Envelope>,
    thread: Option<JoinHandle<()>>,
    replica: ReplicaStore,
    metrics: Arc<SharedEngineMetrics>,
    alive: bool,
}

/// The thread-safe core of a deployed cluster: everything needed to start,
/// fail-stop and promote engines. Shared (via `Arc`) between the
/// user-facing [`Cluster`] handle and the liveness [`Supervisor`] thread so
/// failover can be driven from either side with identical semantics.
pub(crate) struct EngineHost {
    spec: AppSpec,
    placement: Placement,
    pub(crate) config: ClusterConfig,
    pub(crate) router: Router,
    outputs_tx: Sender<OutputRecord>,
    engines: Mutex<HashMap<EngineId, EngineSlot>>,
    /// On-disk checkpoint store every hosted core tees into, when the
    /// cluster runs with durability.
    durable: Option<Arc<CheckpointStore>>,
    /// Cluster-wide observability hub: every engine core, the WAL and the
    /// checkpoint store record into it. Ops-plane only; nothing here ever
    /// feeds back into checkpointed state.
    pub(crate) obs: Arc<tart_obs::ObsHub>,
    /// Warm-standby plane ([`ClusterConfig::with_warm_standby`]): receives
    /// every engine's checkpoint/input stream and pre-applies it in the
    /// background so promotion only replays the unapplied tail.
    pub(crate) standby: Option<StandbyPlane>,
}

/// Dumps the engine's flight recorder if its thread unwinds — the timeline
/// that led to the panic is exactly what a postmortem needs, and it is gone
/// once the ring is dropped.
struct FlightDumpOnPanic {
    hub: Arc<tart_obs::ObsHub>,
    engine: EngineId,
}

impl Drop for FlightDumpOnPanic {
    fn drop(&mut self) {
        if std::thread::panicking() {
            dump_flight(&self.hub, &format!("engine {} panicked", self.engine));
        }
    }
}

/// Writes a flight-recorder dump where operators can find it: the file
/// named by `$TART_FLIGHT_DUMP` when set (pure JSON, overwritten per dump),
/// stderr otherwise.
pub(crate) fn dump_flight(hub: &tart_obs::ObsHub, why: &str) {
    if let Some(path) = std::env::var_os("TART_FLIGHT_DUMP") {
        let path = std::path::PathBuf::from(path);
        let dump = hub.dump_events_json();
        if std::fs::write(&path, format!("{dump}\n")).is_ok() {
            eprintln!(
                "[tart-obs] flight recorder ({why}) written to {}",
                path.display()
            );
            return;
        }
    }
    // Stderr fallback: bounded, or a busy soak would bury the log under
    // megabytes of timeline. The file path above gets the full ring.
    eprintln!(
        "[tart-obs] flight recorder ({why}): {}",
        hub.dump_events_json_tail(STDERR_DUMP_EVENTS)
    );
}

/// Newest events kept in a stderr flight dump (see [`dump_flight`]).
const STDERR_DUMP_EVENTS: usize = 256;

impl EngineHost {
    /// All deployed engine ids, ascending.
    pub(crate) fn engine_ids(&self) -> Vec<EngineId> {
        let mut ids: Vec<EngineId> = self.engines.lock().keys().copied().collect();
        ids.sort();
        ids
    }

    /// Whether `engine` is believed alive (not yet [`EngineHost::kill`]ed).
    /// An engine that crashed without being killed still reads alive — the
    /// failure detector exists precisely to notice that case.
    pub(crate) fn is_alive(&self, engine: EngineId) -> bool {
        self.engines.lock().get(&engine).is_some_and(|s| s.alive)
    }

    /// The durability tier an engine's persistence plane runs at: the
    /// **strictest** tier across its hosted components (one Strict
    /// component on an engine pins the whole engine's checkpoints to
    /// fsynced persists — engines checkpoint atomically, so the plane
    /// cannot split one engine's generation across tiers). `None` — the
    /// legacy always-durable path — when durability is off or any hosted
    /// component resolves to no tier.
    fn engine_tier(&self, engine: EngineId) -> Option<DurabilityPolicy> {
        let d = self.config.durability.as_ref()?;
        let mut tier: Option<DurabilityPolicy> = None;
        for c in self.placement.components_on(engine) {
            match d.tier_for(c, Some(engine)) {
                Some(t) => tier = Some(tier.map_or(t, |cur| cur.max(t))),
                None => return None,
            }
        }
        tier
    }

    /// Wires the checkpoint store into a core per the engine's resolved
    /// tier: Strict (and legacy) persist-and-fsync before shipping,
    /// Buffered persists without the fsync, InMemory skips the store
    /// entirely — its only recovery sources are the passive replica and
    /// peer replay, so a whole-process crash restarts it from scratch.
    fn attach_durability(&self, engine: EngineId, core: &mut EngineCore) {
        let Some(store) = &self.durable else { return };
        match self.engine_tier(engine) {
            Some(DurabilityPolicy::InMemory) => {}
            Some(DurabilityPolicy::Buffered { .. }) => {
                core.set_durable(Arc::clone(store));
                core.set_durable_sync(false);
            }
            Some(DurabilityPolicy::Strict) | None => core.set_durable(Arc::clone(store)),
        }
    }

    fn start_engine(&self, id: EngineId) {
        let (tx, rx) = unbounded::<Envelope>();
        self.router.register(id, tx.clone());
        let replica = ReplicaStore::default();
        let mut core = EngineCore::new(
            id,
            &self.spec,
            &self.placement,
            &self.config,
            self.router.clone(),
            replica.clone(),
            self.outputs_tx.clone(),
        );
        self.attach_durability(id, &mut core);
        core.set_obs(self.obs.engine(id));
        let metrics = core.metrics_handle();
        let thread = self.spawn_engine_loop(id, core, rx, false);
        self.engines.lock().insert(
            id,
            EngineSlot {
                sender: tx,
                thread: Some(thread),
                replica,
                metrics,
                alive: true,
            },
        );
    }

    /// The engine main loop, shared by fresh starts and promotions: receive
    /// → handle → pump → drain bookkeeping, plus (when supervision is on)
    /// periodic heartbeat emission to the supervisor inbox.
    fn spawn_engine_loop(
        &self,
        id: EngineId,
        mut core: EngineCore,
        rx: Receiver<Envelope>,
        restored: bool,
    ) -> JoinHandle<()> {
        let mut idle = Duration::from_micros(self.config.idle_poll_micros);
        let heartbeat = self
            .config
            .supervision
            .as_ref()
            .map(|s| s.heartbeat_interval);
        if let Some(interval) = heartbeat {
            // Wake at least twice per beacon period even if the configured
            // idle poll is coarser.
            idle = idle.min(interval / 2).max(Duration::from_micros(50));
        }
        let router = self.router.clone();
        let flight_guard = FlightDumpOnPanic {
            hub: Arc::clone(&self.obs),
            engine: id,
        };
        let suffix = if restored { "r" } else { "" };
        std::thread::Builder::new()
            .name(format!("tart-engine-{}{suffix}", id.raw()))
            .spawn(move || {
                let _flight_guard = flight_guard;
                let mut draining = false;
                let mut seq = 0u64;
                let mut next_hb = Instant::now();
                let mut batch: Vec<Envelope> = Vec::with_capacity(BATCH_LIMIT);
                loop {
                    if let Some(interval) = heartbeat {
                        let now = Instant::now();
                        if now >= next_hb {
                            router.send(SUPERVISOR_ENGINE, Envelope::Heartbeat { engine: id, seq });
                            seq += 1;
                            next_hb = now + interval;
                        }
                    }
                    // One wakeup drains up to BATCH_LIMIT queued envelopes
                    // in a single channel-lock round-trip (bounded so
                    // heartbeats keep flowing under load). A `Die` mid-batch
                    // drops the rest — exactly the fail-stop inbox loss.
                    batch.clear();
                    match rx.recv_batch_timeout(&mut batch, BATCH_LIMIT, idle) {
                        Ok(_) => {
                            for env in batch.drain(..) {
                                match core.handle(env) {
                                    Flow::Die => return, // fail-stop: drop everything
                                    Flow::Drain => draining = true,
                                    Flow::Continue => {}
                                }
                            }
                        }
                        Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                            core.on_idle_tick();
                        }
                        Err(crossbeam::channel::RecvTimeoutError::Disconnected) => return,
                    }
                    core.pump();
                    if draining && core.drain_step() {
                        core.take_checkpoint();
                        return;
                    }
                }
            })
            .expect("spawn engine thread")
    }

    /// Fail-stops `engine`: its thread exits immediately, losing all state
    /// and all envelopes in its inbox (the §II.A failure model). Returns
    /// once the thread is gone.
    pub(crate) fn kill(&self, engine: EngineId) {
        self.router.send(engine, Envelope::Die);
        self.router.deregister(engine);
        let thread = {
            let mut engines = self.engines.lock();
            match engines.get_mut(&engine) {
                Some(slot) => {
                    slot.alive = false;
                    slot.thread.take()
                }
                None => None,
            }
        };
        // Join outside the lock: the dying thread never takes it, but other
        // callers (metrics readers, the supervisor poll) shouldn't wait.
        if let Some(t) = thread {
            let _ = t.join();
        }
    }

    /// Builds a fresh core for `engine` and restores `chain` into it with
    /// hash verification (DESIGN.md §15). A chain-seal defect truncates the
    /// chain at the defective member before anything is restored; a
    /// post-restore state-hash divergence discards the tainted core, drops
    /// the chain's newest member, and retries — an empty chain restores
    /// vacuously, so the loop always terminates. Discarding a core is safe
    /// because `EngineCore::restore` verifies *before* its first router
    /// send: a failed attempt is invisible to peers. Each rejection dumps
    /// the flight ring for forensics (the divergence counter and timeline
    /// event are recorded inside `restore` itself).
    ///
    /// Returns the restored core and whether verification forced a shorter
    /// chain than the caller supplied.
    ///
    /// # Errors
    ///
    /// When an **originally non-empty** chain is discarded down to nothing
    /// — every generation defective or divergent — the error carries how
    /// many generations were thrown away. Restoring vacuously in that case
    /// would silently erase the engine's entire history; the caller decides
    /// (promotion surfaces [`PromoteError::ChainExhausted`], cold restart
    /// surfaces [`DeployError::DurabilityUnavailable`]). A chain that was
    /// empty to begin with still restores vacuously: a never-checkpointed
    /// engine legitimately restarts from scratch.
    fn restore_verified(
        &self,
        engine: EngineId,
        replica: &ReplicaStore,
        mut chain: Vec<EngineCheckpoint>,
        faults: &[(ComponentId, tart_estimator::DeterminismFault)],
    ) -> Result<(EngineCore, bool), usize> {
        let original_len = chain.len();
        let mut fell_back = false;
        if let Err(defect) = verify_chain(&chain) {
            dump_flight(&self.obs, &format!("chain defect for {engine}: {defect}"));
            let (ChainDefect::BrokenSeal { index, .. }
            | ChainDefect::DeltaWithoutBase { index, .. }) = defect;
            chain.truncate(index);
            fell_back = true;
        }
        loop {
            if chain.is_empty() && original_len > 0 {
                dump_flight(
                    &self.obs,
                    &format!(
                        "chain exhausted for {engine}: all {original_len} generations discarded"
                    ),
                );
                return Err(original_len);
            }
            let mut core = EngineCore::new(
                engine,
                &self.spec,
                &self.placement,
                &self.config,
                self.router.clone(),
                replica.clone(),
                self.outputs_tx.clone(),
            );
            self.attach_durability(engine, &mut core);
            core.set_obs(self.obs.engine(engine));
            match core.restore(&chain, faults) {
                Ok(()) => return Ok((core, fell_back)),
                Err(fault) => {
                    dump_flight(
                        &self.obs,
                        &format!("state divergence for {engine}: {fault}"),
                    );
                    chain.pop();
                    fell_back = true;
                }
            }
        }
    }

    /// Promotes `engine`'s passive replica: rebuilds the components from the
    /// checkpoint chain and the determinism-fault log, re-registers the
    /// inbox, and replays — from upstream retention for internal wires and
    /// from the message log for external wires (§II.F.3–4).
    ///
    /// With a warm standby ([`ClusterConfig::with_warm_standby`]) whose
    /// slot is anchored and undemoted, only the chain tail the standby has
    /// not yet absorbed is seal-checked and applied before activation —
    /// the sub-horizon promotion path, O(tail) rather than O(chain). The
    /// warm core is discarded and promotion falls back to the cold drill
    /// whenever the candidate is stale, the unabsorbed tail fails its seal
    /// check, or the tail digests diverge. Cold promotion is
    /// hash-verified the same way ([`EngineHost::restore_verified`]): a
    /// corrupted or divergent suffix is discarded and the promotion
    /// restores from the longest verified prefix instead of resuming
    /// corrupt state.
    ///
    /// # Errors
    ///
    /// See [`PromoteError`]. On [`PromoteError::ChainExhausted`] the engine
    /// is left dead and deregistered — resuming from nothing would silently
    /// erase its history.
    pub(crate) fn promote(&self, engine: EngineId) -> Result<(), PromoteError> {
        let t0 = Instant::now();
        let replica = {
            let engines = self.engines.lock();
            let slot = engines
                .get(&engine)
                .ok_or(PromoteError::UnknownEngine(engine))?;
            if slot.alive {
                return Err(PromoteError::EngineStillAlive(engine));
            }
            slot.replica.clone()
        };
        let chain = replica.chain();
        let faults = replica.faults();

        let fresh_replica = ReplicaStore::new();
        self.obs.failover(engine);

        // Taking the candidate resets the slot either way: the next
        // incarnation re-anchors at its first (full) checkpoint, and a
        // demotion verdict applies only to the incarnation that earned it.
        let warm = self.standby.as_ref().and_then(|p| p.take(engine));

        // Register the new inbox FIRST so the replay responses triggered by
        // restore (and live traffic) reach the restored engine.
        let (tx, rx) = unbounded::<Envelope>();
        self.router.register(engine, tx.clone());

        // Warm path first; any mismatch falls through to the cold drill,
        // which restores the longest verified chain prefix from scratch.
        let (core, warm_used) =
            match self.warm_restore(engine, &fresh_replica, &chain, &faults, warm) {
                Some(core) => (core, true),
                None => match self.restore_verified(engine, &fresh_replica, chain, &faults) {
                    Ok((core, _fell_back)) => (core, false),
                    Err(discarded) => {
                        self.router.deregister(engine);
                        return Err(PromoteError::ChainExhausted { engine, discarded });
                    }
                },
            };

        let metrics = core.metrics_handle();
        let thread = self.spawn_engine_loop(engine, core, rx, true);
        self.engines.lock().insert(
            engine,
            EngineSlot {
                sender: tx,
                thread: Some(thread),
                replica: fresh_replica,
                metrics,
                alive: true,
            },
        );
        self.obs
            .promotion_complete(engine, warm_used, t0.elapsed().as_nanos() as u64);
        Ok(())
    }

    /// The warm-promotion attempt: locate the standby's last absorbed
    /// member in the authoritative chain by `(seq, chain_seal)`, apply only
    /// the tail after it, and run the ordinary activation (which verifies
    /// the tail digests before any output escapes). Returns `None` — fall
    /// back to cold — when there is no candidate, the candidate is stale,
    /// the unabsorbed tail fails its seal check, or activation diverges.
    fn warm_restore(
        &self,
        engine: EngineId,
        fresh_replica: &ReplicaStore,
        chain: &[EngineCheckpoint],
        faults: &[(ComponentId, tart_estimator::DeterminismFault)],
        warm: Option<WarmCandidate>,
    ) -> Option<EngineCore> {
        let cand = warm?;
        let idx = chain
            .iter()
            .position(|c| c.seq == cand.applied_seq && c.chain_seal == cand.applied_seal)?;
        // Seal-check only the tail the standby never absorbed. The prefix
        // needs no re-hash: the standby verified every member it applied
        // (seal continuity and state digests), and `chain_seal` at `idx`
        // commits to the entire prefix through the seal chain, so the
        // `(seq, chain_seal)` match above vouches for it transitively.
        // This keeps warm promotion O(tail), not O(chain) — the whole
        // point of the standby. A defective tail goes cold, where
        // restore_verified owns the truncate-and-retry discipline.
        let mut prev_seal = cand.applied_seal;
        for member in &chain[idx + 1..] {
            let expected_prev = if member.is_self_contained() {
                tart_model::StateHash::ZERO
            } else {
                prev_seal
            };
            if member.seal_over(&expected_prev) != member.chain_seal {
                dump_flight(
                    &self.obs,
                    &format!("standby for {engine} unusable: tail seal defect; going cold"),
                );
                return None;
            }
            prev_seal = member.chain_seal;
        }
        let mut core = cand.core;
        core.set_replica(fresh_replica.clone());
        self.attach_durability(engine, &mut core);
        core.set_obs(self.obs.engine(engine));
        for ckpt in &chain[idx + 1..] {
            core.apply_member_snapshots(ckpt);
        }
        core.apply_faults(faults);
        match core.finish_restore(chain) {
            Ok(()) => Some(core),
            Err(fault) => {
                dump_flight(
                    &self.obs,
                    &format!("warm restore for {engine} diverged ({fault}); going cold"),
                );
                None
            }
        }
    }

    fn engine_metrics(&self, engine: EngineId) -> Option<EngineMetrics> {
        self.engines
            .lock()
            .get(&engine)
            .map(|s| s.metrics.snapshot())
    }

    fn replica_depth(&self, engine: EngineId) -> usize {
        self.engines
            .lock()
            .get(&engine)
            .map_or(0, |s| s.replica.len())
    }
}

/// A deployed TART application: engines on threads, passive replicas,
/// external injectors and collectors, and the failover machinery.
///
/// See the crate-level example. The manual failure drill is:
///
/// ```text
/// cluster.kill(engine);     // fail-stop: state and in-flight traffic lost
/// cluster.promote(engine);  // replica restores checkpoint, replays, resumes
/// ```
///
/// With [`ClusterConfig::with_supervision`] the same drill runs
/// automatically: engines heartbeat a supervisor thread whose failure
/// detector fail-stops and promotes any engine that goes quiet — no manual
/// calls required.
pub struct Cluster {
    host: Arc<EngineHost>,
    injectors: HashMap<String, Injector>,
    sources: HashMap<WireId, Arc<Mutex<SourceState>>>,
    log: Arc<Mutex<MessageLog>>,
    outputs_rx: Receiver<OutputRecord>,
    replay_service: Option<JoinHandle<()>>,
    supervisor: Option<Supervisor>,
}

impl Cluster {
    /// Deploys `spec` across engines per `placement` and starts every
    /// engine thread (plus the liveness supervisor when
    /// [`ClusterConfig::supervision`] is set).
    ///
    /// # Errors
    ///
    /// Returns [`DeployError::IncompletePlacement`] if any component is
    /// unassigned.
    pub fn deploy(
        spec: AppSpec,
        placement: Placement,
        config: ClusterConfig,
    ) -> Result<Cluster, DeployError> {
        if !placement.covers(&spec) {
            return Err(DeployError::IncompletePlacement);
        }
        let router = Router::new(config.faults.clone());
        let (outputs_tx, outputs_rx) = unbounded();
        let obs = Arc::new(tart_obs::ObsHub::new());
        let (log, durable) = match &config.durability {
            Some(d) => {
                let (mut log, store) = open_fresh_durability(d)?;
                apply_wire_tiers(&spec, &placement, d, &mut log);
                (Arc::new(Mutex::new(log)), Some(store))
            }
            None => {
                let log = match &config.log_path {
                    Some(path) => Arc::new(Mutex::new(
                        MessageLog::file_backed(path).map_err(|_| DeployError::LogUnavailable)?,
                    )),
                    None => Arc::new(Mutex::new(MessageLog::in_memory())),
                };
                (log, None)
            }
        };
        log.lock().set_obs(Arc::clone(&obs));
        if let Some(store) = &durable {
            store.set_obs(Arc::clone(&obs));
        }
        let standby = config.standby.clone().map(|s| {
            StandbyPlane::start(
                s,
                spec.clone(),
                placement.clone(),
                config.clone(),
                router.clone(),
                outputs_tx.clone(),
                Arc::clone(&obs),
            )
        });
        let host = Arc::new(EngineHost {
            spec,
            placement,
            config,
            router,
            outputs_tx,
            engines: Mutex::new(HashMap::new()),
            durable,
            obs,
            standby,
        });
        let mut cluster = Cluster {
            host: Arc::clone(&host),
            injectors: HashMap::new(),
            sources: HashMap::new(),
            log,
            outputs_rx,
            replay_service: None,
            supervisor: None,
        };
        for engine in host.placement.engines() {
            host.start_engine(engine);
        }
        // External producers.
        for w in host.spec.external_inputs() {
            let name = match w.from() {
                tart_model::Endpoint::External { name } => name.clone(),
                _ => unreachable!("external input wires start externally"),
            };
            let target_component = w.to().component().expect("external inputs feed components");
            let target = host
                .placement
                .engine_of(target_component)
                .expect("placement covers the app");
            let state = Arc::new(Mutex::new(SourceState {
                wire: w.id(),
                target,
                watermark: None,
                last_data: None,
                finished: false,
            }));
            cluster.sources.insert(w.id(), Arc::clone(&state));
            cluster.injectors.insert(
                name.clone(),
                Injector {
                    name,
                    state,
                    log: Arc::clone(&cluster.log),
                    router: host.router.clone(),
                    clock: Arc::clone(&host.config.clock),
                },
            );
        }
        cluster.spawn_replay_service();
        if let Some(supervision) = host.config.supervision.clone() {
            cluster.supervisor = Some(Supervisor::start(Arc::clone(&host), supervision));
        }
        Ok(cluster)
    }

    /// Cold-restarts a cluster from the on-disk state a previous
    /// (crashed) deployment left in `config.durability.dir`: the WAL is
    /// scanned (truncating any torn tail), each engine restores from its
    /// newest checkpoint generation that verifies (falling back one if the
    /// newest is corrupt), the determinism-fault logs are re-applied, and
    /// every engine replays forward — from the WAL for external wires, from
    /// recovered retention plus deterministic re-execution for internal
    /// ones. Deduplicated outputs are byte-identical to a run that never
    /// crashed (§II.F.4 extended to whole-cluster failure).
    ///
    /// The cluster clock is advanced past the last logged timestamp so
    /// re-driven external sends continue the original timeline.
    ///
    /// # Errors
    ///
    /// [`DeployError::DurabilityNotConfigured`] without
    /// [`ClusterConfig::with_durability`];
    /// [`DeployError::DurabilityUnavailable`] when the WAL has mid-file
    /// (non-tail) corruption or an engine's every checkpoint generation
    /// fails verification.
    pub fn recover_from_disk(
        spec: AppSpec,
        placement: Placement,
        config: ClusterConfig,
    ) -> Result<(Cluster, RecoveryReport), DeployError> {
        if !placement.covers(&spec) {
            return Err(DeployError::IncompletePlacement);
        }
        let Some(d) = config.durability.clone() else {
            return Err(DeployError::DurabilityNotConfigured);
        };
        let (mut log, wal_recovery) =
            MessageLog::durable(d.dir.join("wal"), d.wal_segment_bytes, d.policy)
                .map_err(|e| DeployError::DurabilityUnavailable(e.to_string()))?;
        apply_wire_tiers(&spec, &placement, &d, &mut log);
        let store = Arc::new(
            CheckpointStore::open(d.dir.join("ckpt"))
                .map_err(|e| DeployError::DurabilityUnavailable(e.to_string()))?,
        );
        // Read every engine's restart point from disk BEFORE starting any
        // thread: all fallible work happens while the cluster is still
        // inert, so an error cannot strand half-started engines.
        let mut restored = Vec::new();
        for engine in placement.engines() {
            let loaded = store
                .load_chain(engine)
                .map_err(|e| DeployError::DurabilityUnavailable(e.to_string()))?;
            let faults = store
                .faults(engine)
                .map_err(|e| DeployError::DurabilityUnavailable(e.to_string()))?;
            let (chain, generation, fell_back) = match loaded {
                Some(l) => (l.chain, Some(l.generation), l.fell_back),
                None => (Vec::new(), None, false),
            };
            restored.push((engine, chain, faults, generation, fell_back));
        }
        // Continue the original timeline: every timestamp the clock hands
        // out from here on must exceed everything already logged.
        if let Some(max_logged) = spec
            .external_inputs()
            .iter()
            .filter_map(|w| log.last_vt(w.id()))
            .max()
        {
            config.clock.advance_to(max_logged);
        }
        let router = Router::new(config.faults.clone());
        let (outputs_tx, outputs_rx) = unbounded();
        let obs = Arc::new(tart_obs::ObsHub::new());
        log.set_obs(Arc::clone(&obs));
        store.set_obs(Arc::clone(&obs));
        let standby = config.standby.clone().map(|s| {
            StandbyPlane::start(
                s,
                spec.clone(),
                placement.clone(),
                config.clone(),
                router.clone(),
                outputs_tx.clone(),
                Arc::clone(&obs),
            )
        });
        let host = Arc::new(EngineHost {
            spec,
            placement,
            config,
            router,
            outputs_tx,
            engines: Mutex::new(HashMap::new()),
            durable: Some(Arc::clone(&store)),
            obs,
            standby,
        });
        let mut cluster = Cluster {
            host: Arc::clone(&host),
            injectors: HashMap::new(),
            sources: HashMap::new(),
            log: Arc::new(Mutex::new(log)),
            outputs_rx,
            replay_service: None,
            supervisor: None,
        };
        // Phase 1: register EVERY inbox (and the log-replay service) before
        // any restore runs — restore sends replay requests to peers, which
        // must queue in live channels rather than vanish.
        let mut inboxes = Vec::new();
        for engine in host.placement.engines() {
            let (tx, rx) = unbounded::<Envelope>();
            host.router.register(engine, tx.clone());
            inboxes.push((engine, tx, rx));
        }
        for w in host.spec.external_inputs() {
            let name = match w.from() {
                tart_model::Endpoint::External { name } => name.clone(),
                _ => unreachable!("external input wires start externally"),
            };
            let target_component = w.to().component().expect("external inputs feed components");
            let target = host
                .placement
                .engine_of(target_component)
                .expect("placement covers the app");
            // Producers resume exactly where the log ends: the watermark
            // floor guarantees post-restart sends continue the `prev_vt`
            // chain past everything already durable.
            let logged = cluster.log.lock().last_vt(w.id());
            let state = Arc::new(Mutex::new(SourceState {
                wire: w.id(),
                target,
                watermark: logged,
                last_data: logged,
                finished: false,
            }));
            cluster.sources.insert(w.id(), Arc::clone(&state));
            cluster.injectors.insert(
                name.clone(),
                Injector {
                    name,
                    state,
                    log: Arc::clone(&cluster.log),
                    router: host.router.clone(),
                    clock: Arc::clone(&host.config.clock),
                },
            );
        }
        cluster.spawn_replay_service();
        // Phase 2: restore each engine and start its loop.
        let components = component_recoveries(&host.spec, &host.placement, &d, &cluster.log.lock());
        let mut report = RecoveryReport {
            wal_records: wal_recovery.records.len(),
            wal_truncated_bytes: wal_recovery.truncated_bytes,
            wal_segments: wal_recovery.segments,
            engines: Vec::new(),
            components,
        };
        for (engine, tx, rx) in inboxes {
            let (chain, faults, generation, fell_back) = {
                let idx = restored
                    .iter()
                    .position(|(e, ..)| *e == engine)
                    .expect("restored covers every placed engine");
                let (_, chain, faults, generation, fell_back) = restored.swap_remove(idx);
                (chain, faults, generation, fell_back)
            };
            let replica = ReplicaStore::new();
            // Hash-verified cold restart: the loaded chain passed the
            // store's CRC and seal checks, and restore re-derives the live
            // state hash against the recorded one — a divergent suffix is
            // discarded rather than resumed. A chain discarded to nothing
            // is terminal: tear down whatever already started and report,
            // rather than resuming an engine with its history erased.
            let (core, diverged) = match host.restore_verified(engine, &replica, chain, &faults) {
                Ok(restored) => restored,
                Err(discarded) => {
                    for started in host.engine_ids() {
                        host.kill(started);
                    }
                    host.router.send(EXTERNAL_ENGINE, Envelope::Die);
                    return Err(DeployError::DurabilityUnavailable(format!(
                        "engine {engine}: all {discarded} restored checkpoint generations failed verification"
                    )));
                }
            };
            let fell_back = fell_back || diverged;
            let metrics = core.metrics_handle();
            let thread = host.spawn_engine_loop(engine, core, rx, true);
            host.engines.lock().insert(
                engine,
                EngineSlot {
                    sender: tx,
                    thread: Some(thread),
                    replica,
                    metrics,
                    alive: true,
                },
            );
            report.engines.push(EngineRecovery {
                engine,
                generation,
                fell_back,
            });
        }
        if let Some(supervision) = host.config.supervision.clone() {
            cluster.supervisor = Some(Supervisor::start(Arc::clone(&host), supervision));
        }
        Ok((cluster, report))
    }

    /// The replay service answers replay requests for external wires from
    /// the message log (§II.F.4: external messages "are re-sent from the
    /// log").
    fn spawn_replay_service(&mut self) {
        let (tx, rx) = unbounded::<Envelope>();
        self.host.router.register(EXTERNAL_ENGINE, tx);
        let router = self.host.router.clone();
        let log = Arc::clone(&self.log);
        let sources: HashMap<WireId, Arc<Mutex<SourceState>>> = self
            .sources
            .iter()
            .map(|(w, s)| (*w, Arc::clone(s)))
            .collect();
        let targets: HashMap<WireId, EngineId> = self
            .host
            .spec
            .external_inputs()
            .iter()
            .filter_map(|w| {
                let c = w.to().component()?;
                Some((w.id(), self.host.placement.engine_of(c)?))
            })
            .collect();
        let thread = std::thread::Builder::new()
            .name("tart-log-replay".into())
            .spawn(move || {
                while let Ok(env) = rx.recv() {
                    match env {
                        Envelope::ReplayRequest { wire, from } => {
                            let Some(&target) = targets.get(&wire) else {
                                continue;
                            };
                            let frames = log.lock().replay_from(wire, from);
                            let count = frames.len() as u64;
                            let mut prev = VirtualTime::ZERO;
                            for (vt, payload) in frames {
                                router.send(
                                    target,
                                    Envelope::Data {
                                        wire,
                                        vt,
                                        prev_vt: prev,
                                        payload,
                                    },
                                );
                                prev = vt;
                            }
                            let through = sources
                                .get(&wire)
                                .map(|s| {
                                    let s = s.lock();
                                    if s.finished {
                                        VirtualTime::MAX
                                    } else {
                                        s.watermark.unwrap_or(VirtualTime::ZERO)
                                    }
                                })
                                .unwrap_or(VirtualTime::ZERO);
                            router.send(
                                target,
                                Envelope::ReplayDone {
                                    wire,
                                    through,
                                    frames: count,
                                },
                            );
                        }
                        Envelope::Die => return,
                        _ => {}
                    }
                }
            })
            .expect("spawn log-replay thread");
        self.replay_service = Some(thread);
    }

    /// The injector for the external producer `name`.
    pub fn injector(&self, name: &str) -> Option<&Injector> {
        self.injectors.get(name)
    }

    /// Declares end-of-stream on every external producer.
    pub fn finish_inputs(&self) {
        for inj in self.injectors.values() {
            inj.finish();
        }
    }

    /// Heartbeats every idle external producer (promising silence up to
    /// now), unsticking downstream pessimism delays in real-time runs.
    pub fn heartbeat_inputs(&self) {
        for inj in self.injectors.values() {
            inj.heartbeat();
        }
    }

    /// Triggers an immediate soft checkpoint on `engine`.
    pub fn checkpoint_now(&self, engine: EngineId) {
        self.host.router.send(engine, Envelope::Checkpoint);
    }

    /// Switches the silence propagation strategy on every engine, live.
    /// No determinism fault is needed: only the communication of silence
    /// changes, never which ticks are silent (§II.G.4).
    pub fn set_silence_policy(&self, policy: tart_silence::SilencePolicy) {
        let engines = self.host.engines.lock();
        for (id, slot) in engines.iter() {
            if slot.alive {
                self.host
                    .router
                    .send(*id, Envelope::SetSilencePolicy { policy });
            }
        }
    }

    /// Installs a re-calibrated estimator for `component` (a determinism
    /// fault, logged before use — §II.G.4).
    pub fn recalibrate(&self, component: ComponentId, spec: EstimatorSpec) {
        if let Some(engine) = self.host.placement.engine_of(component) {
            self.host
                .router
                .send(engine, Envelope::Recalibrate { component, spec });
        }
    }

    /// Fail-stops `engine` (the manual failure drill; see
    /// [`EngineHost::kill`]). Under supervision, the supervisor leaves
    /// manually killed engines alone — recovery stays manual via
    /// [`Cluster::promote`].
    pub fn kill(&mut self, engine: EngineId) {
        self.host.kill(engine);
    }

    /// Promotes `engine`'s passive replica (the manual recovery drill; see
    /// [`EngineHost::promote`]). Warm when a standby slot is anchored,
    /// cold otherwise.
    ///
    /// # Errors
    ///
    /// See [`PromoteError`] — promoting a live or unknown engine, or one
    /// whose every checkpoint generation failed verification, reports
    /// instead of panicking.
    pub fn promote(&mut self, engine: EngineId) -> Result<(), PromoteError> {
        self.host.promote(engine)
    }

    /// The warm-standby slot view for `engine`: `None` when no standby
    /// plane is configured or no stream member has arrived yet.
    pub fn standby_status(&self, engine: EngineId) -> Option<StandbyStatus> {
        self.host.standby.as_ref().and_then(|p| p.status(engine))
    }

    /// Chaos hook: corrupt a recorded digest on the next checkpoint
    /// `engine`'s warm standby applies, forcing a divergence demotion (the
    /// standby-divergence drill). The authoritative replica chain is
    /// untouched, so recovery still converges through the cold path.
    /// Returns `false` when no standby plane is running.
    pub fn corrupt_standby(&self, engine: EngineId) -> bool {
        match &self.host.standby {
            Some(plane) => {
                plane.corrupt_next(engine);
                true
            }
            None => false,
        }
    }

    /// All deployed engine ids, ascending.
    pub fn engine_ids(&self) -> Vec<EngineId> {
        self.host.engine_ids()
    }

    /// A snapshot of `engine`'s metrics.
    pub fn engine_metrics(&self, engine: EngineId) -> Option<EngineMetrics> {
        self.host.engine_metrics(engine)
    }

    /// A snapshot of the liveness supervisor's counters, when supervision
    /// is enabled.
    pub fn supervision_metrics(&self) -> Option<SupervisionMetrics> {
        self.supervisor.as_ref().map(|s| s.metrics())
    }

    /// `(dropped, duplicated)` counts from the link fault injector.
    pub fn fault_counts(&self) -> (u64, u64) {
        self.host.router.fault_counts()
    }

    /// The cluster's observability hub (metrics registry + flight
    /// recorder). Shared by every engine, the WAL and the checkpoint store.
    pub fn obs(&self) -> &Arc<tart_obs::ObsHub> {
        &self.host.obs
    }

    /// A point-in-time copy of every obs metric plus the event timeline.
    pub fn obs_snapshot(&self) -> tart_obs::ObsSnapshot {
        self.host.obs.snapshot()
    }

    /// Writes the canonical `obs-report.json` for this cluster (to
    /// `$TART_OBS_REPORT`, or `obs-report.json` in the current directory)
    /// and returns the path written.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error.
    pub fn write_obs_report(&self) -> std::io::Result<std::path::PathBuf> {
        tart_obs::write_report(&self.host.obs.snapshot())
    }

    /// Number of checkpoints currently held by `engine`'s replica.
    pub fn replica_depth(&self, engine: EngineId) -> usize {
        self.host.replica_depth(engine)
    }

    /// Starts a background chaos driver executing `plan` against this
    /// cluster: crashes are injected as unannounced fail-stops that the
    /// supervisor must detect and recover, partitions and latency spikes
    /// disturb payload links.
    ///
    /// # Panics
    ///
    /// Panics if supervision is not enabled — without a failure detector,
    /// injected crashes would never be recovered.
    pub fn launch_chaos(&self, plan: ChaosPlan) -> ChaosHandle {
        let supervisor = self
            .supervisor
            .as_ref()
            .expect("launch_chaos requires ClusterConfig::with_supervision");
        crate::chaos::launch(self.host.router.clone(), supervisor.metrics_handle(), plan)
    }

    /// Non-blocking drain of whatever outputs have been produced so far.
    ///
    /// Handing a record to the caller is the consumer-side ack: the owning
    /// engine gets an ordinary `TrimAck` so that, under durability, its
    /// external output-retention buffer can drop everything a cold restart
    /// no longer needs to re-emit. Outputs never drained stay retained —
    /// and ride in every checkpoint — until someone takes them.
    pub fn take_outputs(&self) -> Vec<OutputRecord> {
        let outs: Vec<OutputRecord> = self.outputs_rx.try_iter().collect();
        let mut drained: BTreeMap<WireId, VirtualTime> = BTreeMap::new();
        for o in &outs {
            let hi = drained.entry(o.wire).or_insert(o.vt);
            if o.vt > *hi {
                *hi = o.vt;
            }
        }
        if !drained.is_empty() {
            let engines = self.host.engines.lock();
            for (wire, through) in drained {
                let owner = self
                    .host
                    .spec
                    .wire(wire)
                    .and_then(|w| w.from().component())
                    .and_then(|c| self.host.placement.engine_of(c));
                if let Some(slot) = owner.and_then(|e| engines.get(&e)) {
                    if slot.alive {
                        let _ = slot.sender.send(Envelope::TrimAck { wire, through });
                    }
                }
            }
        }
        outs
    }

    /// Abruptly fail-stops the **entire cluster** — every engine killed in
    /// place, no drain, no final checkpoint — approximating a whole-process
    /// `SIGKILL` while keeping the test in-process. Whatever had reached
    /// disk at this instant is all a later [`Cluster::recover_from_disk`]
    /// gets. Returns the outputs that had already been collected.
    pub fn crash(mut self) -> Vec<OutputRecord> {
        self.crash_inner(false).0
    }

    /// [`Cluster::crash`], plus per-component loss accounting: the WAL's
    /// open group-commit window is dropped on the floor (a plain `crash`
    /// lets the backend flush it on drop, which a real `SIGKILL` would
    /// not), and the report says exactly how many external inputs each
    /// component had inside that window ([`CrashReport::lost_inputs`]) and
    /// how many were on memory-only wires and were never persisted at all
    /// ([`CrashReport::memory_only_inputs`]).
    ///
    /// This is the drill behind the tier loss bounds in `DURABILITY.md`:
    /// Strict components must never appear in `lost_inputs`, Buffered
    /// components lose at most one open window.
    pub fn crash_with_report(mut self) -> (Vec<OutputRecord>, CrashReport) {
        self.crash_inner(true)
    }

    fn crash_inner(&mut self, discard_open_window: bool) -> (Vec<OutputRecord>, CrashReport) {
        dump_flight(&self.host.obs, "cluster crash drill");
        if let Some(supervisor) = self.supervisor.take() {
            supervisor.stop();
        }
        for id in self.host.engine_ids() {
            self.host.kill(id);
        }
        let mut report = CrashReport::default();
        if discard_open_window {
            let log_crash = self.log.lock().crash_discard();
            let component_of: BTreeMap<WireId, ComponentId> = self
                .host
                .spec
                .external_inputs()
                .iter()
                .filter_map(|w| Some((w.id(), w.to().component()?)))
                .collect();
            for (bucket, wires) in [
                (&mut report.lost_inputs, log_crash.lost),
                (&mut report.memory_only_inputs, log_crash.memory_only),
            ] {
                for (wire, n) in wires {
                    if let Some(c) = component_of.get(&wire) {
                        *bucket.entry(*c).or_insert(0) += n;
                    }
                }
            }
        }
        self.host.router.send(EXTERNAL_ENGINE, Envelope::Die);
        if let Some(t) = self.replay_service.take() {
            let _ = t.join();
        }
        (self.outputs_rx.try_iter().collect(), report)
    }

    /// Gracefully drains and joins every engine, returning all external
    /// outputs (including any recovery stutter — see
    /// [`Cluster::dedup_outputs`]).
    pub fn shutdown(mut self) -> Vec<OutputRecord> {
        // Stop the liveness supervisor FIRST: draining engines stop
        // heartbeating, and the detector must not "recover" them mid-exit.
        if let Some(supervisor) = self.supervisor.take() {
            supervisor.stop();
        }
        {
            let engines = self.host.engines.lock();
            for slot in engines.values() {
                if slot.alive {
                    let _ = slot.sender.send(Envelope::Drain);
                }
            }
        }
        let threads: Vec<JoinHandle<()>> = {
            let mut engines = self.host.engines.lock();
            engines
                .values_mut()
                .filter_map(|s| s.thread.take())
                .collect()
        };
        for t in threads {
            let _ = t.join();
        }
        self.host.router.send(EXTERNAL_ENGINE, Envelope::Die);
        if let Some(t) = self.replay_service.take() {
            let _ = t.join();
        }
        self.outputs_rx.try_iter().collect()
    }

    /// Removes output stutter: keeps, per wire, only the first record at
    /// each virtual time, in virtual-time order — exactly the compensation
    /// the paper expects monotonic-output consumers to apply (§II.A).
    pub fn dedup_outputs(mut outputs: Vec<OutputRecord>) -> Vec<OutputRecord> {
        outputs.sort_by_key(|o| (o.wire, o.vt));
        outputs.dedup_by_key(|o| (o.wire, o.vt));
        outputs.sort_by_key(|o| (o.vt, o.wire));
        outputs
    }
}

/// What [`Cluster::recover_from_disk`] found on disk.
#[derive(Clone, Debug)]
pub struct RecoveryReport {
    /// External-input records recovered from the WAL.
    pub wal_records: usize,
    /// Bytes truncated from the WAL's torn tail (0 on a clean shutdown).
    pub wal_truncated_bytes: u64,
    /// WAL segments scanned.
    pub wal_segments: usize,
    /// Per-engine restart points, in engine-id order.
    pub engines: Vec<EngineRecovery>,
    /// Per-component external-input accounting, in component-id order.
    pub components: Vec<ComponentRecovery>,
}

/// One component's external-input recovery accounting in a
/// [`RecoveryReport`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ComponentRecovery {
    /// The component.
    pub component: ComponentId,
    /// Its resolved durability tier; `None` means the legacy engine-wide
    /// fsync policy governed its inputs.
    pub tier: Option<DurabilityPolicy>,
    /// External-input records recovered from the WAL for this component's
    /// wires. Compared against the pre-crash append count, the shortfall
    /// is exactly what sat inside the open flush window (Buffered) or was
    /// never persisted (InMemory).
    pub recovered_inputs: u64,
    /// `true` for [`DurabilityPolicy::InMemory`] components: nothing was
    /// on disk by design, and peer replay is the only recovery source.
    pub replay_from_peers_only: bool,
}

/// Per-component cost of a [`Cluster::crash_with_report`] drill. Absent
/// components lost nothing.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CrashReport {
    /// Buffered-tier external inputs inside the open group-commit window
    /// at the instant of the crash — bounded by one flush window
    /// ([`crate::BUFFERED_MAX_RECORDS`] records) per wire. A Strict
    /// component appearing here is a durability-contract violation.
    pub lost_inputs: BTreeMap<ComponentId, u64>,
    /// InMemory-tier external inputs, never persisted by design.
    pub memory_only_inputs: BTreeMap<ComponentId, u64>,
}

/// Pins every tiered external-input wire of `log` to its resolved
/// durability tier (component → engine → cluster default). Unresolved
/// wires keep the legacy engine-wide fsync-policy path.
fn apply_wire_tiers(
    spec: &AppSpec,
    placement: &Placement,
    d: &DurabilityConfig,
    log: &mut MessageLog,
) {
    for w in spec.external_inputs() {
        let Some(c) = w.to().component() else {
            continue;
        };
        if let Some(tier) = d.tier_for(c, placement.engine_of(c)) {
            log.set_wire_tier(w.id(), tier);
        }
    }
}

/// Builds the per-component recovery accounting for a cold restart: how
/// many external inputs each component got back from the WAL, under which
/// tier.
fn component_recoveries(
    spec: &AppSpec,
    placement: &Placement,
    d: &DurabilityConfig,
    log: &MessageLog,
) -> Vec<ComponentRecovery> {
    let mut per: BTreeMap<ComponentId, ComponentRecovery> = BTreeMap::new();
    for w in spec.external_inputs() {
        let Some(c) = w.to().component() else {
            continue;
        };
        let tier = d.tier_for(c, placement.engine_of(c));
        let entry = per.entry(c).or_insert_with(|| ComponentRecovery {
            component: c,
            tier,
            recovered_inputs: 0,
            replay_from_peers_only: matches!(tier, Some(DurabilityPolicy::InMemory)),
        });
        entry.recovered_inputs += log.wire_len(w.id()) as u64;
    }
    per.into_values().collect()
}

/// One engine's restart point in a [`RecoveryReport`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EngineRecovery {
    /// The engine.
    pub engine: EngineId,
    /// The checkpoint generation it restored from; `None` means no durable
    /// checkpoint existed and it restarted from scratch (full replay).
    pub generation: Option<u64>,
    /// `true` if recovery did not restore through the newest persisted
    /// generation — a damaged full or delta forced a shorter or older
    /// restore chain.
    pub fell_back: bool,
}

/// Brings up the durability layer for a **fresh** deployment: refuses a
/// directory holding prior WAL/checkpoint state (that state belongs to
/// [`Cluster::recover_from_disk`]).
fn open_fresh_durability(
    d: &DurabilityConfig,
) -> Result<(MessageLog, Arc<CheckpointStore>), DeployError> {
    for sub in ["wal", "ckpt"] {
        let p = d.dir.join(sub);
        let populated = std::fs::read_dir(&p)
            .map(|mut it| it.next().is_some())
            .unwrap_or(false);
        if populated {
            return Err(DeployError::DurabilityDirNotEmpty);
        }
    }
    std::fs::create_dir_all(&d.dir)
        .map_err(|e| DeployError::DurabilityUnavailable(e.to_string()))?;
    let (log, _recovery) = MessageLog::durable(d.dir.join("wal"), d.wal_segment_bytes, d.policy)
        .map_err(|e| DeployError::DurabilityUnavailable(e.to_string()))?;
    let store = CheckpointStore::open(d.dir.join("ckpt"))
        .map_err(|e| DeployError::DurabilityUnavailable(e.to_string()))?;
    Ok((log, Arc::new(store)))
}

impl fmt::Debug for Cluster {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Cluster")
            .field("engines", &self.host.engines.lock().len())
            .field("injectors", &self.injectors.len())
            .field("supervised", &self.supervisor.is_some())
            .finish()
    }
}
