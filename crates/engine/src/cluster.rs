//! Cluster deployment, external I/O, failover orchestration.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use tart_estimator::EstimatorSpec;
use tart_model::{AppSpec, Value};
use tart_vtime::{ComponentId, EngineId, VirtualTime, WireId};

use crate::core::{EngineCore, Flow};
use crate::router::EXTERNAL_ENGINE;
use crate::{
    ClusterConfig, EngineMetrics, Envelope, MessageLog, OutputRecord, Placement, ReplicaStore,
    Router,
};

/// Errors raised at deployment time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeployError {
    /// The placement does not assign every component.
    IncompletePlacement,
    /// The configured log file could not be created.
    LogUnavailable,
}

impl fmt::Display for DeployError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeployError::IncompletePlacement => {
                write!(f, "placement does not cover every component")
            }
            DeployError::LogUnavailable => {
                write!(
                    f,
                    "the configured external-input log file could not be created"
                )
            }
        }
    }
}

impl std::error::Error for DeployError {}

/// Shared per-external-wire producer state: the timestamp floor (covering
/// data and heartbeat silence) so data and silence never contradict.
struct SourceState {
    wire: WireId,
    target: EngineId,
    /// Every tick `<= watermark` is accounted (data sent or silence
    /// promised).
    watermark: Option<VirtualTime>,
    /// The last data tick actually sent (the `prev_vt` chain head).
    last_data: Option<VirtualTime>,
    finished: bool,
}

/// A handle for feeding one external producer's messages into the system.
///
/// Sends are timestamped with the cluster clock, logged (§II.E: external
/// messages are the only logged messages), and routed to the engine hosting
/// the destination component.
#[derive(Clone)]
pub struct Injector {
    name: String,
    state: Arc<Mutex<SourceState>>,
    log: Arc<Mutex<MessageLog>>,
    router: Router,
    clock: Arc<dyn crate::TimeSource>,
}

impl Injector {
    /// Sends one external message; returns the virtual time it was stamped
    /// with.
    ///
    /// # Panics
    ///
    /// Panics if [`Injector::finish`] was already called.
    pub fn send(&self, payload: Value) -> VirtualTime {
        let mut state = self.state.lock();
        assert!(!state.finished, "injector {} already finished", self.name);
        let now = self.clock.now();
        let ts = match state.watermark {
            Some(w) => now.max_with(w.next()),
            None => now,
        };
        state.watermark = Some(ts);
        let prev_vt = state.last_data.unwrap_or(VirtualTime::ZERO);
        state.last_data = Some(ts);
        self.log
            .lock()
            .append(state.wire, ts, &payload)
            .expect("timestamps are monotone by construction");
        self.router.send(
            state.target,
            Envelope::Data {
                wire: state.wire,
                vt: ts,
                prev_vt,
                payload,
            },
        );
        ts
    }

    /// Promises silence up to (just before) the present: an idle external
    /// producer's way of letting downstream pessimism resolve.
    pub fn heartbeat(&self) {
        let mut state = self.state.lock();
        if state.finished {
            return;
        }
        let bound = self.clock.now().prev();
        if state.watermark.is_none_or(|w| bound > w) {
            state.watermark = Some(bound);
            self.router.send(
                state.target,
                Envelope::Silence {
                    wire: state.wire,
                    through: bound,
                    last_data: state.last_data.unwrap_or(VirtualTime::ZERO),
                },
            );
        }
    }

    /// Declares end-of-stream: unbounded silence. No further sends allowed.
    pub fn finish(&self) {
        let mut state = self.state.lock();
        if state.finished {
            return;
        }
        state.finished = true;
        self.router.send(
            state.target,
            Envelope::Eos {
                wire: state.wire,
                last_data: state.last_data.unwrap_or(VirtualTime::ZERO),
            },
        );
    }

    /// The producer's name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl fmt::Debug for Injector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Injector")
            .field("name", &self.name)
            .finish()
    }
}

struct EngineSlot {
    sender: Sender<Envelope>,
    thread: Option<JoinHandle<()>>,
    replica: ReplicaStore,
    metrics: Arc<Mutex<EngineMetrics>>,
    alive: bool,
}

/// A deployed TART application: engines on threads, passive replicas,
/// external injectors and collectors, and the failover manager.
///
/// See the crate-level example. The failure drill is:
///
/// ```text
/// cluster.kill(engine);     // fail-stop: state and in-flight traffic lost
/// cluster.promote(engine);  // replica restores checkpoint, replays, resumes
/// ```
pub struct Cluster {
    spec: AppSpec,
    placement: Placement,
    config: ClusterConfig,
    router: Router,
    engines: HashMap<EngineId, EngineSlot>,
    injectors: HashMap<String, Injector>,
    sources: HashMap<WireId, Arc<Mutex<SourceState>>>,
    log: Arc<Mutex<MessageLog>>,
    outputs_rx: Receiver<OutputRecord>,
    outputs_tx: Sender<OutputRecord>,
    supervisor: Option<JoinHandle<()>>,
}

impl Cluster {
    /// Deploys `spec` across engines per `placement` and starts every
    /// engine thread.
    ///
    /// # Errors
    ///
    /// Returns [`DeployError::IncompletePlacement`] if any component is
    /// unassigned.
    pub fn deploy(
        spec: AppSpec,
        placement: Placement,
        config: ClusterConfig,
    ) -> Result<Cluster, DeployError> {
        if !placement.covers(&spec) {
            return Err(DeployError::IncompletePlacement);
        }
        let router = Router::new(config.faults.clone());
        let (outputs_tx, outputs_rx) = unbounded();
        let log = match &config.log_path {
            Some(path) => Arc::new(Mutex::new(
                MessageLog::file_backed(path).map_err(|_| DeployError::LogUnavailable)?,
            )),
            None => Arc::new(Mutex::new(MessageLog::in_memory())),
        };
        let mut cluster = Cluster {
            spec,
            placement,
            config,
            router,
            engines: HashMap::new(),
            injectors: HashMap::new(),
            sources: HashMap::new(),
            log,
            outputs_rx,
            outputs_tx,
            supervisor: None,
        };
        for engine in cluster.placement.engines() {
            cluster.start_engine(engine, None);
        }
        // External producers.
        for w in cluster.spec.external_inputs() {
            let name = match w.from() {
                tart_model::Endpoint::External { name } => name.clone(),
                _ => unreachable!("external input wires start externally"),
            };
            let target_component = w.to().component().expect("external inputs feed components");
            let target = cluster
                .placement
                .engine_of(target_component)
                .expect("placement covers the app");
            let state = Arc::new(Mutex::new(SourceState {
                wire: w.id(),
                target,
                watermark: None,
                last_data: None,
                finished: false,
            }));
            cluster.sources.insert(w.id(), Arc::clone(&state));
            cluster.injectors.insert(
                name.clone(),
                Injector {
                    name,
                    state,
                    log: Arc::clone(&cluster.log),
                    router: cluster.router.clone(),
                    clock: Arc::clone(&cluster.config.clock),
                },
            );
        }
        cluster.spawn_supervisor();
        Ok(cluster)
    }

    /// The supervisor answers replay requests for external wires from the
    /// message log (§II.F.4: external messages "are re-sent from the log").
    fn spawn_supervisor(&mut self) {
        let (tx, rx) = unbounded::<Envelope>();
        self.router.register(EXTERNAL_ENGINE, tx);
        let router = self.router.clone();
        let log = Arc::clone(&self.log);
        let sources: HashMap<WireId, Arc<Mutex<SourceState>>> = self
            .sources
            .iter()
            .map(|(w, s)| (*w, Arc::clone(s)))
            .collect();
        let targets: HashMap<WireId, EngineId> = self
            .spec
            .external_inputs()
            .iter()
            .filter_map(|w| {
                let c = w.to().component()?;
                Some((w.id(), self.placement.engine_of(c)?))
            })
            .collect();
        let thread = std::thread::Builder::new()
            .name("tart-supervisor".into())
            .spawn(move || {
                while let Ok(env) = rx.recv() {
                    match env {
                        Envelope::ReplayRequest { wire, from } => {
                            let Some(&target) = targets.get(&wire) else {
                                continue;
                            };
                            let frames = log.lock().replay_from(wire, from);
                            let count = frames.len() as u64;
                            let mut prev = VirtualTime::ZERO;
                            for (vt, payload) in frames {
                                router.send(
                                    target,
                                    Envelope::Data {
                                        wire,
                                        vt,
                                        prev_vt: prev,
                                        payload,
                                    },
                                );
                                prev = vt;
                            }
                            let through = sources
                                .get(&wire)
                                .map(|s| {
                                    let s = s.lock();
                                    if s.finished {
                                        VirtualTime::MAX
                                    } else {
                                        s.watermark.unwrap_or(VirtualTime::ZERO)
                                    }
                                })
                                .unwrap_or(VirtualTime::ZERO);
                            router.send(
                                target,
                                Envelope::ReplayDone {
                                    wire,
                                    through,
                                    frames: count,
                                },
                            );
                        }
                        Envelope::Die => return,
                        _ => {}
                    }
                }
            })
            .expect("spawn supervisor thread");
        self.supervisor = Some(thread);
    }

    fn start_engine(&mut self, id: EngineId, restored: Option<EngineCore>) {
        let (tx, rx) = unbounded::<Envelope>();
        self.router.register(id, tx.clone());
        let replica = restored
            .as_ref()
            .map(|_| ReplicaStore::new())
            .unwrap_or_default();
        let mut core = match restored {
            Some(core) => core,
            None => EngineCore::new(
                id,
                &self.spec,
                &self.placement,
                &self.config,
                self.router.clone(),
                replica.clone(),
                self.outputs_tx.clone(),
            ),
        };
        let metrics = core.metrics_handle();
        let idle = Duration::from_micros(self.config.idle_poll_micros);
        let thread = std::thread::Builder::new()
            .name(format!("tart-engine-{}", id.raw()))
            .spawn(move || {
                let mut draining = false;
                loop {
                    match rx.recv_timeout(idle) {
                        Ok(env) => {
                            match core.handle(env) {
                                Flow::Die => return, // fail-stop: drop everything
                                Flow::Drain => draining = true,
                                Flow::Continue => {}
                            }
                            // Batch whatever else is already queued.
                            while let Ok(env) = rx.try_recv() {
                                match core.handle(env) {
                                    Flow::Die => return,
                                    Flow::Drain => draining = true,
                                    Flow::Continue => {}
                                }
                            }
                        }
                        Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                            core.on_idle_tick();
                        }
                        Err(crossbeam::channel::RecvTimeoutError::Disconnected) => return,
                    }
                    core.pump();
                    if draining && core.drain_step() {
                        core.take_checkpoint();
                        return;
                    }
                }
            })
            .expect("spawn engine thread");
        self.engines.insert(
            id,
            EngineSlot {
                sender: tx,
                thread: Some(thread),
                replica,
                metrics,
                alive: true,
            },
        );
    }

    /// The injector for the external producer `name`.
    pub fn injector(&self, name: &str) -> Option<&Injector> {
        self.injectors.get(name)
    }

    /// Declares end-of-stream on every external producer.
    pub fn finish_inputs(&self) {
        for inj in self.injectors.values() {
            inj.finish();
        }
    }

    /// Heartbeats every idle external producer (promising silence up to
    /// now), unsticking downstream pessimism delays in real-time runs.
    pub fn heartbeat_inputs(&self) {
        for inj in self.injectors.values() {
            inj.heartbeat();
        }
    }

    /// Triggers an immediate soft checkpoint on `engine`.
    pub fn checkpoint_now(&self, engine: EngineId) {
        self.router.send(engine, Envelope::Checkpoint);
    }

    /// Switches the silence propagation strategy on every engine, live.
    /// No determinism fault is needed: only the communication of silence
    /// changes, never which ticks are silent (§II.G.4).
    pub fn set_silence_policy(&self, policy: tart_silence::SilencePolicy) {
        for (id, slot) in &self.engines {
            if slot.alive {
                self.router.send(*id, Envelope::SetSilencePolicy { policy });
            }
        }
    }

    /// Installs a re-calibrated estimator for `component` (a determinism
    /// fault, logged before use — §II.G.4).
    pub fn recalibrate(&self, component: ComponentId, spec: EstimatorSpec) {
        if let Some(engine) = self.placement.engine_of(component) {
            self.router
                .send(engine, Envelope::Recalibrate { component, spec });
        }
    }

    /// Fail-stops `engine`: its thread exits immediately, losing all state
    /// and all envelopes in its inbox (the §II.A failure model). Returns
    /// once the thread is gone.
    pub fn kill(&mut self, engine: EngineId) {
        self.router.send(engine, Envelope::Die);
        self.router.deregister(engine);
        if let Some(slot) = self.engines.get_mut(&engine) {
            slot.alive = false;
            if let Some(t) = slot.thread.take() {
                let _ = t.join();
            }
        }
    }

    /// Promotes `engine`'s passive replica: rebuilds the components from the
    /// checkpoint chain and the determinism-fault log, re-registers the
    /// inbox, and replays — from upstream retention for internal wires and
    /// from the message log for external wires (§II.F.3–4).
    ///
    /// # Panics
    ///
    /// Panics if the engine is still alive.
    pub fn promote(&mut self, engine: EngineId) {
        let slot = self.engines.get(&engine).expect("engine was deployed");
        assert!(
            !slot.alive,
            "promote requires a dead engine (call kill first)"
        );
        let replica = slot.replica.clone();
        let chain = replica.chain();
        let faults = replica.faults();

        let fresh_replica = ReplicaStore::new();
        let mut core = EngineCore::new(
            engine,
            &self.spec,
            &self.placement,
            &self.config,
            self.router.clone(),
            fresh_replica.clone(),
            self.outputs_tx.clone(),
        );

        // Register the new inbox FIRST so the replay responses triggered by
        // restore (and live traffic) reach the restored engine.
        let (tx, rx) = unbounded::<Envelope>();
        self.router.register(engine, tx.clone());

        // Restore state and issue replay requests — to upstream engines for
        // internal wires, to the supervisor (message log) for external ones.
        core.restore(&chain, &faults);

        // Spawn the thread around the restored core.
        let metrics = core.metrics_handle();
        let idle = Duration::from_micros(self.config.idle_poll_micros);
        let thread = std::thread::Builder::new()
            .name(format!("tart-engine-{}r", engine.raw()))
            .spawn(move || {
                let mut draining = false;
                loop {
                    match rx.recv_timeout(idle) {
                        Ok(env) => match core.handle(env) {
                            Flow::Die => return,
                            Flow::Drain => draining = true,
                            Flow::Continue => {}
                        },
                        Err(crossbeam::channel::RecvTimeoutError::Timeout) => core.on_idle_tick(),
                        Err(crossbeam::channel::RecvTimeoutError::Disconnected) => return,
                    }
                    core.pump();
                    if draining && core.drain_step() {
                        core.take_checkpoint();
                        return;
                    }
                }
            })
            .expect("spawn engine thread");
        self.engines.insert(
            engine,
            EngineSlot {
                sender: tx,
                thread: Some(thread),
                replica: fresh_replica,
                metrics,
                alive: true,
            },
        );
    }

    /// A snapshot of `engine`'s metrics.
    pub fn engine_metrics(&self, engine: EngineId) -> Option<EngineMetrics> {
        self.engines.get(&engine).map(|s| s.metrics.lock().clone())
    }

    /// `(dropped, duplicated)` counts from the link fault injector.
    pub fn fault_counts(&self) -> (u64, u64) {
        self.router.fault_counts()
    }

    /// Number of checkpoints currently held by `engine`'s replica.
    pub fn replica_depth(&self, engine: EngineId) -> usize {
        self.engines.get(&engine).map_or(0, |s| s.replica.len())
    }

    /// Non-blocking drain of whatever outputs have been produced so far.
    pub fn take_outputs(&self) -> Vec<OutputRecord> {
        self.outputs_rx.try_iter().collect()
    }

    /// Gracefully drains and joins every engine, returning all external
    /// outputs (including any recovery stutter — see
    /// [`Cluster::dedup_outputs`]).
    pub fn shutdown(mut self) -> Vec<OutputRecord> {
        for slot in self.engines.values() {
            if slot.alive {
                let _ = slot.sender.send(Envelope::Drain);
            }
        }
        for slot in self.engines.values_mut() {
            if let Some(t) = slot.thread.take() {
                let _ = t.join();
            }
        }
        self.router.send(EXTERNAL_ENGINE, Envelope::Die);
        if let Some(t) = self.supervisor.take() {
            let _ = t.join();
        }
        drop(self.outputs_tx);
        self.outputs_rx.try_iter().collect()
    }

    /// Removes output stutter: keeps, per wire, only the first record at
    /// each virtual time, in virtual-time order — exactly the compensation
    /// the paper expects monotonic-output consumers to apply (§II.A).
    pub fn dedup_outputs(mut outputs: Vec<OutputRecord>) -> Vec<OutputRecord> {
        outputs.sort_by_key(|o| (o.wire, o.vt));
        outputs.dedup_by_key(|o| (o.wire, o.vt));
        outputs.sort_by_key(|o| (o.vt, o.wire));
        outputs
    }
}

impl fmt::Debug for Cluster {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Cluster")
            .field("engines", &self.engines.len())
            .field("injectors", &self.injectors.len())
            .finish()
    }
}
