//! Heartbeat failure detection and automatic failover.
//!
//! Engines under supervision emit [`Envelope::Heartbeat`] beacons on the
//! reliable control plane every [`SupervisionConfig::heartbeat_interval`].
//! A dedicated supervisor thread collects them under the
//! [`crate::router`] sentinel inbox and runs one [`FailureDetector`] per
//! engine: a phi-accrual score (Hayashibara et al.) over the observed
//! inter-arrival distribution, with a hard
//! [`SupervisionConfig::suspicion_timeout`] upper bound. When an engine is
//! suspected, the supervisor runs the *same* kill → promote → replay drill
//! a human operator would ([`crate::Cluster::kill`] +
//! [`crate::Cluster::promote`]) — which is why a false positive merely
//! costs one recovery (output stutter, deduplicated downstream), never
//! correctness: deterministic replay makes failover transparent whether
//! the victim was dead or merely slow.
//!
//! Manual kills remain manual: the supervisor only recovers engines it
//! still believes alive, so a test (or operator) that fail-stops an engine
//! deliberately keeps control of when it comes back.

// Ops-plane module (tart-lint tier: Ops): wall-clock reads and hash maps never flow into the replayable core; the interprocedural TAINT-FLOW pass fences the boundary, so raw reads need no per-line allows here.
#![allow(clippy::disallowed_methods, clippy::disallowed_types)]

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::unbounded;
use parking_lot::Mutex;
use tart_vtime::EngineId;

use crate::cluster::EngineHost;
use crate::config::SupervisionConfig;
use crate::router::SUPERVISOR_ENGINE;
use crate::{Envelope, Router};

/// Heartbeats remembered per engine for the inter-arrival estimate.
const DETECTOR_WINDOW: usize = 32;

/// Per-engine liveness estimator: phi-accrual over heartbeat inter-arrival
/// times, plus a hard timeout bound.
#[derive(Clone, Debug)]
pub struct FailureDetector {
    /// Recent inter-arrival gaps, newest last.
    window: VecDeque<Duration>,
    last_beat: Instant,
    heartbeat_interval: Duration,
}

impl FailureDetector {
    /// A fresh detector that treats `now` as the first beacon (granting a
    /// full grace period before any suspicion).
    pub fn new(heartbeat_interval: Duration, now: Instant) -> Self {
        FailureDetector {
            window: VecDeque::with_capacity(DETECTOR_WINDOW),
            last_beat: now,
            heartbeat_interval,
        }
    }

    /// Records a beacon arrival.
    pub fn heartbeat(&mut self, now: Instant) {
        let gap = now.saturating_duration_since(self.last_beat);
        if self.window.len() == DETECTOR_WINDOW {
            self.window.pop_front();
        }
        self.window.push_back(gap);
        self.last_beat = now;
    }

    /// Forgets history, treating `now` as a fresh first beacon — called
    /// after a failover (new incarnation) or while an engine is
    /// deliberately down.
    pub fn reset(&mut self, now: Instant) {
        self.window.clear();
        self.last_beat = now;
    }

    /// The phi-accrual suspicion score at `now`: `-log10` of the
    /// probability that a live engine would still be silent after this
    /// long, under an exponential inter-arrival model fitted to the
    /// observed mean. Grows without bound as silence stretches.
    pub fn phi(&self, now: Instant) -> f64 {
        let elapsed = now.saturating_duration_since(self.last_beat);
        // Until the window fills, fall back to the configured interval;
        // clamp the mean so bursts of queued beacons (tiny observed gaps)
        // cannot make the detector hair-triggered.
        let mean = if self.window.is_empty() {
            self.heartbeat_interval
        } else {
            self.window.iter().sum::<Duration>() / self.window.len() as u32
        };
        let mean = mean.max(self.heartbeat_interval / 2).as_secs_f64();
        elapsed.as_secs_f64() / mean.max(1e-9) * std::f64::consts::LOG10_E
    }

    /// Whether the engine should be declared failed at `now` under `cfg`.
    pub fn suspect(&self, now: Instant, cfg: &SupervisionConfig) -> bool {
        let elapsed = now.saturating_duration_since(self.last_beat);
        if elapsed >= cfg.suspicion_timeout {
            return true;
        }
        match cfg.phi_threshold {
            // Never suspect inside one beacon period, whatever phi says.
            Some(threshold) => elapsed > cfg.heartbeat_interval && self.phi(now) > threshold,
            None => false,
        }
    }
}

/// Counters exposed by the liveness supervisor.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SupervisionMetrics {
    /// Heartbeat beacons received.
    pub heartbeats_seen: u64,
    /// Engines declared failed by the detector.
    pub suspicions: u64,
    /// Automatic kill → promote drills completed.
    pub failovers: u64,
}

/// The supervisor thread handle: owns the failure detectors and drives
/// automatic failover through the shared [`EngineHost`].
pub(crate) struct Supervisor {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
    metrics: Arc<Mutex<SupervisionMetrics>>,
    router: Router,
}

impl Supervisor {
    /// Registers the supervisor inbox and starts the detector loop.
    pub(crate) fn start(host: Arc<EngineHost>, cfg: SupervisionConfig) -> Supervisor {
        let (tx, rx) = unbounded::<Envelope>();
        host.router.register(SUPERVISOR_ENGINE, tx);
        let stop = Arc::new(AtomicBool::new(false));
        let metrics = Arc::new(Mutex::new(SupervisionMetrics::default()));
        let router = host.router.clone();
        let stop_thread = Arc::clone(&stop);
        let metrics_thread = Arc::clone(&metrics);
        let thread = std::thread::Builder::new()
            .name("tart-supervisor".into())
            .spawn(move || {
                let start = Instant::now();
                let mut detectors: HashMap<EngineId, FailureDetector> = host
                    .engine_ids()
                    .into_iter()
                    .map(|id| (id, FailureDetector::new(cfg.heartbeat_interval, start)))
                    .collect();
                while !stop_thread.load(Ordering::Relaxed) {
                    // Collect every beacon already queued before judging.
                    let mut beacons = Vec::new();
                    match rx.recv_timeout(cfg.poll_interval) {
                        Ok(env) => beacons.push(env),
                        Err(crossbeam::channel::RecvTimeoutError::Timeout) => {}
                        Err(crossbeam::channel::RecvTimeoutError::Disconnected) => return,
                    }
                    beacons.extend(rx.try_iter());
                    let now = Instant::now();
                    for env in beacons {
                        if let Envelope::Heartbeat { engine, .. } = env {
                            metrics_thread.lock().heartbeats_seen += 1;
                            detectors
                                .entry(engine)
                                .or_insert_with(|| {
                                    FailureDetector::new(cfg.heartbeat_interval, now)
                                })
                                .heartbeat(now);
                        }
                    }
                    for id in host.engine_ids() {
                        let now = Instant::now();
                        let suspected = {
                            let det = detectors.entry(id).or_insert_with(|| {
                                FailureDetector::new(cfg.heartbeat_interval, now)
                            });
                            if !host.is_alive(id) {
                                // Deliberately killed: recovery stays
                                // manual. Keep the detector fresh so a
                                // later promote is not instantly
                                // re-suspected.
                                det.reset(now);
                                continue;
                            }
                            det.suspect(now, &cfg)
                        };
                        if suspected {
                            metrics_thread.lock().suspicions += 1;
                            host.kill(id);
                            match host.promote(id) {
                                Ok(()) => {
                                    // The promotion just appended its
                                    // event; dump the timeline that led to
                                    // it while it is hot.
                                    crate::cluster::dump_flight(
                                        &host.obs,
                                        &format!("supervisor promoted {id}"),
                                    );
                                    metrics_thread.lock().failovers += 1;
                                }
                                Err(err) => {
                                    // Nothing restorable (or a racing
                                    // promotion): leave the engine dead
                                    // rather than thrash. The drill did not
                                    // complete, so `failovers` stays put.
                                    crate::cluster::dump_flight(
                                        &host.obs,
                                        &format!("supervisor promotion of {id} failed: {err}"),
                                    );
                                }
                            }
                            // Flapping guard: the kill → promote drill
                            // blocked this loop, so EVERY detector's view
                            // of "recent silence" is stale — not just the
                            // promoted engine's. Reset them all, or the
                            // next poll cascades one recovery into a storm
                            // of spurious failovers.
                            let fresh = Instant::now();
                            for det in detectors.values_mut() {
                                det.reset(fresh);
                            }
                        }
                    }
                }
            })
            .expect("spawn supervisor thread");
        Supervisor {
            stop,
            thread: Some(thread),
            metrics,
            router,
        }
    }

    /// A snapshot of the counters.
    pub(crate) fn metrics(&self) -> SupervisionMetrics {
        self.metrics.lock().clone()
    }

    /// The shared counters (live view, for the chaos driver).
    pub(crate) fn metrics_handle(&self) -> Arc<Mutex<SupervisionMetrics>> {
        Arc::clone(&self.metrics)
    }

    /// Stops the detector loop and joins the thread.
    pub(crate) fn stop(mut self) {
        self.halt();
    }

    fn halt(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        self.router.deregister(SUPERVISOR_ENGINE);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Supervisor {
    fn drop(&mut self) {
        self.halt();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SupervisionConfig {
        SupervisionConfig {
            heartbeat_interval: Duration::from_millis(10),
            suspicion_timeout: Duration::from_millis(100),
            phi_threshold: Some(8.0),
            poll_interval: Duration::from_millis(5),
        }
    }

    #[test]
    fn regular_beacons_are_never_suspected() {
        let cfg = cfg();
        let t0 = Instant::now();
        let mut det = FailureDetector::new(cfg.heartbeat_interval, t0);
        let mut now = t0;
        for _ in 0..50 {
            now += Duration::from_millis(10);
            det.heartbeat(now);
            assert!(!det.suspect(now + Duration::from_millis(1), &cfg));
        }
        assert!(det.phi(now + Duration::from_millis(10)) < 1.0);
    }

    #[test]
    fn silence_crosses_phi_before_hard_timeout() {
        let cfg = cfg();
        let t0 = Instant::now();
        let mut det = FailureDetector::new(cfg.heartbeat_interval, t0);
        let mut now = t0;
        for _ in 0..20 {
            now += Duration::from_millis(10);
            det.heartbeat(now);
        }
        // phi > 8 at roughly 8 / log10(e) * mean ≈ 184 ms of silence — but
        // the 100 ms hard timeout fires first with this config; with the
        // hard bound lifted, phi alone still convicts.
        let lenient = SupervisionConfig {
            suspicion_timeout: Duration::from_secs(3600),
            ..cfg.clone()
        };
        assert!(!det.suspect(now + Duration::from_millis(50), &lenient));
        assert!(det.suspect(now + Duration::from_millis(250), &lenient));
        // Hard timeout convicts even with phi disabled.
        let timeout_only = SupervisionConfig {
            phi_threshold: None,
            ..cfg
        };
        assert!(!det.suspect(now + Duration::from_millis(50), &timeout_only));
        assert!(det.suspect(now + Duration::from_millis(150), &timeout_only));
    }

    #[test]
    fn burst_arrivals_do_not_hair_trigger() {
        let cfg = cfg();
        let t0 = Instant::now();
        let mut det = FailureDetector::new(cfg.heartbeat_interval, t0);
        // 32 beacons delivered in the same instant (queued burst): the mean
        // clamp keeps one beacon period of silence unsuspicious.
        for _ in 0..32 {
            det.heartbeat(t0);
        }
        assert!(!det.suspect(t0 + Duration::from_millis(11), &cfg));
    }

    #[test]
    fn reset_grants_a_fresh_grace_period() {
        let cfg = cfg();
        let t0 = Instant::now();
        let mut det = FailureDetector::new(cfg.heartbeat_interval, t0);
        let late = t0 + Duration::from_millis(500);
        assert!(det.suspect(late, &cfg));
        det.reset(late);
        assert!(!det.suspect(late + Duration::from_millis(5), &cfg));
    }
}
