//! The warm-standby plane: background pre-apply of streamed checkpoints.
//!
//! With [`crate::StandbyConfig`] enabled, every engine streams its soft
//! checkpoints ([`Envelope::StandbyCheckpoint`]) and external-input head
//! advances ([`Envelope::StandbyInput`]) to the sentinel inbox this plane
//! owns ([`crate::router::STANDBY_ENGINE`]). A single background thread
//! keeps one passive [`EngineCore`] per streaming engine and pre-applies
//! each checkpoint's component snapshots once it is at least
//! [`crate::StandbyConfig::trailing_horizon_ticks`] of virtual time behind
//! the engine's observed input head — verifying every applied member
//! against its recorded state digests ([`EngineCore::verify_member`]).
//!
//! A hash mismatch **demotes** the slot: the tainted core is dropped and
//! the slot refuses further stream members, so promotion falls back to the
//! cold `restore_verified` path instead of taking over with bad state
//! (LLFT's leader/follower discipline, hardened by DESIGN.md §15's
//! verified replay). A stream gap — a delta whose base was never applied —
//! merely de-anchors the slot until the next self-contained generation;
//! gaps cost warmth, never correctness, because the authoritative
//! [`crate::ReplicaStore`] chain is untouched by any of this.
//!
//! At promotion, [`StandbyPlane::take`] hands the pre-applied core (plus
//! the `(seq, chain_seal)` coordinates of the last member it absorbed) to
//! `EngineHost::promote`, which applies only the unapplied chain tail and
//! runs the ordinary tail-digest activation.

// Ops-plane module (tart-lint tier: Ops): the standby plane runs on wall-clock pacing and never feeds state back into the replayable core until promotion swaps a verified core in; the interprocedural TAINT-FLOW pass fences the boundary, so raw reads need no per-line allows here.
#![allow(clippy::disallowed_methods, clippy::disallowed_types)]

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::unbounded;
use parking_lot::Mutex;
use tart_model::{AppSpec, StateHash};
use tart_vtime::{EngineId, VirtualTime};

use crate::cluster::dump_flight;
use crate::config::StandbyConfig;
use crate::core::{EngineCore, OutputRecord};
use crate::router::STANDBY_ENGINE;
use crate::{ClusterConfig, EngineCheckpoint, Envelope, Placement, ReplicaStore, Router};

/// Point-in-time view of one engine's standby slot (test and operator
/// introspection; see [`crate::Cluster::standby_status`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StandbyStatus {
    /// Stream members verified and pre-applied so far (across the slot's
    /// current incarnation).
    pub applied: u64,
    /// Checkpoints received but still inside the trailing horizon.
    pub pending: usize,
    /// Whether the slot currently holds a chain-consistent core (a warm
    /// takeover candidate).
    pub anchored: bool,
    /// Whether a digest mismatch demoted this slot to cold-replay mode.
    pub demoted: bool,
}

/// What [`StandbyPlane::take`] hands to a warm promotion.
pub(crate) struct WarmCandidate {
    /// The pre-applied passive core.
    pub(crate) core: EngineCore,
    /// Sequence number of the last chain member the core absorbed.
    pub(crate) applied_seq: u64,
    /// Chain seal of that member — promotion locates it in the
    /// authoritative replica chain by `(seq, seal)` and applies only what
    /// follows.
    pub(crate) applied_seal: StateHash,
}

/// One engine's passive slot.
struct StandbySlot {
    /// The background core; `None` until the first self-contained
    /// checkpoint anchors it (or after demotion/takeover).
    core: Option<EngineCore>,
    /// Received checkpoints not yet old enough to apply (trailing horizon).
    pending: VecDeque<EngineCheckpoint>,
    /// Highest virtual time observed for this engine (checkpoint captures
    /// and external-input arrivals both advance it).
    head: VirtualTime,
    /// Whether `core` reflects an unbroken seal chain through
    /// `applied_seq`/`applied_seal`.
    anchored: bool,
    applied_seq: u64,
    applied_seal: StateHash,
    applied: u64,
    demoted: bool,
    /// Chaos hook: flip a recorded digest on the next member applied, to
    /// drill the demotion path ([`StandbyPlane::corrupt_next`]).
    tamper_next: bool,
}

impl Default for StandbySlot {
    fn default() -> Self {
        StandbySlot {
            core: None,
            pending: VecDeque::new(),
            head: VirtualTime::ZERO,
            anchored: false,
            applied_seq: 0,
            applied_seal: StateHash::ZERO,
            applied: 0,
            demoted: false,
            tamper_next: false,
        }
    }
}

/// Everything the plane thread needs to build a passive core on demand.
struct PlaneCtx {
    cfg: StandbyConfig,
    spec: AppSpec,
    placement: Placement,
    config: ClusterConfig,
    router: Router,
    outputs_tx: crossbeam::channel::Sender<OutputRecord>,
    hub: Arc<tart_obs::ObsHub>,
}

struct PlaneShared {
    slots: Mutex<BTreeMap<EngineId, StandbySlot>>,
    stop: AtomicBool,
}

/// The cluster-wide warm-standby plane: one background thread, one slot
/// per streaming engine. Owned by `EngineHost`; torn down on drop.
pub(crate) struct StandbyPlane {
    shared: Arc<PlaneShared>,
    router: Router,
    thread: Option<JoinHandle<()>>,
}

impl StandbyPlane {
    /// Registers the sentinel inbox and starts the pre-apply thread.
    pub(crate) fn start(
        cfg: StandbyConfig,
        spec: AppSpec,
        placement: Placement,
        config: ClusterConfig,
        router: Router,
        outputs_tx: crossbeam::channel::Sender<OutputRecord>,
        hub: Arc<tart_obs::ObsHub>,
    ) -> StandbyPlane {
        let (tx, rx) = unbounded::<Envelope>();
        router.register(STANDBY_ENGINE, tx);
        let shared = Arc::new(PlaneShared {
            slots: Mutex::new(BTreeMap::new()),
            stop: AtomicBool::new(false),
        });
        let ctx = PlaneCtx {
            cfg,
            spec,
            placement,
            config,
            router: router.clone(),
            outputs_tx,
            hub,
        };
        let shared_thread = Arc::clone(&shared);
        let thread = std::thread::Builder::new()
            .name("tart-standby".into())
            .spawn(move || {
                while !shared_thread.stop.load(Ordering::Relaxed) {
                    match rx.recv_timeout(ctx.cfg.apply_interval) {
                        Ok(env) => {
                            on_envelope(&shared_thread, env);
                            for env in rx.try_iter() {
                                on_envelope(&shared_thread, env);
                            }
                        }
                        Err(crossbeam::channel::RecvTimeoutError::Timeout) => {}
                        Err(crossbeam::channel::RecvTimeoutError::Disconnected) => return,
                    }
                    apply_eligible(&shared_thread, &ctx);
                }
            })
            .expect("spawn standby thread");
        StandbyPlane {
            shared,
            router,
            thread: Some(thread),
        }
    }

    /// Takes the warm candidate for `engine`, if its slot holds an
    /// anchored, undemoted core. Always resets the slot — the next
    /// incarnation re-anchors at its first (full) checkpoint, and a
    /// demoted slot's verdict applies only to the incarnation it watched.
    pub(crate) fn take(&self, engine: EngineId) -> Option<WarmCandidate> {
        let mut slots = self.shared.slots.lock();
        let slot = slots.get_mut(&engine)?;
        let was = std::mem::take(slot);
        if was.demoted || !was.anchored {
            return None;
        }
        Some(WarmCandidate {
            core: was.core?,
            applied_seq: was.applied_seq,
            applied_seal: was.applied_seal,
        })
    }

    /// The current slot view for `engine` (`None` before any stream member
    /// arrived).
    pub(crate) fn status(&self, engine: EngineId) -> Option<StandbyStatus> {
        self.shared
            .slots
            .lock()
            .get(&engine)
            .map(|s| StandbyStatus {
                applied: s.applied,
                pending: s.pending.len(),
                anchored: s.anchored,
                demoted: s.demoted,
            })
    }

    /// Chaos hook: corrupt a recorded digest on the next member the slot
    /// applies, forcing the demotion drill without touching the
    /// authoritative replica chain.
    pub(crate) fn corrupt_next(&self, engine: EngineId) {
        self.shared
            .slots
            .lock()
            .entry(engine)
            .or_default()
            .tamper_next = true;
    }

    fn stop(&mut self) {
        self.shared.stop.store(true, Ordering::Relaxed);
        self.router.deregister(STANDBY_ENGINE);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for StandbyPlane {
    fn drop(&mut self) {
        self.stop();
    }
}

/// A checkpoint's capture-time virtual clock: the max across components.
fn ckpt_vt(ckpt: &EngineCheckpoint) -> VirtualTime {
    ckpt.clocks
        .values()
        .copied()
        .max()
        .unwrap_or(VirtualTime::ZERO)
}

fn on_envelope(shared: &PlaneShared, env: Envelope) {
    match env {
        Envelope::StandbyCheckpoint { ckpt } => {
            let mut slots = shared.slots.lock();
            let slot = slots.entry(ckpt.engine).or_default();
            if slot.demoted {
                return; // cold-replay mode until the next incarnation
            }
            slot.head = slot.head.max_with(ckpt_vt(&ckpt));
            slot.pending.push_back(*ckpt);
        }
        Envelope::StandbyInput { engine, vt, .. } => {
            let mut slots = shared.slots.lock();
            let slot = slots.entry(engine).or_default();
            slot.head = slot.head.max_with(vt);
        }
        Envelope::Die => { /* plane shutdown rides the stop flag */ }
        _ => { /* mis-routed traffic; the data plane never targets us */ }
    }
}

/// Applies, per slot, every pending checkpoint that has fallen behind the
/// trailing horizon. Holding the slots lock across the apply is fine: the
/// only contended operations (`take`, `status`, `corrupt_next`) run at
/// promotion or test cadence, not per-message.
fn apply_eligible(shared: &PlaneShared, ctx: &PlaneCtx) {
    let horizon = ctx.cfg.trailing_horizon_ticks;
    let mut slots = shared.slots.lock();
    for (engine, slot) in slots.iter_mut() {
        while let Some(front) = slot.pending.front() {
            if ckpt_vt(front).as_ticks().saturating_add(horizon) > slot.head.as_ticks() {
                break; // still inside the horizon; stay trailing
            }
            let ckpt = slot.pending.pop_front().expect("front exists");
            apply_one(*engine, slot, ckpt, ctx);
            if slot.demoted {
                break;
            }
        }
    }
}

fn apply_one(engine: EngineId, slot: &mut StandbySlot, mut ckpt: EngineCheckpoint, ctx: &PlaneCtx) {
    if ckpt.is_self_contained() {
        // Full generations (re-)anchor the slot: a full restore overwrites
        // component state completely, exactly as the cold path applies
        // mid-chain fulls onto already-restored cores.
        if slot.core.is_none() {
            let mut core = EngineCore::new(
                engine,
                &ctx.spec,
                &ctx.placement,
                &ctx.config,
                ctx.router.clone(),
                ReplicaStore::new(),
                ctx.outputs_tx.clone(),
            );
            core.set_obs(ctx.hub.engine(engine));
            slot.core = Some(core);
        }
    } else if !(slot.anchored
        && slot.core.is_some()
        && ckpt.seq == slot.applied_seq + 1
        && ckpt.seal_over(&slot.applied_seal) == ckpt.chain_seal)
    {
        // A delta whose base we never absorbed (stream gap, or a seal that
        // does not continue from what we applied). Not divergence — the
        // authoritative replica chain is intact — so just de-anchor and
        // wait for the next full generation to restart the seal chain.
        slot.anchored = false;
        return;
    }
    if slot.tamper_next {
        slot.tamper_next = false;
        if let Some(hash) = ckpt.component_hashes.values_mut().next() {
            hash.0[0] ^= 0xFF;
        }
    }
    let vt = ckpt_vt(&ckpt);
    let core = slot.core.as_mut().expect("anchored slots hold a core");
    core.apply_member_snapshots(&ckpt);
    match core.verify_member(&ckpt) {
        Ok(()) => {
            slot.anchored = true;
            slot.applied_seq = ckpt.seq;
            slot.applied_seal = ckpt.chain_seal;
            slot.applied += 1;
            ctx.hub
                .standby_applied(slot.head.as_ticks().saturating_sub(vt.as_ticks()));
        }
        Err(fault) => {
            // Demote: drop the tainted core and refuse the rest of this
            // incarnation's stream. Promotion will go cold, which replays
            // the verified chain from scratch — slower, never wrong.
            slot.core = None;
            slot.pending.clear();
            slot.anchored = false;
            slot.demoted = true;
            ctx.hub.standby_demotion(engine, fault.vt);
            dump_flight(
                &ctx.hub,
                &format!("standby for {engine} diverged, demoted to cold replay: {fault}"),
            );
        }
    }
}
