//! The transport reactor: one thread, every socket.
//!
//! The first multi-host implementation spent a thread per connection — a
//! writer thread per [`crate::net::RemoteLink`] plus a reader thread per
//! accepted inbound stream. That model charges every link a stack and a
//! scheduler slot, which is exactly the wrong shape for a mesh: an
//! N-engine deployment holds O(N) links per process, and the paper's
//! premise (fault-tolerance machinery off the critical path) extends to
//! not taxing the OS scheduler with idle transport threads.
//!
//! This module replaces all of those threads with a single process-wide
//! reactor. Every socket it owns is nonblocking; one loop multiplexes:
//!
//! * **outbound links** — drain the link's router queue into one batch
//!   frame (silence-coalesced, CRC'd, encoded by reference into the link's
//!   reusable buffer), then push bytes until the kernel says
//!   `WouldBlock`; partial writes persist in the buffer across passes.
//!   Reconnect backoff, drop accounting and give-up semantics are the
//!   same [`ReconnectPolicy`] state machine the per-thread writer ran.
//! * **inbound listeners** — accept new streams, read whatever bytes are
//!   available, and reassemble batch frames incrementally from a per-
//!   connection buffer (a frame may arrive split across any number of
//!   reads; [`pop_frame`] consumes only complete, CRC-verified frames).
//!
//! Readiness is discovered by *polling* the nonblocking sockets on a
//! short tick rather than by an OS readiness API: the workspace carries
//! `#![forbid(unsafe_code)]` and no FFI crates, which rules out
//! `epoll`/`kqueue` bindings. The loop compensates the way the engine
//! cores do (`idle_poll_micros`): when a pass moves no bytes it parks on
//! the control channel for [`IDLE_TICK`] (so new links still attach
//! instantly), and while any socket is making progress it spins without
//! sleeping. The reactor thread starts lazily on the first link or
//! listener and lives for the process — an idle reactor costs one parked
//! thread, the same as the old model's cheapest case.
//!
//! Determinism: none of this is visible to replay. The reactor moves
//! already-sequenced envelopes between routers; ordering per link is FIFO
//! (one TCP stream), and loss on a broken link is counted in
//! [`LinkState`] and recovered by the replay protocol exactly as before.

// Ops-plane module (tart-lint tier: Ops): wall-clock reads (reconnect
// backoff, readiness ticks) never flow into the replayable core; the
// interprocedural TAINT-FLOW pass fences the boundary.
#![allow(clippy::disallowed_methods, clippy::disallowed_types)]

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use bytes::BytesMut;
use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};
use parking_lot::Mutex;
use tart_codec::crc32;
use tart_stats::DetRng;
use tart_vtime::EngineId;

use crate::net::{
    coalesce_silence, decode_batch_body, encode_batch_into, LinkState, ReconnectPolicy, MAX_BATCH,
    MAX_FRAME,
};
use crate::{Envelope, Router};

/// How long the reactor parks on its control channel when a full pass
/// moved no bytes. Mirrors the engines' `idle_poll_micros` order of
/// magnitude: cheap enough to keep first-byte latency low, long enough
/// that an idle process doesn't burn a core.
const IDLE_TICK: Duration = Duration::from_micros(500);

/// Bound on one blocking reconnect attempt. Attempts run on the reactor
/// thread, so a black-holed peer must not stall every other link for the
/// kernel's default connect timeout.
const CONNECT_TIMEOUT: Duration = Duration::from_millis(250);

/// Read chunk for inbound streams (one shared scratch, not per-connection).
const READ_CHUNK: usize = 64 * 1024;

/// Control messages from link/listener constructors to the reactor loop.
enum Ctrl {
    AddLink(Box<LinkTask>),
    AddInbound(Box<InboundTask>),
}

/// Handle to the process-wide reactor; cloneless — constructors go
/// through [`global`].
pub(crate) struct Reactor {
    ctrl: Sender<Ctrl>,
}

/// The process-wide reactor, started lazily on first use.
pub(crate) fn global() -> &'static Reactor {
    static REACTOR: OnceLock<Reactor> = OnceLock::new();
    REACTOR.get_or_init(|| {
        let (tx, rx) = unbounded();
        std::thread::Builder::new()
            .name("tart-net-reactor".into())
            .spawn(move || run(rx))
            .expect("spawn reactor thread");
        Reactor { ctrl: tx }
    })
}

impl Reactor {
    /// Attaches an outbound link; it is serviced from the next pass on.
    pub(crate) fn add_link(&self, task: LinkTask) {
        let _ = self.ctrl.send(Ctrl::AddLink(Box::new(task)));
    }

    /// Attaches an inbound listener; it is serviced from the next pass on.
    pub(crate) fn add_inbound(&self, task: InboundTask) {
        let _ = self.ctrl.send(Ctrl::AddInbound(Box::new(task)));
    }
}

/// The reactor loop: drain control, pump every listener and link, park
/// briefly when nothing moved.
fn run(ctrl: Receiver<Ctrl>) {
    let mut links: Vec<LinkTask> = Vec::new();
    let mut inbounds: Vec<InboundTask> = Vec::new();
    let mut scratch = vec![0u8; READ_CHUNK];
    loop {
        let mut progress = false;
        loop {
            match ctrl.try_recv() {
                Ok(msg) => {
                    attach(msg, &mut links, &mut inbounds);
                    progress = true;
                }
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => return,
            }
        }
        inbounds.retain_mut(|inbound| {
            if inbound.stop.load(Ordering::Relaxed) {
                return false; // drops listener + streams
            }
            progress |= inbound.pump(&mut scratch);
            true
        });
        links.retain_mut(|link| match link.pump() {
            LinkPass::Progress => {
                progress = true;
                true
            }
            LinkPass::Idle => true,
            LinkPass::Detach => false,
        });
        if !progress {
            // Park on the control channel: a new link attaching wakes the
            // loop immediately; otherwise this is the readiness tick.
            match ctrl.recv_timeout(IDLE_TICK) {
                Ok(msg) => attach(msg, &mut links, &mut inbounds),
                Err(crossbeam::channel::RecvTimeoutError::Timeout) => {}
                Err(crossbeam::channel::RecvTimeoutError::Disconnected) => return,
            }
        }
    }
}

fn attach(msg: Ctrl, links: &mut Vec<LinkTask>, inbounds: &mut Vec<InboundTask>) {
    match msg {
        Ctrl::AddLink(l) => links.push(*l),
        Ctrl::AddInbound(i) => inbounds.push(*i),
    }
}

/// Outcome of one service pass over a link.
enum LinkPass {
    /// Bytes or envelopes moved.
    Progress,
    /// Nothing to do.
    Idle,
    /// The link is done (handle dropped, or every sender gone): remove it.
    Detach,
}

/// One outbound link: the state the dedicated writer thread used to keep
/// on its stack, now a plain struct the reactor iterates.
pub(crate) struct LinkTask {
    engine: EngineId,
    rx: Receiver<Envelope>,
    stream: Option<TcpStream>,
    addrs: Vec<SocketAddr>,
    policy: ReconnectPolicy,
    state: Arc<LinkState>,
    stop: Arc<AtomicBool>,
    rng: DetRng,
    /// Encoded-but-unflushed frame bytes; `written` of them are already on
    /// the wire. Survives `WouldBlock` across passes.
    outbuf: BytesMut,
    written: usize,
    /// Envelope count inside `outbuf` — batch counters are bumped only
    /// when the frame fully flushes, drop counters if the link breaks
    /// with the frame in flight (same accounting as the blocking writer).
    outbuf_envs: u64,
    batch: Vec<(EngineId, Envelope)>,
    backoff: Duration,
    attempts: u32,
    next_attempt: Instant,
}

impl LinkTask {
    /// Packages a freshly-connected (nonblocking) stream for the reactor.
    pub(crate) fn new(
        engine: EngineId,
        rx: Receiver<Envelope>,
        stream: TcpStream,
        addrs: Vec<SocketAddr>,
        policy: ReconnectPolicy,
        state: Arc<LinkState>,
        stop: Arc<AtomicBool>,
    ) -> LinkTask {
        let backoff = policy.initial_backoff;
        LinkTask {
            engine,
            rx,
            stream: Some(stream),
            addrs,
            policy,
            state,
            stop,
            rng: DetRng::seed_from(0x9e3779b9 ^ u64::from(engine.raw())),
            outbuf: BytesMut::with_capacity(4096),
            written: 0,
            outbuf_envs: 0,
            batch: Vec::new(),
            backoff,
            attempts: 0,
            next_attempt: Instant::now(),
        }
    }

    /// One service pass: reconnect if due, refill the out-buffer from the
    /// router queue, push bytes until the kernel blocks.
    fn pump(&mut self) -> LinkPass {
        if self.stop.load(Ordering::Relaxed) {
            return LinkPass::Detach;
        }
        let mut progress = false;

        let give_up = self.policy.max_attempts > 0 && self.attempts >= self.policy.max_attempts;
        if self.stream.is_none() && give_up && !self.state.gave_up.load(Ordering::SeqCst) {
            self.state
                .update(|st| st.gave_up.store(true, Ordering::SeqCst));
        }
        if self.stream.is_none() && !give_up && Instant::now() >= self.next_attempt {
            progress |= self.try_reconnect();
        }

        // Refill only when the previous frame fully flushed, so the
        // envelope count in flight is exact for drop accounting.
        let mut senders_gone = false;
        if self.outbuf.is_empty() {
            self.batch.clear();
            while self.batch.len() < MAX_BATCH {
                match self.rx.try_recv() {
                    Ok(env) => self.batch.push((self.engine, env)),
                    Err(TryRecvError::Empty) => break,
                    Err(TryRecvError::Disconnected) => {
                        senders_gone = true;
                        break;
                    }
                }
            }
            if !self.batch.is_empty() {
                progress = true;
                coalesce_silence(&mut self.batch);
                let count = self.batch.len() as u64;
                if self.stream.is_some() {
                    encode_batch_into(&mut self.outbuf, &self.batch);
                    self.written = 0;
                    self.outbuf_envs = count;
                } else {
                    // Broken or absent connection: the whole batch is
                    // in-transit loss (replay recovers the stream).
                    self.state.update(|st| {
                        st.dropped_frames.fetch_add(count, Ordering::SeqCst);
                    });
                }
            }
        }

        if !self.outbuf.is_empty() {
            progress |= self.flush();
        }
        if senders_gone && self.outbuf.is_empty() {
            return LinkPass::Detach;
        }
        if progress {
            LinkPass::Progress
        } else {
            LinkPass::Idle
        }
    }

    /// Pushes buffered frame bytes until done or `WouldBlock`; a write
    /// error turns the frame into counted in-transit loss and schedules a
    /// reconnect.
    fn flush(&mut self) -> bool {
        let Some(stream) = self.stream.as_mut() else {
            return false;
        };
        let mut progress = false;
        loop {
            match stream.write(&self.outbuf[self.written..]) {
                Ok(0) => {
                    self.on_disconnect();
                    return true;
                }
                Ok(n) => {
                    progress = true;
                    self.written += n;
                    if self.written == self.outbuf.len() {
                        let count = self.outbuf_envs;
                        self.state.update(|st| {
                            st.batches_sent.fetch_add(1, Ordering::SeqCst);
                            st.envelopes_batched.fetch_add(count, Ordering::SeqCst);
                        });
                        self.outbuf.clear();
                        self.written = 0;
                        self.outbuf_envs = 0;
                        return true;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return progress,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.on_disconnect();
                    return true;
                }
            }
        }
    }

    /// Marks the connection lost: pending frame envelopes become counted
    /// loss, backoff restarts jittered.
    fn on_disconnect(&mut self) {
        let pending = self.outbuf_envs;
        self.stream = None;
        self.outbuf.clear();
        self.written = 0;
        self.outbuf_envs = 0;
        self.state.update(|st| {
            st.dropped_frames.fetch_add(pending, Ordering::SeqCst);
            st.connected.store(false, Ordering::SeqCst);
        });
        self.backoff = self.policy.initial_backoff;
        self.attempts = 0;
        self.next_attempt = Instant::now()
            + self
                .backoff
                .mul_f64(1.0 + self.policy.jitter * self.rng.next_f64());
    }

    /// One bounded reconnect attempt (the same backoff math the blocking
    /// writer used; `CONNECT_TIMEOUT` keeps a black-holed peer from
    /// stalling other links).
    fn try_reconnect(&mut self) -> bool {
        let connected = self
            .addrs
            .iter()
            .find_map(|addr| TcpStream::connect_timeout(addr, CONNECT_TIMEOUT).ok());
        match connected {
            Some(s) => {
                s.set_nodelay(true).ok();
                if s.set_nonblocking(true).is_err() {
                    // A stream we cannot drive nonblocking is useless to
                    // the reactor; treat the attempt as failed.
                    self.note_failed_attempt();
                    return false;
                }
                self.stream = Some(s);
                self.state.update(|st| {
                    st.connected.store(true, Ordering::SeqCst);
                    st.epoch.fetch_add(1, Ordering::SeqCst);
                    st.reconnects.fetch_add(1, Ordering::SeqCst);
                });
                self.backoff = self.policy.initial_backoff;
                self.attempts = 0;
                true
            }
            None => {
                self.note_failed_attempt();
                false
            }
        }
    }

    fn note_failed_attempt(&mut self) {
        self.attempts += 1;
        // Jitter stretches the delay by up to `jitter` of itself — never
        // shortens it, so backoff stays monotone under the cap.
        let jittered = self
            .backoff
            .mul_f64(1.0 + self.policy.jitter * self.rng.next_f64());
        self.next_attempt = Instant::now() + jittered;
        self.backoff = self
            .backoff
            .mul_f64(self.policy.multiplier.max(1.0))
            .min(self.policy.max_backoff);
    }
}

/// One accepted inbound stream plus its frame-reassembly buffer.
struct Conn {
    id: u64,
    stream: TcpStream,
    buf: Vec<u8>,
}

/// One listening socket: accepts streams and reassembles batch frames.
pub(crate) struct InboundTask {
    listener: TcpListener,
    router: Router,
    conns: Vec<Conn>,
    /// Clones of accepted streams, shared with `TcpInbound` so
    /// `sever_connections` can shut them down from any thread.
    shared: Arc<Mutex<Vec<(u64, TcpStream)>>>,
    stop: Arc<AtomicBool>,
    next_conn: u64,
}

impl InboundTask {
    /// Packages a nonblocking listener for the reactor.
    pub(crate) fn new(
        listener: TcpListener,
        router: Router,
        shared: Arc<Mutex<Vec<(u64, TcpStream)>>>,
        stop: Arc<AtomicBool>,
    ) -> InboundTask {
        InboundTask {
            listener,
            router,
            conns: Vec::new(),
            shared,
            stop,
            next_conn: 0,
        }
    }

    /// One service pass: accept whatever is queued, then read and deliver
    /// complete frames from every connection.
    fn pump(&mut self, scratch: &mut [u8]) -> bool {
        let mut progress = false;
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let id = self.next_conn;
                    self.next_conn += 1;
                    if let Ok(clone) = stream.try_clone() {
                        self.shared.lock().push((id, clone));
                    }
                    self.conns.push(Conn {
                        id,
                        stream,
                        buf: Vec::new(),
                    });
                    progress = true;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
        let router = &self.router;
        let shared = &self.shared;
        self.conns
            .retain_mut(|conn| match conn.pump(router, scratch) {
                Ok(moved) => {
                    progress |= moved;
                    true
                }
                Err(_) => {
                    // Closed or broken: drop our stream and the sever clone.
                    shared.lock().retain(|(id, _)| *id != conn.id);
                    false
                }
            });
        progress
    }
}

impl Conn {
    /// Reads available bytes and delivers every complete frame. `Err`
    /// means the connection is finished (clean EOF included).
    fn pump(&mut self, router: &Router, scratch: &mut [u8]) -> io::Result<bool> {
        let mut progress = false;
        loop {
            match self.stream.read(scratch) {
                Ok(0) => {
                    // Clean EOF: deliver what is already complete, then
                    // report the connection finished.
                    while let Some(batch) = pop_frame(&mut self.buf)? {
                        for (target, env) in batch {
                            router.send(target, env);
                        }
                    }
                    return Err(io::Error::from(io::ErrorKind::UnexpectedEof));
                }
                Ok(n) => {
                    progress = true;
                    self.buf.extend_from_slice(&scratch[..n]);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        while let Some(batch) = pop_frame(&mut self.buf)? {
            progress = true;
            for (target, env) in batch {
                router.send(target, env);
            }
        }
        Ok(progress)
    }
}

/// Consumes one complete `len | crc | body` batch frame from the front of
/// `buf`, or returns `Ok(None)` if the buffer holds only a prefix. The
/// same validation as the blocking `read_batch`: length cap, whole-body
/// CRC, strict body decode.
fn pop_frame(buf: &mut Vec<u8>) -> io::Result<Option<Vec<(EngineId, Envelope)>>> {
    if buf.len() < 8 {
        return Ok(None);
    }
    let len = u32::from_be_bytes(buf[..4].try_into().expect("4 bytes"));
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME}-byte cap"),
        ));
    }
    let total = 8 + len as usize;
    if buf.len() < total {
        return Ok(None);
    }
    let crc = u32::from_be_bytes(buf[4..8].try_into().expect("4 bytes"));
    let body = &buf[8..total];
    if crc32(body) != crc {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame checksum mismatch",
        ));
    }
    let batch = decode_batch_body(body)?;
    buf.drain(..total);
    Ok(Some(batch))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::{remote_engine, TcpInbound};
    use crate::{FaultPlan, Router};
    use tart_model::Value;
    use tart_vtime::{VirtualTime, WireId};

    fn data(n: u64) -> Envelope {
        Envelope::Data {
            wire: WireId::new(0),
            vt: VirtualTime::from_ticks(n),
            prev_vt: VirtualTime::from_ticks(n.saturating_sub(1)),
            payload: Value::I64(n as i64),
        }
    }

    fn frame_bytes(batch: &[(EngineId, Envelope)]) -> Vec<u8> {
        let mut buf = BytesMut::new();
        encode_batch_into(&mut buf, batch);
        buf[..].to_vec()
    }

    #[test]
    fn pop_frame_waits_for_a_complete_frame() {
        let frame = frame_bytes(&[(EngineId::new(1), data(7))]);
        let mut buf = Vec::new();
        // Feed the frame one byte at a time: no prefix may decode early.
        for (i, b) in frame.iter().enumerate() {
            buf.push(*b);
            let out = pop_frame(&mut buf).unwrap();
            if i + 1 < frame.len() {
                assert!(out.is_none(), "no frame before byte {}", frame.len());
            } else {
                assert_eq!(out, Some(vec![(EngineId::new(1), data(7))]));
            }
        }
        assert!(buf.is_empty(), "complete frame fully consumed");
    }

    #[test]
    fn pop_frame_consumes_back_to_back_frames() {
        let mut buf = frame_bytes(&[(EngineId::new(1), data(1))]);
        buf.extend(frame_bytes(&[(EngineId::new(2), data(2))]));
        assert_eq!(
            pop_frame(&mut buf).unwrap(),
            Some(vec![(EngineId::new(1), data(1))])
        );
        assert_eq!(
            pop_frame(&mut buf).unwrap(),
            Some(vec![(EngineId::new(2), data(2))])
        );
        assert_eq!(pop_frame(&mut buf).unwrap(), None);
        assert!(buf.is_empty());
    }

    #[test]
    fn pop_frame_rejects_corrupt_bodies() {
        let mut buf = frame_bytes(&[(EngineId::new(1), data(1))]);
        let last = buf.len() - 1;
        buf[last] ^= 0xff;
        let err = pop_frame(&mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn one_reactor_services_many_links() {
        // Three independent outbound links and one inbound listener, all
        // multiplexed by the single reactor thread — every envelope
        // arrives on the right inbox.
        let router_b = Router::new(FaultPlan::none());
        let inboxes: Vec<_> = (1..=3)
            .map(|e| {
                let (tx, rx) = unbounded();
                router_b.register(EngineId::new(e), tx);
                rx
            })
            .collect();
        let inbound = TcpInbound::listen("127.0.0.1:0", router_b.clone()).unwrap();

        let router_a = Router::new(FaultPlan::none());
        let links: Vec<_> = (1..=3)
            .map(|e| {
                remote_engine(&router_a, EngineId::new(e), ("127.0.0.1", inbound.port())).unwrap()
            })
            .collect();

        for n in 0..50u64 {
            for e in 1..=3u32 {
                router_a.send(EngineId::new(e), data(n * 10 + u64::from(e)));
            }
        }
        for (i, rx) in inboxes.iter().enumerate() {
            let e = i as u64 + 1;
            for n in 0..50u64 {
                let env = rx
                    .recv_timeout(Duration::from_secs(5))
                    .expect("delivery via the shared reactor");
                assert_eq!(env, data(n * 10 + e), "per-link FIFO order holds");
            }
        }
        for link in links {
            assert_eq!(link.snapshot().dropped_frames, 0);
            link.stop();
        }
    }
}
