//! The external-input message log.
//!
//! "When a message arrives at the system from an external source, it is (a)
//! given a timestamp, and then is (b) logged — either to external stable
//! storage, or to the backup machine. … Only external messages are logged"
//! (§II.E). The log is the replay source for external wires after a
//! failover.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{BufReader, Read, Write};
use std::path::Path;

use bytes::BytesMut;
use tart_codec::{crc32, Decode, DecodeError, Encode};
use tart_model::Value;
use tart_vtime::{VirtualTime, WireId};

use crate::wal::{DurabilityPolicy, FsyncPolicy, Wal, WalError, WalRecovery};

/// Errors from the message log.
#[derive(Debug)]
pub enum LogError {
    /// Underlying file I/O failed.
    Io(std::io::Error),
    /// A persisted record failed its CRC or decode check.
    Corrupt(DecodeError),
    /// The segmented-WAL backend failed.
    Storage(WalError),
    /// A record's timestamp was not strictly increasing for its wire.
    NonMonotonic {
        /// The offending wire.
        wire: WireId,
        /// The offending timestamp.
        got: VirtualTime,
    },
}

impl fmt::Display for LogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogError::Io(e) => write!(f, "log i/o failed: {e}"),
            LogError::Corrupt(e) => write!(f, "log record corrupt: {e}"),
            LogError::Storage(e) => write!(f, "log storage failed: {e}"),
            LogError::NonMonotonic { wire, got } => {
                write!(
                    f,
                    "log record for {wire} at {got} is not after its predecessor"
                )
            }
        }
    }
}

impl std::error::Error for LogError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LogError::Io(e) => Some(e),
            LogError::Corrupt(e) => Some(e),
            LogError::Storage(e) => Some(e),
            LogError::NonMonotonic { .. } => None,
        }
    }
}

impl From<std::io::Error> for LogError {
    fn from(e: std::io::Error) -> Self {
        LogError::Io(e)
    }
}

impl From<DecodeError> for LogError {
    fn from(e: DecodeError) -> Self {
        LogError::Corrupt(e)
    }
}

impl From<WalError> for LogError {
    fn from(e: WalError) -> Self {
        LogError::Storage(e)
    }
}

/// One logged external message.
#[derive(Clone, Debug, PartialEq)]
struct LogRecord {
    wire: WireId,
    vt: VirtualTime,
    payload: Value,
}

impl Encode for LogRecord {
    fn encode(&self, buf: &mut BytesMut) {
        self.wire.encode(buf);
        self.vt.encode(buf);
        self.payload.encode(buf);
    }
}

impl Decode for LogRecord {
    fn decode(r: &mut tart_codec::Reader<'_>) -> Result<Self, DecodeError> {
        Ok(LogRecord {
            wire: WireId::decode(r)?,
            vt: VirtualTime::decode(r)?,
            payload: Value::decode(r)?,
        })
    }
}

/// An append-only log of timestamped external messages, indexed by wire,
/// optionally persisted to a CRC-protected file.
///
/// # Example
///
/// ```
/// use tart_engine::MessageLog;
/// use tart_model::Value;
/// use tart_vtime::{VirtualTime, WireId};
///
/// let mut log = MessageLog::in_memory();
/// let w = WireId::new(0);
/// log.append(w, VirtualTime::from_ticks(100), &Value::from("payload"))?;
/// let replayed = log.replay_from(w, VirtualTime::ZERO);
/// assert_eq!(replayed.len(), 1);
/// # Ok::<(), tart_engine::LogError>(())
/// ```
pub struct MessageLog {
    /// wire → (vt → payload); BTreeMap gives range replay directly.
    entries: BTreeMap<WireId, BTreeMap<VirtualTime, Value>>,
    backend: Backend,
    /// Per-wire durability tier overriding the backend-wide policy. Wires
    /// absent from the map use the legacy engine-wide [`FsyncPolicy`] path.
    wire_tiers: BTreeMap<WireId, DurabilityPolicy>,
    /// Buffered-lane appends that may still be inside the open flush
    /// window: `(wal record index, wire)`. Pruned lazily against the WAL's
    /// durable index; consumed by [`MessageLog::crash_discard`] for the
    /// per-wire loss report.
    window: VecDeque<(u64, WireId)>,
    /// Per-wire count of appends routed memory-only ([`DurabilityPolicy::InMemory`]).
    memory_only: BTreeMap<WireId, u64>,
}

/// Per-wire loss accounting from [`MessageLog::crash_discard`]: what a
/// crash at this instant costs each durability tier.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LogCrash {
    /// Buffered-lane records that were still inside the open flush window
    /// (staged in user space, never handed to the kernel), per wire. This
    /// is the *exact* Buffered loss: closed windows already queued for the
    /// flusher drain to the kernel before the report is taken.
    pub lost: BTreeMap<WireId, u64>,
    /// Appends on [`DurabilityPolicy::InMemory`] wires, per wire. Never
    /// persisted by design; recovery must replay them from peers.
    pub memory_only: BTreeMap<WireId, u64>,
}

/// Where appended records are persisted.
enum Backend {
    /// Nowhere: in-memory only (the "backup machine" flavour).
    Memory,
    /// A single flat file, flushed but never fsynced (legacy flavour).
    File(File),
    /// The segmented WAL with fsync policy (the durable flavour).
    Wal(Wal),
}

impl MessageLog {
    /// Creates a purely in-memory log (the "backup machine" flavour).
    pub fn in_memory() -> Self {
        MessageLog {
            entries: BTreeMap::new(),
            backend: Backend::Memory,
            wire_tiers: BTreeMap::new(),
            window: VecDeque::new(),
            memory_only: BTreeMap::new(),
        }
    }

    /// Creates (or truncates) a file-backed log (the "stable storage"
    /// flavour). Each record is length-prefixed and CRC-protected.
    ///
    /// # Errors
    ///
    /// Returns [`LogError::Io`] if the file cannot be created.
    pub fn file_backed(path: impl AsRef<Path>) -> Result<Self, LogError> {
        let file = OpenOptions::new()
            // tart-lint: allow(TAINT-FLOW) -- identifier collision: `OpenOptions::create`, not `Wal::create` (chained receivers are untyped, DESIGN.md §17)
            .create(true)
            .write(true)
            .truncate(true)
            // tart-lint: allow(TAINT-FLOW) -- identifier collision: `OpenOptions::open`, see above
            .open(path)?;
        let mut log = MessageLog::in_memory();
        log.backend = Backend::File(file);
        Ok(log)
    }

    /// Opens (or creates) a log backed by the segmented [`Wal`] in `dir`,
    /// replaying whatever it holds. The returned [`WalRecovery`] reports
    /// the recovered record count and any bytes truncated from a torn tail.
    ///
    /// # Errors
    ///
    /// Returns [`LogError::Storage`] if the WAL cannot be opened (including
    /// sealed-segment corruption) or [`LogError::Corrupt`] if a CRC-valid
    /// record fails to decode.
    pub fn durable(
        dir: impl AsRef<Path>,
        segment_bytes: u64,
        policy: FsyncPolicy,
    ) -> Result<(Self, WalRecovery), LogError> {
        // tart-lint: allow(TAINT-FLOW) -- recovery boundary: Wal::open re-reads the durable log, which is the replay source itself; same bytes, same recovery
        let (wal, recovery) = Wal::open(dir, segment_bytes, policy)?;
        let mut log = MessageLog::in_memory();
        for body in &recovery.records {
            let record = LogRecord::from_bytes(body)?;
            log.insert(record)?;
        }
        log.backend = Backend::Wal(wal);
        Ok((log, recovery))
    }

    /// Attaches the observability hub to the WAL backend (no-op for the
    /// in-memory and flat-file flavours): group-commit window occupancy and
    /// per-tier fsync latency are recorded at every sync.
    pub fn set_obs(&mut self, hub: std::sync::Arc<tart_obs::ObsHub>) {
        if let Backend::Wal(wal) = &mut self.backend {
            wal.set_obs(hub);
        }
    }

    /// Pins `wire` to a durability tier. Appends on pinned wires bypass the
    /// engine-wide [`FsyncPolicy`]: [`DurabilityPolicy::Strict`] blocks
    /// until the record is fsynced, [`DurabilityPolicy::Buffered`] rides
    /// the group-commit window, and [`DurabilityPolicy::InMemory`] skips
    /// persistence entirely (recovery replays those wires from peers).
    /// Unpinned wires keep the legacy policy-driven path.
    pub fn set_wire_tier(&mut self, wire: WireId, tier: DurabilityPolicy) {
        self.wire_tiers.insert(wire, tier);
    }

    /// Recovers a log from a previously written flat file, verifying every
    /// record's CRC. A torn **or corrupt** final record (partial write or
    /// bit-rot at the moment of the crash) is physically truncated away so
    /// later appends land cleanly; corruption before the final record is an
    /// error — that is stable storage decaying, not a crash artifact.
    ///
    /// # Errors
    ///
    /// Returns [`LogError::Io`] on read failure or [`LogError::Corrupt`] on
    /// mid-file CRC/decode mismatch.
    pub fn recover(path: impl AsRef<Path>) -> Result<Self, LogError> {
        let path = path.as_ref();
        let mut reader = BufReader::new(File::open(path)?); // tart-lint: allow(AMBIENT-ENV) -- recovery reads the message log itself: the log IS the logged input channel
        let mut bytes = Vec::new();
        reader.read_to_end(&mut bytes)?;
        let mut log = MessageLog::in_memory();
        let mut pos = 0;
        while pos < bytes.len() {
            // Frame: u32 length (BE) | u32 crc (BE) | record bytes.
            if pos + 8 > bytes.len() {
                break; // torn header
            }
            let len = u32::from_be_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
            let crc = u32::from_be_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes"));
            if pos + 8 + len > bytes.len() {
                break; // torn body
            }
            let body = &bytes[pos + 8..pos + 8 + len];
            if crc32(body) != crc {
                if pos + 8 + len == bytes.len() {
                    break; // corrupt *final* record: a crash artifact
                }
                return Err(LogError::Corrupt(DecodeError::ChecksumMismatch));
            }
            let record = LogRecord::from_bytes(body)?;
            log.insert(record)?;
            pos += 8 + len;
        }
        if (pos as u64) < bytes.len() as u64 {
            // Truncate the torn tail in place so the append cursor starts
            // at the last valid record, not after garbage.
            // tart-lint: allow(TAINT-FLOW) -- identifier collision: `OpenOptions::open`, not `CheckpointStore::open` (chained receiver, DESIGN.md §17)
            let f = OpenOptions::new().write(true).open(path)?;
            f.set_len(pos as u64)?;
            f.sync_all()?;
        }
        // Re-open for appending.
        // tart-lint: allow(TAINT-FLOW) -- identifier collision: `OpenOptions::append`/`open` builder methods, not the WAL's (chained receiver, DESIGN.md §17)
        log.backend = Backend::File(OpenOptions::new().append(true).open(path)?);
        Ok(log)
    }

    fn insert(&mut self, record: LogRecord) -> Result<(), LogError> {
        let per_wire = self.entries.entry(record.wire).or_default();
        if let Some((&last, _)) = per_wire.iter().next_back() {
            if record.vt <= last {
                return Err(LogError::NonMonotonic {
                    wire: record.wire,
                    got: record.vt,
                });
            }
        }
        per_wire.insert(record.vt, record.payload);
        Ok(())
    }

    /// Appends one external message.
    ///
    /// # Errors
    ///
    /// Returns [`LogError::NonMonotonic`] if `vt` does not exceed the wire's
    /// last logged timestamp, or [`LogError::Io`] if persistence fails.
    pub fn append(
        &mut self,
        wire: WireId,
        vt: VirtualTime,
        payload: &Value,
    ) -> Result<(), LogError> {
        let record = LogRecord {
            wire,
            vt,
            payload: payload.clone(),
        };
        let body = record.to_bytes();
        self.insert(record)?;
        let tier = self.wire_tiers.get(&wire).copied();
        if tier == Some(DurabilityPolicy::InMemory) {
            // Memory-only tier: never persisted, whatever the backend.
            *self.memory_only.entry(wire).or_insert(0) += 1;
            return Ok(());
        }
        match &mut self.backend {
            Backend::Memory => {}
            Backend::File(file) => {
                let mut frame = Vec::with_capacity(body.len() + 8);
                frame.extend_from_slice(&(body.len() as u32).to_be_bytes());
                frame.extend_from_slice(&crc32(&body).to_be_bytes());
                frame.extend_from_slice(&body);
                file.write_all(&frame)?;
                file.flush()?;
            }
            Backend::Wal(wal) => match tier {
                // tart-lint: allow(TAINT-FLOW) -- durable append: the WAL ack carries no clock reading; record bytes, not group-commit times, enter the log
                None => wal.append(&body)?,
                Some(t) => {
                    // tart-lint: allow(TAINT-FLOW) -- durable append (tiered lane): same boundary as above; only record bytes flow back
                    let idx = wal.append_lane(&body, t)?;
                    if matches!(t, DurabilityPolicy::Buffered { .. }) {
                        // Prune entries the flusher has already made
                        // durable, then track this one until it is.
                        let durable = wal.durable_index();
                        while self.window.front().is_some_and(|(i, _)| *i <= durable) {
                            self.window.pop_front();
                        }
                        self.window.push_back((idx, wire));
                    }
                }
            },
        }
        Ok(())
    }

    /// Simulates a hard crash of the logging process: the WAL's open flush
    /// window is dropped on the floor (closed windows already queued for
    /// the flusher still drain to the kernel) and the per-wire cost is
    /// reported. In-memory and flat-file backends lose nothing extra — the
    /// flat file is flushed on every append — but memory-only wires are
    /// still reported.
    ///
    /// After this call the log refuses further appends on the WAL backend;
    /// it exists for crash drills, not production shutdown.
    pub fn crash_discard(&mut self) -> LogCrash {
        let mut crash = LogCrash {
            lost: BTreeMap::new(),
            memory_only: std::mem::take(&mut self.memory_only),
        };
        if let Backend::Wal(wal) = &mut self.backend {
            let written = wal.crash_discard();
            for (idx, wire) in self.window.drain(..) {
                if idx > written {
                    *crash.lost.entry(wire).or_insert(0) += 1;
                }
            }
        }
        crash
    }

    /// Forces any buffered appends to stable storage regardless of the
    /// fsync policy (no-op for the in-memory flavour).
    ///
    /// # Errors
    ///
    /// Returns [`LogError::Io`]/[`LogError::Storage`] if the fsync fails.
    pub fn sync(&mut self) -> Result<(), LogError> {
        match &mut self.backend {
            Backend::Memory => Ok(()),
            Backend::File(file) => {
                file.flush()?;
                file.sync_all().map_err(LogError::from)
            }
            Backend::Wal(wal) => wal.sync().map_err(LogError::from),
        }
    }

    /// All logged messages on `wire` with `vt >= from`, in order.
    pub fn replay_from(&self, wire: WireId, from: VirtualTime) -> Vec<(VirtualTime, Value)> {
        self.entries
            .get(&wire)
            .map(|m| m.range(from..).map(|(vt, v)| (*vt, v.clone())).collect())
            .unwrap_or_default()
    }

    /// The last logged timestamp on `wire`.
    pub fn last_vt(&self, wire: WireId) -> Option<VirtualTime> {
        self.entries
            .get(&wire)
            .and_then(|m| m.keys().next_back().copied())
    }

    /// Number of logged records on `wire`.
    pub fn wire_len(&self, wire: WireId) -> usize {
        self.entries.get(&wire).map_or(0, BTreeMap::len)
    }

    /// Total records across all wires.
    pub fn len(&self) -> usize {
        self.entries.values().map(BTreeMap::len).sum()
    }

    /// Returns `true` if nothing has been logged.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl fmt::Debug for MessageLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let backend = match &self.backend {
            Backend::Memory => "memory",
            Backend::File(_) => "file",
            Backend::Wal(_) => "wal",
        };
        f.debug_struct("MessageLog")
            .field("records", &self.len())
            .field("backend", &backend)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vt(t: u64) -> VirtualTime {
        VirtualTime::from_ticks(t)
    }

    fn w(n: u32) -> WireId {
        WireId::new(n)
    }

    #[test]
    fn in_memory_append_and_replay() {
        let mut log = MessageLog::in_memory();
        assert!(log.is_empty());
        log.append(w(0), vt(10), &Value::I64(1)).unwrap();
        log.append(w(0), vt(20), &Value::I64(2)).unwrap();
        log.append(w(1), vt(15), &Value::I64(3)).unwrap();
        assert_eq!(log.len(), 3);
        assert_eq!(log.last_vt(w(0)), Some(vt(20)));
        assert_eq!(log.last_vt(w(9)), None);

        let all = log.replay_from(w(0), VirtualTime::ZERO);
        assert_eq!(all, vec![(vt(10), Value::I64(1)), (vt(20), Value::I64(2))]);
        let tail = log.replay_from(w(0), vt(11));
        assert_eq!(tail, vec![(vt(20), Value::I64(2))]);
        let exact = log.replay_from(w(0), vt(20));
        assert_eq!(exact.len(), 1);
        assert!(log.replay_from(w(0), vt(21)).is_empty());
        assert!(log.replay_from(w(7), VirtualTime::ZERO).is_empty());
    }

    #[test]
    fn rejects_non_monotonic_timestamps_per_wire() {
        let mut log = MessageLog::in_memory();
        log.append(w(0), vt(10), &Value::Unit).unwrap();
        assert!(matches!(
            log.append(w(0), vt(10), &Value::Unit),
            Err(LogError::NonMonotonic { .. })
        ));
        assert!(log.append(w(0), vt(5), &Value::Unit).is_err());
        // Other wires are independent timelines.
        log.append(w(1), vt(5), &Value::Unit).unwrap();
    }

    #[test]
    fn file_round_trip_with_crc() {
        let dir = std::env::temp_dir().join(format!("tart-log-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("round_trip.log");
        {
            let mut log = MessageLog::file_backed(&path).unwrap();
            log.append(w(0), vt(100), &Value::from("first")).unwrap();
            log.append(w(0), vt(200), &Value::from("second")).unwrap();
            log.append(w(2), vt(150), &Value::I64(-5)).unwrap();
        }
        let recovered = MessageLog::recover(&path).unwrap();
        assert_eq!(recovered.len(), 3);
        assert_eq!(
            recovered.replay_from(w(0), VirtualTime::ZERO),
            vec![
                (vt(100), Value::from("first")),
                (vt(200), Value::from("second"))
            ]
        );
        assert_eq!(recovered.replay_from(w(2), vt(150)).len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recovered_log_accepts_further_appends() {
        let dir = std::env::temp_dir().join(format!("tart-log-test2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("append.log");
        {
            let mut log = MessageLog::file_backed(&path).unwrap();
            log.append(w(0), vt(1), &Value::I64(1)).unwrap();
        }
        {
            let mut log = MessageLog::recover(&path).unwrap();
            log.append(w(0), vt(2), &Value::I64(2)).unwrap();
        }
        let log = MessageLog::recover(&path).unwrap();
        assert_eq!(log.len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_discarded_corrupt_middle_is_error() {
        let dir = std::env::temp_dir().join(format!("tart-log-test3-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();

        // Torn tail: truncate the file mid-record.
        let path = dir.join("torn.log");
        {
            let mut log = MessageLog::file_backed(&path).unwrap();
            log.append(w(0), vt(1), &Value::from("keep")).unwrap();
            log.append(w(0), vt(2), &Value::from("torn")).unwrap();
        }
        let full_len = std::fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(full_len - 3).unwrap();
        drop(f);
        {
            let mut log = MessageLog::recover(&path).unwrap();
            assert_eq!(log.len(), 1, "torn final record discarded");
            // The file was physically truncated: appending after recovery
            // produces a clean log, not garbage mid-file.
            log.append(w(0), vt(3), &Value::from("after")).unwrap();
        }
        let log = MessageLog::recover(&path).unwrap();
        assert_eq!(
            log.replay_from(w(0), VirtualTime::ZERO),
            vec![(vt(1), Value::from("keep")), (vt(3), Value::from("after"))]
        );

        // Bit flip in the *final* record: a crash artifact — truncated, not
        // fatal (regression for the whole-log Corrupt bug).
        let path2 = dir.join("flip-tail.log");
        {
            let mut log = MessageLog::file_backed(&path2).unwrap();
            log.append(w(0), vt(1), &Value::from("solid")).unwrap();
            log.append(w(0), vt(2), &Value::from("rotten")).unwrap();
        }
        let mut bytes = std::fs::read(&path2).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&path2, &bytes).unwrap();
        let log = MessageLog::recover(&path2).unwrap();
        assert_eq!(log.len(), 1, "corrupt final record truncated");
        assert_eq!(log.last_vt(w(0)), Some(vt(1)));

        // Bit flip in a *mid-file* record: stable storage decay — an error.
        let path3 = dir.join("flip-mid.log");
        let first_len;
        {
            let mut log = MessageLog::file_backed(&path3).unwrap();
            log.append(w(0), vt(1), &Value::from("early")).unwrap();
            first_len = std::fs::metadata(&path3).unwrap().len() as usize;
            log.append(w(0), vt(2), &Value::from("later")).unwrap();
        }
        let mut bytes = std::fs::read(&path3).unwrap();
        bytes[first_len - 1] ^= 0xff; // last byte of the FIRST record
        std::fs::write(&path3, &bytes).unwrap();
        assert!(matches!(
            MessageLog::recover(&path3),
            Err(LogError::Corrupt(DecodeError::ChecksumMismatch))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn durable_backend_round_trips_through_the_wal() {
        let dir = std::env::temp_dir().join(format!("tart-log-wal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let (mut log, rec) = MessageLog::durable(&dir, 64, FsyncPolicy::Always).unwrap();
            assert_eq!(rec.records.len(), 0);
            for t in 1..=8 {
                log.append(w(0), vt(t), &Value::from(format!("m{t}")))
                    .unwrap();
            }
            log.sync().unwrap();
        }
        let (log, rec) = MessageLog::durable(&dir, 64, FsyncPolicy::Always).unwrap();
        assert_eq!(rec.records.len(), 8);
        assert_eq!(rec.truncated_bytes, 0);
        assert!(rec.segments > 1, "tiny threshold forces rotation");
        assert_eq!(log.len(), 8);
        assert_eq!(log.last_vt(w(0)), Some(vt(8)));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tiered_wires_route_to_their_lanes() {
        use std::time::Duration;
        let dir = std::env::temp_dir().join(format!("tart-log-tiers-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let lost_on_w1;
        {
            let (mut log, rec) = MessageLog::durable(&dir, u64::MAX, FsyncPolicy::Never).unwrap();
            assert!(rec.records.is_empty());
            log.set_wire_tier(w(0), DurabilityPolicy::Strict);
            log.set_wire_tier(
                w(1),
                DurabilityPolicy::Buffered {
                    flush_window: Duration::from_secs(3600),
                },
            );
            log.set_wire_tier(w(2), DurabilityPolicy::InMemory);
            for t in 1..=4 {
                log.append(w(0), vt(t), &Value::from(format!("strict-{t}")))
                    .unwrap();
                log.append(w(1), vt(t), &Value::from(format!("buffered-{t}")))
                    .unwrap();
                log.append(w(2), vt(t), &Value::from(format!("memory-{t}")))
                    .unwrap();
            }
            // All three tiers replay locally before the crash.
            assert_eq!(log.len(), 12);
            let crash = log.crash_discard();
            assert_eq!(crash.memory_only.get(&w(2)), Some(&4));
            assert!(
                crash.lost.keys().all(|wire| *wire == w(1)),
                "only the buffered wire can lose inside the open window: {crash:?}"
            );
            lost_on_w1 = crash.lost.get(&w(1)).copied().unwrap_or(0);
            assert!(lost_on_w1 <= 4);
        }
        let (log, rec) = MessageLog::durable(&dir, u64::MAX, FsyncPolicy::Never).unwrap();
        // Strict records all survive; InMemory never touched the WAL.
        assert_eq!(log.replay_from(w(0), VirtualTime::ZERO).len(), 4);
        assert!(log.replay_from(w(2), VirtualTime::ZERO).is_empty());
        // Buffered loses exactly what the crash report claimed.
        assert_eq!(
            log.replay_from(w(1), VirtualTime::ZERO).len() as u64 + lost_on_w1,
            4
        );
        assert_eq!(rec.records.len(), log.len());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn strict_append_pins_interleaved_buffered_records() {
        use std::time::Duration;
        let dir = std::env::temp_dir().join(format!("tart-log-pin-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let (mut log, _) = MessageLog::durable(&dir, u64::MAX, FsyncPolicy::Never).unwrap();
            log.set_wire_tier(w(0), DurabilityPolicy::Strict);
            log.set_wire_tier(
                w(1),
                DurabilityPolicy::Buffered {
                    flush_window: Duration::from_secs(3600),
                },
            );
            // Buffered first, then a strict append: the strict barrier
            // forces the open window closed, so the buffered record is
            // durable too and the crash report shows zero loss.
            log.append(w(1), vt(1), &Value::from("riding")).unwrap();
            log.append(w(0), vt(1), &Value::from("barrier")).unwrap();
            let crash = log.crash_discard();
            assert!(
                crash.lost.is_empty(),
                "strict barrier pinned the window: {crash:?}"
            );
        }
        let (log, _) = MessageLog::durable(&dir, u64::MAX, FsyncPolicy::Never).unwrap();
        assert_eq!(log.len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn error_display() {
        let e = LogError::NonMonotonic {
            wire: w(1),
            got: vt(9),
        };
        assert!(e.to_string().contains("w1"));
        let e = LogError::Corrupt(DecodeError::ChecksumMismatch);
        assert!(e.to_string().contains("corrupt"));
        use std::error::Error;
        assert!(e.source().is_some());
    }
}
