//! The TART runtime: execution engines, transport, logging, checkpointing,
//! failover and replay.
//!
//! This crate is the "real system" counterpart of the simulator: it actually
//! executes [`tart_model::Component`]s, spread across *execution engines*
//! (§II.C) — each engine a thread hosting a set of components with one
//! deterministic scheduler. It implements the full recovery design of §II.F:
//!
//! * **Tick tracking** — every tick on every wire is accounted as data or
//!   silence; data envelopes chain their predecessor's virtual time so a
//!   receiver can detect losses.
//! * **Logging** — only messages from *external producers* are logged
//!   ([`MessageLog`], in memory or in a CRC-protected append-only file);
//!   inter-component traffic is never logged.
//! * **Soft checkpointing** — engines periodically capture incremental
//!   [`EngineCheckpoint`]s and ship them asynchronously to a passive
//!   [`ReplicaStore`].
//! * **Failover** — [`Cluster::kill`] fail-stops an engine (state and
//!   in-flight messages lost); [`Cluster::promote`] restores its replica
//!   from the checkpoint chain.
//! * **Supervision** — with [`ClusterConfig::with_supervision`], engines
//!   heartbeat a supervisor thread whose phi-accrual failure detector runs
//!   the same kill → promote → replay drill automatically; the seeded
//!   chaos harness ([`ChaosPlan`]) soak-tests that path with unannounced
//!   crashes, link partitions and latency spikes.
//! * **Replay** — the restored engine asks each upstream for the tick
//!   ranges it is missing; senders resend from in-memory retention buffers
//!   (or the log, for external wires), and duplicates are discarded by
//!   timestamp (§II.F.4). Downstream engines see *output stutter*, which
//!   consumers compensate for by sequence number (§II.A).
//!
//! Determinism makes all of this work: because components are scheduled in
//! virtual-time order, re-execution from a checkpoint reproduces byte-
//! identical state and messages.
//!
//! # Example
//!
//! ```
//! use tart_engine::{Cluster, ClusterConfig, Placement};
//! use tart_model::reference::fan_in_app;
//!
//! let spec = fan_in_app(2)?;
//! // All components on one engine, logical (test) time.
//! let placement = Placement::single_engine(&spec);
//! let mut cluster = Cluster::deploy(spec, placement, ClusterConfig::logical_time())?;
//! cluster.injector("client1").expect("client1 exists").send("the cat".into());
//! cluster.finish_inputs();
//! let outputs = cluster.shutdown();
//! assert_eq!(outputs.len(), 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chaos;
mod checkpoint;
mod clock;
mod cluster;
mod config;
mod core;
mod ctx;
mod envelope;
mod log;
pub mod net;
mod reactor;
mod retention;
mod router;
mod standby;
mod store;
mod supervise;
mod verify;
mod wal;

pub use chaos::{ChaosEvent, ChaosHandle, ChaosOptions, ChaosPlan, ChaosReport, DiskFault};
pub use checkpoint::{
    combined_state_hash, verify_chain, ChainDefect, DivergenceFault, EngineCheckpoint, ReplicaStore,
};
pub use clock::{LogicalClock, RealClock, TimeSource};
pub use cluster::{
    Cluster, ComponentRecovery, CrashReport, DeployError, EngineRecovery, Injector, PromoteError,
    RecoveryReport,
};
pub use config::{ClusterConfig, DurabilityConfig, Placement, StandbyConfig, SupervisionConfig};
pub use core::{EngineCore, EngineMetrics, Flow, OutputRecord, SharedEngineMetrics};
pub use envelope::Envelope;
pub use log::{LogCrash, LogError, MessageLog};
pub use retention::RetentionBuffer;
pub use router::{FaultPlan, Router};
pub use standby::StandbyStatus;
pub use store::{CheckpointStore, LoadedChain, LoadedCheckpoint, StoreError};
pub use supervise::{FailureDetector, SupervisionMetrics};
pub use tart_obs::{
    check_report, write_report, EngineObs, Histogram, ObsEvent, ObsEventKind, ObsHub, ObsSnapshot,
    ReportRequirements,
};
pub use verify::{verify_replay, ReplayVerdict};
pub use wal::{DurabilityPolicy, FsyncPolicy, Wal, WalError, WalRecovery, BUFFERED_MAX_RECORDS};
