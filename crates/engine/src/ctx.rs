//! The handler context the engine passes to components.

use tart_model::{BlockId, Ctx, Features, Value};
use tart_vtime::{ComponentId, PortId, VirtualTime};

use crate::core::EngineCore;

/// The live [`Ctx`] implementation: collects sends and features, answers
/// `now()` with the deterministic dequeue time, and executes same-engine
/// two-way calls inline.
///
/// Cross-engine calls are not supported in this implementation: the paper's
/// model allows them (a component "blocks … waiting for a return from a
/// service call", §II.B), but the measured configurations use one-way sends
/// only; see DESIGN.md.
pub(crate) struct EngineCtx<'a> {
    pub(crate) core: &'a mut EngineCore,
    pub(crate) component: ComponentId,
    pub(crate) now: VirtualTime,
    pub(crate) sends: Vec<(PortId, Value)>,
    pub(crate) features: Features,
}

impl<'a> EngineCtx<'a> {
    pub(crate) fn new(core: &'a mut EngineCore, component: ComponentId, now: VirtualTime) -> Self {
        EngineCtx {
            core,
            component,
            now,
            sends: Vec::new(),
            features: Features::new(),
        }
    }
}

impl Ctx for EngineCtx<'_> {
    fn now(&self) -> VirtualTime {
        self.now
    }

    fn send(&mut self, port: PortId, msg: Value) {
        self.sends.push((port, msg));
    }

    fn call(&mut self, port: PortId, req: Value) -> Value {
        self.core.execute_call(self.component, port, req, self.now)
    }

    fn tick_block(&mut self, block: BlockId, count: u64) {
        self.features.add(block, count);
    }
}
