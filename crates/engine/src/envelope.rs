//! Inter-engine wire protocol.

use bytes::{BufMut, BytesMut};
use tart_codec::{Decode, DecodeError, Encode, Reader};
use tart_estimator::EstimatorSpec;
use tart_model::Value;
use tart_silence::SilencePolicy;
use tart_vtime::ComponentId;
use tart_vtime::{EngineId, VirtualTime, WireId};

use crate::checkpoint::EngineCheckpoint;

/// Everything that travels between engines (and from injectors into
/// engines).
///
/// All communication is reliable and FIFO per link (§II.A); fault injection
/// in the transport deliberately violates this for Data and Silence
/// envelopes to exercise the gap-detection and replay paths.
#[derive(Clone, Debug, PartialEq)]
pub enum Envelope {
    /// A data tick on a wire.
    Data {
        /// The wire.
        wire: WireId,
        /// This message's virtual time.
        vt: VirtualTime,
        /// The virtual time of the previous data tick on this wire
        /// ([`VirtualTime::ZERO`] for the first). A receiver that never saw
        /// `prev_vt` knows a message was lost and requests replay.
        prev_vt: VirtualTime,
        /// The payload.
        payload: Value,
    },
    /// An explicit promise that `wire` is silent through `through`.
    Silence {
        /// The wire.
        wire: WireId,
        /// All ticks `<= through` are accounted.
        through: VirtualTime,
        /// The last data tick the sender has transmitted
        /// ([`VirtualTime::ZERO`] if none). A receiver whose account does
        /// not include `last_data` knows a message was lost even when no
        /// successor data ever arrives.
        last_data: VirtualTime,
    },
    /// A curiosity probe: the receiver of `wire` needs its ticks accounted
    /// through `needed_through` (§II.H).
    Probe {
        /// The probed wire.
        wire: WireId,
        /// Silence needed through this time.
        needed_through: VirtualTime,
    },
    /// Request to resend all retained data ticks on `wire` with
    /// `vt >= from`, followed by a [`Envelope::ReplayDone`] marker.
    ReplayRequest {
        /// The wire to replay.
        wire: WireId,
        /// Resend everything from this virtual time on.
        from: VirtualTime,
    },
    /// Marks the end of a replay burst: the wire is accounted through
    /// `through`; the receiver may flush its recovery stash.
    ReplayDone {
        /// The replayed wire.
        wire: WireId,
        /// Accounted watermark after replay.
        through: VirtualTime,
        /// Number of data frames the burst contained. A receiver that
        /// collected fewer (replay frames can be lost too) re-requests
        /// instead of flushing.
        frames: u64,
    },
    /// Downstream acknowledgement that all ticks on `wire` through
    /// `through` are covered by a checkpoint; the sender may trim its
    /// retention buffer.
    TrimAck {
        /// The wire.
        wire: WireId,
        /// Retention at or below this time may be discarded.
        through: VirtualTime,
    },
    /// Trigger an immediate soft checkpoint.
    Checkpoint,
    /// Fail-stop: the engine dies instantly, losing all state and any
    /// unprocessed envelopes (the failure model of §II.A).
    Die,
    /// Graceful shutdown after draining all pending deliverable work.
    Drain,
    /// Switch the engine's silence propagation strategy at runtime. Lazy,
    /// curiosity and aggressive propagation "can be arbitrarily mixed
    /// and/or dynamically changed without requiring a determinism fault"
    /// (§II.G.4) — only how silence is *communicated* changes, never which
    /// ticks are silent.
    SetSilencePolicy {
        /// The new policy.
        policy: SilencePolicy,
    },
    /// End-of-stream on a wire: the sender will never transmit again, so
    /// the wire is silent forever past `last_data`. Travels the reliable
    /// control plane (unlike [`Envelope::Silence`]) because a lost final
    /// silence would wedge a draining receiver.
    Eos {
        /// The wire.
        wire: WireId,
        /// The last data tick ever transmitted (tail-loss detection).
        last_data: VirtualTime,
    },
    /// Install a re-calibrated estimator for a hosted component. The engine
    /// logs the resulting determinism fault synchronously before using the
    /// new estimator (§II.G.4).
    Recalibrate {
        /// The component whose estimator changes.
        component: ComponentId,
        /// The replacement estimator.
        spec: EstimatorSpec,
    },
    /// Periodic liveness beacon from an engine to the cluster supervisor.
    /// Travels the reliable control plane (never fault-injected): the
    /// failure detector must only suspect engines that actually stopped,
    /// not engines behind a lossy payload link.
    Heartbeat {
        /// The engine reporting in.
        engine: EngineId,
        /// Monotone per-incarnation sequence number (restarts from zero
        /// after failover, letting the supervisor spot the new incarnation).
        seq: u64,
    },
    /// A soft checkpoint streamed from a primary engine to its warm
    /// standby (LLFT-style leader-follower replication). Travels the
    /// reliable control plane; the standby pre-applies it in the background
    /// once it trails the primary's virtual-time head by the configured
    /// horizon, verifying its recorded `state_hash` as it goes.
    StandbyCheckpoint {
        /// The streamed checkpoint (boxed: checkpoints are large relative
        /// to every other envelope kind).
        ckpt: Box<EngineCheckpoint>,
    },
    /// The primary's virtual-time head advancing: one logged external
    /// input was delivered at `vt` on `wire`. The standby uses the head to
    /// compute its trailing horizon and its replication lag; the payload
    /// itself still replays from retention/log on promotion.
    StandbyInput {
        /// The primary engine whose head advanced.
        engine: EngineId,
        /// The external wire the input arrived on.
        wire: WireId,
        /// The input's virtual time (the new head).
        vt: VirtualTime,
    },
}

impl Envelope {
    /// The wire this envelope concerns, if any.
    pub fn wire(&self) -> Option<WireId> {
        match self {
            Envelope::Data { wire, .. }
            | Envelope::Silence { wire, .. }
            | Envelope::Probe { wire, .. }
            | Envelope::ReplayRequest { wire, .. }
            | Envelope::ReplayDone { wire, .. }
            | Envelope::TrimAck { wire, .. }
            | Envelope::Eos { wire, .. }
            | Envelope::StandbyInput { wire, .. } => Some(*wire),
            _ => None,
        }
    }

    /// Returns `true` for the envelope kinds the fault injector may
    /// disturb (payload traffic; the control plane stays reliable).
    pub fn faultable(&self) -> bool {
        matches!(self, Envelope::Data { .. } | Envelope::Silence { .. })
    }
}

const TAG_DATA: u8 = 0;
const TAG_SILENCE: u8 = 1;
const TAG_PROBE: u8 = 2;
const TAG_REPLAY_REQUEST: u8 = 3;
const TAG_REPLAY_DONE: u8 = 4;
const TAG_TRIM_ACK: u8 = 5;
const TAG_CHECKPOINT: u8 = 6;
const TAG_DIE: u8 = 7;
const TAG_DRAIN: u8 = 8;
const TAG_RECALIBRATE: u8 = 9;
const TAG_EOS: u8 = 10;
const TAG_SET_SILENCE: u8 = 11;
const TAG_HEARTBEAT: u8 = 12;
const TAG_STANDBY_CHECKPOINT: u8 = 13;
const TAG_STANDBY_INPUT: u8 = 14;

impl Encode for Envelope {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            Envelope::Data {
                wire,
                vt,
                prev_vt,
                payload,
            } => {
                buf.put_u8(TAG_DATA);
                wire.encode(buf);
                vt.encode(buf);
                prev_vt.encode(buf);
                payload.encode(buf);
            }
            Envelope::Silence {
                wire,
                through,
                last_data,
            } => {
                buf.put_u8(TAG_SILENCE);
                wire.encode(buf);
                through.encode(buf);
                last_data.encode(buf);
            }
            Envelope::Probe {
                wire,
                needed_through,
            } => {
                buf.put_u8(TAG_PROBE);
                wire.encode(buf);
                needed_through.encode(buf);
            }
            Envelope::ReplayRequest { wire, from } => {
                buf.put_u8(TAG_REPLAY_REQUEST);
                wire.encode(buf);
                from.encode(buf);
            }
            Envelope::ReplayDone {
                wire,
                through,
                frames,
            } => {
                buf.put_u8(TAG_REPLAY_DONE);
                wire.encode(buf);
                through.encode(buf);
                frames.encode(buf);
            }
            Envelope::TrimAck { wire, through } => {
                buf.put_u8(TAG_TRIM_ACK);
                wire.encode(buf);
                through.encode(buf);
            }
            Envelope::Checkpoint => buf.put_u8(TAG_CHECKPOINT),
            Envelope::Die => buf.put_u8(TAG_DIE),
            Envelope::Drain => buf.put_u8(TAG_DRAIN),
            Envelope::Recalibrate { component, spec } => {
                buf.put_u8(TAG_RECALIBRATE);
                component.encode(buf);
                spec.encode(buf);
            }
            Envelope::Eos { wire, last_data } => {
                buf.put_u8(TAG_EOS);
                wire.encode(buf);
                last_data.encode(buf);
            }
            Envelope::SetSilencePolicy { policy } => {
                buf.put_u8(TAG_SET_SILENCE);
                policy.encode(buf);
            }
            Envelope::Heartbeat { engine, seq } => {
                buf.put_u8(TAG_HEARTBEAT);
                engine.encode(buf);
                seq.encode(buf);
            }
            Envelope::StandbyCheckpoint { ckpt } => {
                buf.put_u8(TAG_STANDBY_CHECKPOINT);
                ckpt.encode(buf);
            }
            Envelope::StandbyInput { engine, wire, vt } => {
                buf.put_u8(TAG_STANDBY_INPUT);
                engine.encode(buf);
                wire.encode(buf);
                vt.encode(buf);
            }
        }
    }
}

impl Decode for Envelope {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.read_u8()? {
            TAG_DATA => Ok(Envelope::Data {
                wire: WireId::decode(r)?,
                vt: VirtualTime::decode(r)?,
                prev_vt: VirtualTime::decode(r)?,
                payload: Value::decode(r)?,
            }),
            TAG_SILENCE => Ok(Envelope::Silence {
                wire: WireId::decode(r)?,
                through: VirtualTime::decode(r)?,
                last_data: VirtualTime::decode(r)?,
            }),
            TAG_PROBE => Ok(Envelope::Probe {
                wire: WireId::decode(r)?,
                needed_through: VirtualTime::decode(r)?,
            }),
            TAG_REPLAY_REQUEST => Ok(Envelope::ReplayRequest {
                wire: WireId::decode(r)?,
                from: VirtualTime::decode(r)?,
            }),
            TAG_REPLAY_DONE => Ok(Envelope::ReplayDone {
                wire: WireId::decode(r)?,
                through: VirtualTime::decode(r)?,
                frames: u64::decode(r)?,
            }),
            TAG_TRIM_ACK => Ok(Envelope::TrimAck {
                wire: WireId::decode(r)?,
                through: VirtualTime::decode(r)?,
            }),
            TAG_CHECKPOINT => Ok(Envelope::Checkpoint),
            TAG_DIE => Ok(Envelope::Die),
            TAG_DRAIN => Ok(Envelope::Drain),
            TAG_RECALIBRATE => Ok(Envelope::Recalibrate {
                component: ComponentId::decode(r)?,
                spec: EstimatorSpec::decode(r)?,
            }),
            TAG_EOS => Ok(Envelope::Eos {
                wire: WireId::decode(r)?,
                last_data: VirtualTime::decode(r)?,
            }),
            TAG_SET_SILENCE => Ok(Envelope::SetSilencePolicy {
                policy: SilencePolicy::decode(r)?,
            }),
            TAG_HEARTBEAT => Ok(Envelope::Heartbeat {
                engine: EngineId::decode(r)?,
                seq: u64::decode(r)?,
            }),
            TAG_STANDBY_CHECKPOINT => Ok(Envelope::StandbyCheckpoint {
                ckpt: Box::new(EngineCheckpoint::decode(r)?),
            }),
            TAG_STANDBY_INPUT => Ok(Envelope::StandbyInput {
                engine: EngineId::decode(r)?,
                wire: WireId::decode(r)?,
                vt: VirtualTime::decode(r)?,
            }),
            tag => Err(DecodeError::InvalidTag {
                tag,
                type_name: "Envelope",
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vt(t: u64) -> VirtualTime {
        VirtualTime::from_ticks(t)
    }

    #[test]
    fn all_variants_round_trip() {
        let w = WireId::new(3);
        let variants = vec![
            Envelope::Data {
                wire: w,
                vt: vt(100),
                prev_vt: vt(50),
                payload: Value::from("hello"),
            },
            Envelope::Silence {
                wire: w,
                through: vt(99),
                last_data: vt(40),
            },
            Envelope::Probe {
                wire: w,
                needed_through: vt(200),
            },
            Envelope::ReplayRequest {
                wire: w,
                from: vt(10),
            },
            Envelope::ReplayDone {
                wire: w,
                through: vt(500),
                frames: 3,
            },
            Envelope::TrimAck {
                wire: w,
                through: vt(20),
            },
            Envelope::Checkpoint,
            Envelope::Die,
            Envelope::Drain,
            Envelope::Recalibrate {
                component: ComponentId::new(2),
                spec: tart_estimator::EstimatorSpec::per_iteration(tart_model::BlockId(0), 61_000),
            },
            Envelope::Eos {
                wire: w,
                last_data: vt(77),
            },
            Envelope::SetSilencePolicy {
                policy: tart_silence::SilencePolicy::Curiosity,
            },
            Envelope::Heartbeat {
                engine: EngineId::new(5),
                seq: u64::MAX,
            },
            Envelope::StandbyCheckpoint {
                ckpt: Box::new(EngineCheckpoint::new(EngineId::new(2), 7)),
            },
            Envelope::StandbyInput {
                engine: EngineId::new(2),
                wire: w,
                vt: vt(123),
            },
        ];
        for env in variants {
            let bytes = env.to_bytes();
            assert_eq!(Envelope::from_bytes(&bytes).unwrap(), env, "{env:?}");
        }
    }

    #[test]
    fn wire_accessor() {
        let w = WireId::new(1);
        assert_eq!(
            Envelope::Silence {
                wire: w,
                through: vt(1),
                last_data: vt(0)
            }
            .wire(),
            Some(w)
        );
        assert_eq!(Envelope::Checkpoint.wire(), None);
        assert_eq!(Envelope::Die.wire(), None);
        assert_eq!(Envelope::Drain.wire(), None);
    }

    #[test]
    fn only_payload_traffic_is_faultable() {
        let w = WireId::new(1);
        assert!(Envelope::Data {
            wire: w,
            vt: vt(1),
            prev_vt: vt(0),
            payload: Value::Unit
        }
        .faultable());
        assert!(Envelope::Silence {
            wire: w,
            through: vt(1),
            last_data: vt(0)
        }
        .faultable());
        assert!(!Envelope::Probe {
            wire: w,
            needed_through: vt(1)
        }
        .faultable());
        assert!(!Envelope::ReplayRequest {
            wire: w,
            from: vt(1)
        }
        .faultable());
        assert!(!Envelope::ReplayDone {
            wire: w,
            through: vt(1),
            frames: 0
        }
        .faultable());
        assert!(!Envelope::Checkpoint.faultable());
        assert!(
            !Envelope::Heartbeat {
                engine: EngineId::new(0),
                seq: 1
            }
            .faultable(),
            "the failure detector must not be confused by injected link faults"
        );
        assert!(
            !Envelope::StandbyCheckpoint {
                ckpt: Box::new(EngineCheckpoint::new(EngineId::new(0), 0))
            }
            .faultable(),
            "standby replication rides the reliable control plane"
        );
        assert!(!Envelope::StandbyInput {
            engine: EngineId::new(0),
            wire: w,
            vt: vt(1)
        }
        .faultable());
    }

    #[test]
    fn junk_tag_rejected() {
        assert!(matches!(
            Envelope::from_bytes(&[42]),
            Err(DecodeError::InvalidTag { tag: 42, .. })
        ));
    }
}
