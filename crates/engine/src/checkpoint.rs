//! Engine checkpoints and the passive replica store.

use std::collections::BTreeMap;

use bytes::BytesMut;
use parking_lot::Mutex;
use std::sync::Arc;
use tart_codec::{Decode, DecodeError, Encode, Reader};
use tart_estimator::DeterminismFault;
use tart_model::{Snapshot, Value};
use tart_vtime::{ComponentId, EngineId, VirtualTime, WireId};

/// A soft checkpoint of one engine's state (§II.F.2).
///
/// Carries, per hosted component, a [`Snapshot`] (full on the first
/// checkpoint, incremental afterwards) plus the scheduler bookkeeping a
/// promoted replica needs: component clocks, per-input-wire consumed
/// watermarks (where to ask for replay from), and per-output-wire send
/// watermarks (where the `prev_vt` chain stood).
#[derive(Clone, Debug, PartialEq)]
pub struct EngineCheckpoint {
    /// The engine whose state this is.
    pub engine: EngineId,
    /// Monotone checkpoint sequence number.
    pub seq: u64,
    /// Per-component state snapshots.
    pub components: BTreeMap<ComponentId, Snapshot>,
    /// Per-component virtual clocks at capture time.
    pub clocks: BTreeMap<ComponentId, VirtualTime>,
    /// Per-input-wire: virtual time of the last *consumed* (processed)
    /// message. Replay after restore starts one tick later.
    pub consumed: BTreeMap<WireId, VirtualTime>,
    /// Per-output-wire: virtual time of the last transmitted data tick.
    pub sent: BTreeMap<WireId, VirtualTime>,
    /// Per-output-wire retention contents at capture time: in-flight
    /// messages the sender may still be asked to replay. Always captured
    /// for wires whose both endpoints live on this engine (sender and
    /// receiver state die together); captured for every wire under
    /// durability, where a whole-cluster crash voids the single-failure
    /// assumption and every upstream's volatile retention dies too.
    pub retention: BTreeMap<WireId, Vec<(VirtualTime, Value)>>,
}

impl EngineCheckpoint {
    /// Creates an empty checkpoint shell.
    pub fn new(engine: EngineId, seq: u64) -> Self {
        EngineCheckpoint {
            engine,
            seq,
            components: BTreeMap::new(),
            clocks: BTreeMap::new(),
            consumed: BTreeMap::new(),
            sent: BTreeMap::new(),
            retention: BTreeMap::new(),
        }
    }

    /// Total serialized payload bytes across component snapshots (the
    /// checkpoint-overhead metric).
    pub fn payload_bytes(&self) -> usize {
        self.components.values().map(Snapshot::payload_bytes).sum()
    }

    /// Returns `true` if every component snapshot is restorable on its own
    /// (no delta chunks). Self-contained checkpoints are *full* generations
    /// in the durable store; anything else is a *delta* that needs a base.
    pub fn is_self_contained(&self) -> bool {
        self.components.values().all(Snapshot::is_self_contained)
    }
}

impl Encode for EngineCheckpoint {
    fn encode(&self, buf: &mut BytesMut) {
        self.engine.encode(buf);
        self.seq.encode(buf);
        self.components.encode(buf);
        self.clocks.encode(buf);
        self.consumed.encode(buf);
        self.sent.encode(buf);
        self.retention.encode(buf);
    }
}

impl Decode for EngineCheckpoint {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(EngineCheckpoint {
            engine: EngineId::decode(r)?,
            seq: u64::decode(r)?,
            components: BTreeMap::decode(r)?,
            clocks: BTreeMap::decode(r)?,
            consumed: BTreeMap::decode(r)?,
            sent: BTreeMap::decode(r)?,
            retention: BTreeMap::decode(r)?,
        })
    }
}

/// The passive replica: holds checkpoint chains and the synchronously
/// logged determinism faults, does no processing until promoted (§I.B,
/// §II.F.3).
///
/// Shared between the active engine (writer) and the failover manager
/// (reader) behind a mutex; checkpoint shipping is "asynchronous" in the
/// sense that the engine never waits for the replica to apply anything.
#[derive(Clone, Default)]
pub struct ReplicaStore {
    inner: Arc<Mutex<ReplicaInner>>,
}

#[derive(Default)]
struct ReplicaInner {
    /// Checkpoint chain in seq order: one full head + incremental tail.
    chain: Vec<EngineCheckpoint>,
    /// Determinism faults logged synchronously (§II.G.4), per component.
    faults: Vec<(ComponentId, DeterminismFault)>,
}

impl ReplicaStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        ReplicaStore::default()
    }

    /// Accepts a shipped checkpoint. Checkpoints with stale sequence
    /// numbers (possible when a promoted engine restarts the sequence) are
    /// appended regardless; order of arrival is the order of application.
    pub fn push_checkpoint(&self, ckpt: EngineCheckpoint) {
        self.inner.lock().chain.push(ckpt);
    }

    /// Synchronously logs a determinism fault. Must complete before the
    /// engine uses the re-calibrated estimator.
    pub fn log_fault(&self, component: ComponentId, fault: DeterminismFault) {
        self.inner.lock().faults.push((component, fault));
    }

    /// The checkpoint chain, oldest first.
    pub fn chain(&self) -> Vec<EngineCheckpoint> {
        self.inner.lock().chain.clone()
    }

    /// All logged determinism faults, oldest first.
    pub fn faults(&self) -> Vec<(ComponentId, DeterminismFault)> {
        self.inner.lock().faults.clone()
    }

    /// Number of checkpoints held.
    pub fn len(&self) -> usize {
        self.inner.lock().chain.len()
    }

    /// Returns `true` if no checkpoint has ever been shipped.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().chain.is_empty()
    }

    /// Drops everything (used when re-arming a replica after promotion).
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.chain.clear();
        inner.faults.clear();
    }

    /// Serialized size of the whole chain, for overhead accounting.
    pub fn total_bytes(&self) -> usize {
        self.inner
            .lock()
            .chain
            .iter()
            .map(|c| c.to_bytes().len())
            .sum()
    }
}

impl std::fmt::Debug for ReplicaStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("ReplicaStore")
            .field("checkpoints", &inner.chain.len())
            .field("faults", &inner.faults.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tart_estimator::EstimatorSpec;
    use tart_model::{BlockId, StateChunk};
    use tart_vtime::VirtualDuration;

    fn vt(t: u64) -> VirtualTime {
        VirtualTime::from_ticks(t)
    }

    fn sample_checkpoint(seq: u64) -> EngineCheckpoint {
        let mut ckpt = EngineCheckpoint::new(EngineId::new(1), seq);
        let mut snap = Snapshot::new(vt(100));
        snap.put("counts", StateChunk::Full(vec![1, 2, 3]));
        ckpt.components.insert(ComponentId::new(0), snap);
        ckpt.clocks.insert(ComponentId::new(0), vt(100));
        ckpt.consumed.insert(WireId::new(2), vt(90));
        ckpt.sent.insert(WireId::new(3), vt(95));
        ckpt.retention
            .insert(WireId::new(3), vec![(vt(95), Value::from("in-flight"))]);
        ckpt
    }

    #[test]
    fn checkpoint_round_trips() {
        let ckpt = sample_checkpoint(7);
        let bytes = ckpt.to_bytes();
        assert_eq!(EngineCheckpoint::from_bytes(&bytes).unwrap(), ckpt);
        assert_eq!(ckpt.payload_bytes(), 3);
    }

    #[test]
    fn empty_checkpoint_round_trips() {
        let ckpt = EngineCheckpoint::new(EngineId::new(0), 0);
        assert_eq!(
            EngineCheckpoint::from_bytes(&ckpt.to_bytes()).unwrap(),
            ckpt
        );
        assert_eq!(ckpt.payload_bytes(), 0);
    }

    #[test]
    fn replica_accumulates_chain() {
        let store = ReplicaStore::new();
        assert!(store.is_empty());
        store.push_checkpoint(sample_checkpoint(0));
        store.push_checkpoint(sample_checkpoint(1));
        assert_eq!(store.len(), 2);
        let chain = store.chain();
        assert_eq!(chain[0].seq, 0);
        assert_eq!(chain[1].seq, 1);
        assert!(store.total_bytes() > 0);
        store.clear();
        assert!(store.is_empty());
    }

    #[test]
    fn replica_logs_faults_in_order() {
        let store = ReplicaStore::new();
        let f1 = DeterminismFault {
            vt: vt(1_000),
            new_spec: EstimatorSpec::per_iteration(BlockId(0), 62_000),
        };
        let f2 = DeterminismFault {
            vt: vt(2_000),
            new_spec: EstimatorSpec::constant(VirtualDuration::from_micros(600)),
        };
        store.log_fault(ComponentId::new(0), f1.clone());
        store.log_fault(ComponentId::new(1), f2.clone());
        let faults = store.faults();
        assert_eq!(faults.len(), 2);
        assert_eq!(faults[0], (ComponentId::new(0), f1));
        assert_eq!(faults[1], (ComponentId::new(1), f2));
    }

    #[test]
    fn store_is_cloneable_and_shared() {
        let a = ReplicaStore::new();
        let b = a.clone();
        a.push_checkpoint(sample_checkpoint(0));
        assert_eq!(b.len(), 1, "clones share the store");
        assert!(format!("{a:?}").contains("ReplicaStore"));
    }
}
