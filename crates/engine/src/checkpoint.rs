//! Engine checkpoints and the passive replica store.

use std::collections::BTreeMap;

use std::fmt;

use bytes::BytesMut;
use parking_lot::Mutex;
use std::sync::Arc;
use tart_codec::{Decode, DecodeError, Encode, Reader};
use tart_estimator::DeterminismFault;
use tart_model::{Snapshot, StateHash, StateHasher, Value};
use tart_vtime::{ComponentId, EngineId, VirtualTime, WireId};

/// A soft checkpoint of one engine's state (§II.F.2).
///
/// Carries, per hosted component, a [`Snapshot`] (full on the first
/// checkpoint, incremental afterwards) plus the scheduler bookkeeping a
/// promoted replica needs: component clocks, per-input-wire consumed
/// watermarks (where to ask for replay from), and per-output-wire send
/// watermarks (where the `prev_vt` chain stood).
#[derive(Clone, Debug, PartialEq)]
pub struct EngineCheckpoint {
    /// The engine whose state this is.
    pub engine: EngineId,
    /// Monotone checkpoint sequence number.
    pub seq: u64,
    /// Per-component state snapshots.
    pub components: BTreeMap<ComponentId, Snapshot>,
    /// Per-component virtual clocks at capture time.
    pub clocks: BTreeMap<ComponentId, VirtualTime>,
    /// Per-input-wire: virtual time of the last *consumed* (processed)
    /// message. Replay after restore starts one tick later.
    pub consumed: BTreeMap<WireId, VirtualTime>,
    /// Per-output-wire: virtual time of the last transmitted data tick.
    pub sent: BTreeMap<WireId, VirtualTime>,
    /// Per-output-wire retention contents at capture time: in-flight
    /// messages the sender may still be asked to replay. Always captured
    /// for wires whose both endpoints live on this engine (sender and
    /// receiver state die together); captured for every wire under
    /// durability, where a whole-cluster crash voids the single-failure
    /// assumption and every upstream's volatile retention dies too.
    pub retention: BTreeMap<WireId, Vec<(VirtualTime, Value)>>,
    /// Per-component state digests at capture time (verified replay,
    /// DESIGN.md §15). Recomputed at every replay horizon; a mismatch is a
    /// [`DivergenceFault`] attributed to the offending component.
    pub component_hashes: BTreeMap<ComponentId, StateHash>,
    /// Combined engine-state digest at capture time: the component digests
    /// folded with the scheduler bookkeeping (clocks, consumed, sent) via
    /// [`combined_state_hash`].
    pub state_hash: StateHash,
    /// Hash-chain seal: the digest of the previous checkpoint's seal folded
    /// with this checkpoint's own canonical bytes (everything except this
    /// field). The seal chain restarts ([`StateHash::ZERO`] predecessor) at
    /// every self-contained checkpoint, so any chain beginning at a full
    /// generation verifies independently. A flipped byte anywhere in a
    /// stored member — snapshots, watermarks, or the recorded digests
    /// themselves — breaks the seal of that member and every later delta.
    pub chain_seal: StateHash,
}

impl EngineCheckpoint {
    /// Creates an empty checkpoint shell.
    pub fn new(engine: EngineId, seq: u64) -> Self {
        EngineCheckpoint {
            engine,
            seq,
            components: BTreeMap::new(),
            clocks: BTreeMap::new(),
            consumed: BTreeMap::new(),
            sent: BTreeMap::new(),
            retention: BTreeMap::new(),
            component_hashes: BTreeMap::new(),
            state_hash: StateHash::ZERO,
            chain_seal: StateHash::ZERO,
        }
    }

    /// Total serialized payload bytes across component snapshots (the
    /// checkpoint-overhead metric).
    pub fn payload_bytes(&self) -> usize {
        self.components.values().map(Snapshot::payload_bytes).sum()
    }

    /// Returns `true` if every component snapshot is restorable on its own
    /// (no delta chunks). Self-contained checkpoints are *full* generations
    /// in the durable store; anything else is a *delta* that needs a base.
    pub fn is_self_contained(&self) -> bool {
        self.components.values().all(Snapshot::is_self_contained)
    }

    /// Computes the seal this checkpoint should carry when chained after a
    /// predecessor whose seal is `prev`: the predecessor's seal folded with
    /// this checkpoint's canonical bytes (everything except `chain_seal`).
    pub fn seal_over(&self, prev: &StateHash) -> StateHash {
        let mut h = StateHasher::new();
        h.update_hash(prev);
        let mut buf = BytesMut::new();
        self.encode_sans_seal(&mut buf);
        h.update(&buf);
        h.finish()
    }

    /// Stamps `chain_seal` in place. Self-contained checkpoints restart the
    /// seal chain; pass [`StateHash::ZERO`] for them.
    pub fn seal(&mut self, prev: &StateHash) {
        self.chain_seal = self.seal_over(prev);
    }

    fn encode_sans_seal(&self, buf: &mut BytesMut) {
        self.engine.encode(buf);
        self.seq.encode(buf);
        self.components.encode(buf);
        self.clocks.encode(buf);
        self.consumed.encode(buf);
        self.sent.encode(buf);
        self.retention.encode(buf);
        self.component_hashes.encode(buf);
        self.state_hash.encode(buf);
    }
}

impl Encode for EngineCheckpoint {
    fn encode(&self, buf: &mut BytesMut) {
        self.encode_sans_seal(buf);
        self.chain_seal.encode(buf);
    }
}

impl Decode for EngineCheckpoint {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(EngineCheckpoint {
            engine: EngineId::decode(r)?,
            seq: u64::decode(r)?,
            components: BTreeMap::decode(r)?,
            clocks: BTreeMap::decode(r)?,
            consumed: BTreeMap::decode(r)?,
            sent: BTreeMap::decode(r)?,
            retention: BTreeMap::decode(r)?,
            component_hashes: BTreeMap::decode(r)?,
            state_hash: StateHash::decode(r)?,
            chain_seal: StateHash::decode(r)?,
        })
    }
}

/// Folds the per-component digests and the scheduler bookkeeping into the
/// engine-level digest recorded as [`EngineCheckpoint::state_hash`].
///
/// Retention is deliberately **outside** the hash domain: its contents
/// depend on downstream `TrimAck` arrival timing, which is real-time
/// nondeterministic and legitimately differs between a run and its replay.
pub fn combined_state_hash(
    component_hashes: &BTreeMap<ComponentId, StateHash>,
    clocks: &BTreeMap<ComponentId, VirtualTime>,
    consumed: &BTreeMap<WireId, VirtualTime>,
    sent: &BTreeMap<WireId, VirtualTime>,
) -> StateHash {
    let mut buf = BytesMut::new();
    component_hashes.encode(&mut buf);
    clocks.encode(&mut buf);
    consumed.encode(&mut buf);
    sent.encode(&mut buf);
    let mut h = StateHasher::new();
    h.update(&buf);
    h.finish()
}

/// A defect found while hash-verifying a checkpoint chain, before any state
/// is restored from it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChainDefect {
    /// Member `index` (checkpoint `seq`) fails its chain seal
    /// ([`EngineCheckpoint::chain_seal`]): its bytes — snapshots,
    /// watermarks or recorded digests — changed after sealing.
    BrokenSeal {
        /// Position in the chain (0 = oldest).
        index: usize,
        /// The checkpoint's sequence number.
        seq: u64,
    },
    /// The chain opens with a delta: nothing to chain its seal from (and
    /// nothing to restore it onto).
    DeltaWithoutBase {
        /// Position in the chain (0 = oldest).
        index: usize,
        /// The checkpoint's sequence number.
        seq: u64,
    },
}

impl fmt::Display for ChainDefect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChainDefect::BrokenSeal { index, seq } => {
                write!(f, "checkpoint #{index} (seq {seq}) fails its chain seal")
            }
            ChainDefect::DeltaWithoutBase { index, seq } => {
                write!(f, "checkpoint #{index} (seq {seq}) is a delta with no base")
            }
        }
    }
}

/// Hash-verifies a checkpoint chain: every member's stored seal must match
/// a recomputation over its own bytes chained from its predecessor
/// (restarting at each self-contained member). Returns the first defect.
///
/// This is the chain-integrity half of verified replay; the semantic half —
/// live state matching [`EngineCheckpoint::state_hash`] after the chain is
/// applied — runs in `EngineCore::restore`.
///
/// # Errors
///
/// Returns the first [`ChainDefect`] encountered, oldest member first.
pub fn verify_chain(chain: &[EngineCheckpoint]) -> Result<(), ChainDefect> {
    let mut prev_seal = StateHash::ZERO;
    for (index, ckpt) in chain.iter().enumerate() {
        let expected_prev = if ckpt.is_self_contained() {
            StateHash::ZERO
        } else if index == 0 {
            return Err(ChainDefect::DeltaWithoutBase {
                index,
                seq: ckpt.seq,
            });
        } else {
            prev_seal
        };
        if ckpt.seal_over(&expected_prev) != ckpt.chain_seal {
            return Err(ChainDefect::BrokenSeal {
                index,
                seq: ckpt.seq,
            });
        }
        prev_seal = ckpt.chain_seal;
    }
    Ok(())
}

/// Raised when state recomputed at a replay horizon disagrees with the
/// digest recorded at checkpoint time — the replica or restore chain did
/// **not** reconverge to the checkpointed state (bit rot in a warm replica,
/// an undetected nondeterministic handler, or corrupted scheduler
/// bookkeeping).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DivergenceFault {
    /// The component whose state diverged, or `None` when the mismatch is
    /// in engine-level bookkeeping (clocks / consumed / sent watermarks).
    pub component: Option<ComponentId>,
    /// The virtual time of the replay horizon where the check ran.
    pub vt: VirtualTime,
    /// The digest recorded at checkpoint time.
    pub expected: StateHash,
    /// The digest recomputed from live state.
    pub actual: StateHash,
}

impl fmt::Display for DivergenceFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.component {
            Some(c) => write!(
                f,
                "state divergence in component {c} at vt {}: expected {} got {}",
                self.vt.as_ticks(),
                self.expected.short_hex(),
                self.actual.short_hex(),
            ),
            None => write!(
                f,
                "engine bookkeeping divergence at vt {}: expected {} got {}",
                self.vt.as_ticks(),
                self.expected.short_hex(),
                self.actual.short_hex(),
            ),
        }
    }
}

impl std::error::Error for DivergenceFault {}

/// The passive replica: holds checkpoint chains and the synchronously
/// logged determinism faults, does no processing until promoted (§I.B,
/// §II.F.3).
///
/// Shared between the active engine (writer) and the failover manager
/// (reader) behind a mutex; checkpoint shipping is "asynchronous" in the
/// sense that the engine never waits for the replica to apply anything.
#[derive(Clone, Default)]
pub struct ReplicaStore {
    inner: Arc<Mutex<ReplicaInner>>,
}

#[derive(Default)]
struct ReplicaInner {
    /// Checkpoint chain in seq order: one full head + incremental tail.
    chain: Vec<EngineCheckpoint>,
    /// Determinism faults logged synchronously (§II.G.4), per component.
    faults: Vec<(ComponentId, DeterminismFault)>,
}

impl ReplicaStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        ReplicaStore::default()
    }

    /// Accepts a shipped checkpoint. Checkpoints with stale sequence
    /// numbers (possible when a promoted engine restarts the sequence) are
    /// appended regardless; order of arrival is the order of application.
    pub fn push_checkpoint(&self, ckpt: EngineCheckpoint) {
        self.inner.lock().chain.push(ckpt);
    }

    /// Synchronously logs a determinism fault. Must complete before the
    /// engine uses the re-calibrated estimator.
    pub fn log_fault(&self, component: ComponentId, fault: DeterminismFault) {
        self.inner.lock().faults.push((component, fault));
    }

    /// The checkpoint chain, oldest first.
    pub fn chain(&self) -> Vec<EngineCheckpoint> {
        self.inner.lock().chain.clone()
    }

    /// All logged determinism faults, oldest first.
    pub fn faults(&self) -> Vec<(ComponentId, DeterminismFault)> {
        self.inner.lock().faults.clone()
    }

    /// Number of checkpoints held.
    pub fn len(&self) -> usize {
        self.inner.lock().chain.len()
    }

    /// Returns `true` if no checkpoint has ever been shipped.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().chain.is_empty()
    }

    /// Drops everything (used when re-arming a replica after promotion).
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.chain.clear();
        inner.faults.clear();
    }

    /// Serialized size of the whole chain, for overhead accounting.
    pub fn total_bytes(&self) -> usize {
        self.inner
            .lock()
            .chain
            .iter()
            .map(|c| c.to_bytes().len())
            .sum()
    }
}

impl std::fmt::Debug for ReplicaStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("ReplicaStore")
            .field("checkpoints", &inner.chain.len())
            .field("faults", &inner.faults.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tart_estimator::EstimatorSpec;
    use tart_model::{BlockId, StateChunk};
    use tart_vtime::VirtualDuration;

    fn vt(t: u64) -> VirtualTime {
        VirtualTime::from_ticks(t)
    }

    fn sample_checkpoint(seq: u64) -> EngineCheckpoint {
        let mut ckpt = EngineCheckpoint::new(EngineId::new(1), seq);
        let mut snap = Snapshot::new(vt(100));
        snap.put("counts", StateChunk::Full(vec![1, 2, 3]));
        ckpt.components.insert(ComponentId::new(0), snap);
        ckpt.clocks.insert(ComponentId::new(0), vt(100));
        ckpt.consumed.insert(WireId::new(2), vt(90));
        ckpt.sent.insert(WireId::new(3), vt(95));
        ckpt.retention
            .insert(WireId::new(3), vec![(vt(95), Value::from("in-flight"))]);
        ckpt
    }

    #[test]
    fn checkpoint_round_trips() {
        let ckpt = sample_checkpoint(7);
        let bytes = ckpt.to_bytes();
        assert_eq!(EngineCheckpoint::from_bytes(&bytes).unwrap(), ckpt);
        assert_eq!(ckpt.payload_bytes(), 3);
    }

    #[test]
    fn empty_checkpoint_round_trips() {
        let ckpt = EngineCheckpoint::new(EngineId::new(0), 0);
        assert_eq!(
            EngineCheckpoint::from_bytes(&ckpt.to_bytes()).unwrap(),
            ckpt
        );
        assert_eq!(ckpt.payload_bytes(), 0);
    }

    #[test]
    fn replica_accumulates_chain() {
        let store = ReplicaStore::new();
        assert!(store.is_empty());
        store.push_checkpoint(sample_checkpoint(0));
        store.push_checkpoint(sample_checkpoint(1));
        assert_eq!(store.len(), 2);
        let chain = store.chain();
        assert_eq!(chain[0].seq, 0);
        assert_eq!(chain[1].seq, 1);
        assert!(store.total_bytes() > 0);
        store.clear();
        assert!(store.is_empty());
    }

    #[test]
    fn replica_logs_faults_in_order() {
        let store = ReplicaStore::new();
        let f1 = DeterminismFault {
            vt: vt(1_000),
            new_spec: EstimatorSpec::per_iteration(BlockId(0), 62_000),
        };
        let f2 = DeterminismFault {
            vt: vt(2_000),
            new_spec: EstimatorSpec::constant(VirtualDuration::from_micros(600)),
        };
        store.log_fault(ComponentId::new(0), f1.clone());
        store.log_fault(ComponentId::new(1), f2.clone());
        let faults = store.faults();
        assert_eq!(faults.len(), 2);
        assert_eq!(faults[0], (ComponentId::new(0), f1));
        assert_eq!(faults[1], (ComponentId::new(1), f2));
    }

    fn delta_checkpoint(seq: u64) -> EngineCheckpoint {
        let mut ckpt = EngineCheckpoint::new(EngineId::new(1), seq);
        let mut snap = Snapshot::new(vt(200));
        snap.put("counts", StateChunk::Delta(vec![9]));
        ckpt.components.insert(ComponentId::new(0), snap);
        ckpt
    }

    #[test]
    fn seal_chain_verifies_and_detects_tampering() {
        let mut full = sample_checkpoint(0);
        assert!(full.is_self_contained());
        full.seal(&StateHash::ZERO);
        let mut delta = delta_checkpoint(1);
        assert!(!delta.is_self_contained());
        delta.seal(&full.chain_seal);
        let chain = vec![full.clone(), delta.clone()];
        assert_eq!(verify_chain(&chain), Ok(()));

        // Tamper with the delta's recorded digest after sealing: the seal
        // covers it, so verification pinpoints the delta.
        let mut tampered = delta.clone();
        tampered.state_hash = StateHash([0xEE; 32]);
        assert_eq!(
            verify_chain(&[full.clone(), tampered]),
            Err(ChainDefect::BrokenSeal { index: 1, seq: 1 })
        );

        // Tamper with the full base instead: the base breaks first.
        let mut bad_base = full.clone();
        bad_base.consumed.insert(WireId::new(9), vt(1));
        assert_eq!(
            verify_chain(&[bad_base, delta.clone()]),
            Err(ChainDefect::BrokenSeal { index: 0, seq: 0 })
        );

        // A chain opening with a delta has nothing to verify against.
        assert_eq!(
            verify_chain(&[delta]),
            Err(ChainDefect::DeltaWithoutBase { index: 0, seq: 1 })
        );
        assert_eq!(verify_chain(&[]), Ok(()));
    }

    #[test]
    fn seal_chain_restarts_at_full_members() {
        let mut full1 = sample_checkpoint(0);
        full1.seal(&StateHash::ZERO);
        let mut delta1 = delta_checkpoint(1);
        delta1.seal(&full1.chain_seal);
        let mut full2 = sample_checkpoint(2);
        full2.seal(&StateHash::ZERO);
        let mut delta2 = delta_checkpoint(3);
        delta2.seal(&full2.chain_seal);
        // The whole history verifies...
        assert_eq!(
            verify_chain(&[full1, delta1, full2.clone(), delta2.clone()]),
            Ok(())
        );
        // ...and so does the suffix starting at the newer full generation —
        // exactly what the durable store loads after pruning.
        assert_eq!(verify_chain(&[full2, delta2]), Ok(()));
    }

    #[test]
    fn divergence_fault_displays() {
        let fault = DivergenceFault {
            component: Some(ComponentId::new(3)),
            vt: vt(1_000),
            expected: StateHash([0xAA; 32]),
            actual: StateHash([0xBB; 32]),
        };
        let text = fault.to_string();
        assert!(text.contains("divergence"));
        assert!(text.contains("aaaa"));
        assert!(text.contains("bbbb"));
        let meta = DivergenceFault {
            component: None,
            ..fault
        };
        assert!(meta.to_string().contains("bookkeeping"));
    }

    #[test]
    fn combined_hash_covers_every_section() {
        let mut hashes = BTreeMap::new();
        hashes.insert(ComponentId::new(0), StateHash([1; 32]));
        let mut clocks = BTreeMap::new();
        clocks.insert(ComponentId::new(0), vt(10));
        let mut consumed = BTreeMap::new();
        consumed.insert(WireId::new(0), vt(5));
        let mut sent = BTreeMap::new();
        sent.insert(WireId::new(1), vt(7));
        let base = combined_state_hash(&hashes, &clocks, &consumed, &sent);

        let mut hashes2 = hashes.clone();
        hashes2.insert(ComponentId::new(0), StateHash([2; 32]));
        assert_ne!(
            base,
            combined_state_hash(&hashes2, &clocks, &consumed, &sent)
        );
        let mut clocks2 = clocks.clone();
        clocks2.insert(ComponentId::new(0), vt(11));
        assert_ne!(
            base,
            combined_state_hash(&hashes, &clocks2, &consumed, &sent)
        );
        let mut consumed2 = consumed.clone();
        consumed2.insert(WireId::new(0), vt(6));
        assert_ne!(
            base,
            combined_state_hash(&hashes, &clocks, &consumed2, &sent)
        );
        let mut sent2 = sent.clone();
        sent2.insert(WireId::new(1), vt(8));
        assert_ne!(
            base,
            combined_state_hash(&hashes, &clocks, &consumed, &sent2)
        );
        assert_eq!(
            base,
            combined_state_hash(&hashes, &clocks, &consumed, &sent)
        );
    }

    #[test]
    fn store_is_cloneable_and_shared() {
        let a = ReplicaStore::new();
        let b = a.clone();
        a.push_checkpoint(sample_checkpoint(0));
        assert_eq!(b.len(), 1, "clones share the store");
        assert!(format!("{a:?}").contains("ReplicaStore"));
    }
}
