//! Property tests of the router's epoch-swapped routing table: concurrent
//! senders racing an arbitrary schedule of inbox re-registrations (the
//! failover path) never drop or duplicate an envelope, and each sender's
//! stream stays in order — messages land on inbox *generations* in
//! non-decreasing order, split cleanly at some swap point.
//!
//! This is the linearizability claim behind the lock-free fast path: a
//! sender holding a stale snapshot behaves exactly like an in-flight packet
//! routed by the previous forwarding table — the message arrives (at the
//! then-current inbox), it just may arrive at the older generation.

use crossbeam::channel::{unbounded, Receiver};
use proptest::prelude::*;
use tart_engine::{Envelope, FaultPlan, Router};
use tart_model::Value;
use tart_vtime::{EngineId, VirtualTime, WireId};

/// Envelope tagged with `(sender, seq)` so the property can reconstruct
/// per-sender streams from whatever inboxes they landed on.
fn tagged(sender: usize, seq: usize) -> Envelope {
    Envelope::Data {
        wire: WireId::new(sender as u32),
        vt: VirtualTime::from_ticks(seq as u64 + 1),
        prev_vt: VirtualTime::ZERO,
        payload: Value::I64((sender * 1_000_000 + seq) as i64),
    }
}

fn tag_of(env: &Envelope) -> (usize, usize) {
    match env {
        Envelope::Data { wire, vt, .. } => (wire.raw() as usize, vt.as_ticks() as usize - 1),
        other => panic!("unexpected envelope {other:?}"),
    }
}

/// Runs `senders` threads, each firing `msgs` tagged envelopes at one
/// engine id, while the main thread re-registers the inbox `swaps` times at
/// pseudo-random points. Returns every generation's receiver, oldest first.
fn race_swaps(senders: usize, msgs: usize, swaps: usize, seed: u64) -> Vec<Receiver<Envelope>> {
    let router = Router::new(FaultPlan::none());
    let target = EngineId::new(0);
    let (tx, rx) = unbounded();
    router.register(target, tx);
    let mut inboxes = vec![rx];

    std::thread::scope(|s| {
        for sender in 0..senders {
            let router = router.clone();
            s.spawn(move || {
                for seq in 0..msgs {
                    router.send(target, tagged(sender, seq));
                }
            });
        }
        // Swap the inbox at jittered points while the senders run. The
        // spin count is deliberately tiny: on a small host the interesting
        // interleavings happen within the first few thousand sends.
        let mut jitter = seed;
        for _ in 0..swaps {
            jitter = jitter
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            for _ in 0..(jitter >> 60) {
                std::thread::yield_now();
            }
            let (tx, rx) = unbounded();
            router.register(target, tx);
            inboxes.push(rx);
        }
    });
    router.deregister(target);
    inboxes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn swaps_under_concurrent_senders_never_drop_or_duplicate(
        senders in 1usize..=4,
        msgs in 1usize..=256,
        swaps in 0usize..=6,
        seed in any::<u64>(),
    ) {
        let inboxes = race_swaps(senders, msgs, swaps, seed);

        // Reconstruct each sender's stream in inbox-generation order.
        let mut streams: Vec<Vec<usize>> = vec![Vec::new(); senders];
        let mut total = 0usize;
        for rx in &inboxes {
            for env in rx.try_iter() {
                let (sender, seq) = tag_of(&env);
                streams[sender].push(seq);
                total += 1;
            }
        }

        // No drops, no duplicates: exactly senders * msgs across all
        // generations of the inbox.
        prop_assert_eq!(total, senders * msgs, "every send lands exactly once");

        // Per-sender order: a sender's messages, read across generations
        // oldest-first, are exactly 0..msgs in order. (A sender's epoch
        // observations are monotonic, so its stream splits cleanly across
        // swap points and never interleaves back into an older inbox.)
        for (sender, stream) in streams.iter().enumerate() {
            let expect: Vec<usize> = (0..msgs).collect();
            prop_assert_eq!(
                stream, &expect,
                "sender {}'s stream is in order across swaps", sender
            );
        }
    }

    #[test]
    fn deregistered_gap_loses_but_never_corrupts(
        msgs in 1usize..=128,
        seed in any::<u64>(),
    ) {
        // One sender races a deregister → re-register gap (fail-stop then
        // failover). Messages may be lost in the gap — that is the §II.F
        // in-transit-loss semantics replay exists to cover — but whatever
        // does arrive is in order and duplicate-free.
        let router = Router::new(FaultPlan::none());
        let target = EngineId::new(0);
        let (tx, rx) = unbounded();
        router.register(target, tx);

        let mut inboxes = vec![rx];
        std::thread::scope(|s| {
            let sender_router = router.clone();
            s.spawn(move || {
                for seq in 0..msgs {
                    sender_router.send(target, tagged(0, seq));
                }
            });
            for _ in 0..((seed >> 59) + 1) {
                std::thread::yield_now();
            }
            router.deregister(target);
            for _ in 0..((seed >> 61) + 1) {
                std::thread::yield_now();
            }
            let (tx, rx) = unbounded();
            router.register(target, tx);
            inboxes.push(rx);
        });

        let seen: Vec<usize> = inboxes
            .iter()
            .flat_map(|rx| rx.try_iter())
            .map(|env| tag_of(&env).1)
            .collect();
        // In order and strictly increasing (no duplicates); gaps allowed.
        for pair in seen.windows(2) {
            prop_assert!(pair[0] < pair[1], "ordered, duplicate-free: {:?}", pair);
        }
    }
}
