//! Threaded end-to-end tests of the TART cluster: determinism across runs,
//! failover with transparent recovery, and lossy/duplicating links.

// Test code: free to use wall clocks and hash maps (the determinism fence guards production code only).
#![allow(clippy::disallowed_methods)]

use std::time::{Duration, Instant};

use tart_engine::{Cluster, ClusterConfig, FaultPlan, OutputRecord, Placement};
use tart_estimator::EstimatorSpec;
use tart_model::reference::{self, fan_in_app};
use tart_model::{BlockId, Value};
use tart_vtime::EngineId;

/// Paper-style configuration for the Fig 1 app.
fn paper_config(spec: &tart_model::AppSpec) -> ClusterConfig {
    let mut config = ClusterConfig::logical_time();
    for c in spec.components() {
        let est = if c.name().starts_with("Sender") {
            EstimatorSpec::per_iteration(reference::SENDER_LOOP_BLOCK, 61_000)
        } else {
            EstimatorSpec::per_iteration(BlockId(0), 400_000)
        };
        config = config.with_estimator(c.id(), est);
    }
    config
}

/// Waits until the cluster has emitted `n` outputs (or panics after 10 s).
fn await_outputs(cluster: &Cluster, n: usize) -> Vec<OutputRecord> {
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut outs = Vec::new();
    while outs.len() < n {
        outs.extend(cluster.take_outputs());
        assert!(
            Instant::now() < deadline,
            "timed out waiting for {n} outputs, have {}",
            outs.len()
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    outs
}

fn run_workload(
    placement: fn(&tart_model::AppSpec) -> Placement,
    config: impl Fn(&tart_model::AppSpec) -> ClusterConfig,
    sentences: &[(&str, &str)],
) -> Vec<OutputRecord> {
    let spec = fan_in_app(2).expect("valid app");
    let cluster = Cluster::deploy(spec.clone(), placement(&spec), config(&spec)).expect("deploys");
    for (client, sentence) in sentences {
        cluster
            .injector(client)
            .expect("injector exists")
            .send(Value::from(*sentence));
    }
    cluster.finish_inputs();
    cluster.shutdown()
}

fn two_engine_placement(spec: &tart_model::AppSpec) -> Placement {
    let mut p = Placement::new();
    p.assign(
        spec.component_by_name("Sender1").unwrap().id(),
        EngineId::new(0),
    );
    p.assign(
        spec.component_by_name("Sender2").unwrap().id(),
        EngineId::new(0),
    );
    p.assign(
        spec.component_by_name("Merger").unwrap().id(),
        EngineId::new(1),
    );
    p
}

const SENTENCES: &[(&str, &str)] = &[
    ("client1", "the cat sat"),
    ("client2", "on the mat"),
    ("client1", "the cat saw the dog"),
    ("client2", "the dog ran"),
    ("client1", "cats and dogs"),
    ("client2", "it rained cats"),
];

#[test]
fn single_engine_cluster_processes_everything() {
    let outs = run_workload(Placement::single_engine, paper_config, SENTENCES);
    assert_eq!(outs.len(), SENTENCES.len());
    // Outputs are sequence-numbered 1..=6 by the merger.
    let mut seqs: Vec<i64> = outs
        .iter()
        .map(|o| o.payload.get("seq").unwrap().as_i64().unwrap())
        .collect();
    seqs.sort();
    assert_eq!(seqs, vec![1, 2, 3, 4, 5, 6]);
}

#[test]
fn two_engine_cluster_matches_single_engine() {
    let single = run_workload(Placement::single_engine, paper_config, SENTENCES);
    let double = run_workload(two_engine_placement, paper_config, SENTENCES);
    // Placement is transparent: identical outputs, identical virtual times.
    let key = |outs: &[OutputRecord]| {
        let mut v: Vec<(u64, String)> = outs
            .iter()
            .map(|o| (o.vt.as_ticks(), o.payload.to_string()))
            .collect();
        v.sort();
        v
    };
    assert_eq!(key(&single), key(&double));
}

#[test]
fn repeated_runs_are_deterministic() {
    let a = run_workload(two_engine_placement, paper_config, SENTENCES);
    let b = run_workload(two_engine_placement, paper_config, SENTENCES);
    let key = |outs: &[OutputRecord]| {
        let mut v: Vec<(u64, String)> = outs
            .iter()
            .map(|o| (o.vt.as_ticks(), o.payload.to_string()))
            .collect();
        v.sort();
        v
    };
    assert_eq!(key(&a), key(&b), "same inputs ⇒ byte-identical outputs");
}

#[test]
fn lazy_silence_still_completes() {
    let lazy = |spec: &tart_model::AppSpec| {
        paper_config(spec).with_silence(tart_silence::SilencePolicy::Lazy)
    };
    let outs = run_workload(two_engine_placement, lazy, SENTENCES);
    assert_eq!(outs.len(), SENTENCES.len());
}

#[test]
fn lossy_duplicating_links_are_masked() {
    let faulty = |spec: &tart_model::AppSpec| {
        paper_config(spec)
            .with_faults(FaultPlan {
                drop_prob: 0.10,
                dup_prob: 0.10,
                seed: 99,
            })
            .with_checkpoint_every(3)
    };
    let clean = run_workload(two_engine_placement, paper_config, SENTENCES);
    let lossy = run_workload(two_engine_placement, faulty, SENTENCES);
    let key = |outs: &[OutputRecord]| {
        let mut v: Vec<(u64, String)> = Cluster::dedup_outputs(outs.to_vec())
            .iter()
            .map(|o| (o.vt.as_ticks(), o.payload.to_string()))
            .collect();
        v.sort();
        v
    };
    assert_eq!(
        key(&clean),
        key(&lossy),
        "loss and duplication are fully masked by gap replay + timestamp dedup"
    );
}

#[test]
fn failover_is_transparent_modulo_stutter() {
    // Reference run, no failure.
    let reference_outs = run_workload(two_engine_placement, paper_config, SENTENCES);

    // Failure run: kill the merger's engine mid-stream, then promote.
    let spec = fan_in_app(2).expect("valid app");
    let config = paper_config(&spec).with_checkpoint_every(2);
    let cluster_placement = two_engine_placement(&spec);
    let mut cluster = Cluster::deploy(spec.clone(), cluster_placement, config).expect("deploys");

    // First half of the workload.
    for (client, sentence) in &SENTENCES[..3] {
        cluster
            .injector(client)
            .unwrap()
            .send(Value::from(*sentence));
    }
    // Let the merger make progress and checkpoint.
    let mut early = await_outputs(&cluster, 1);
    std::thread::sleep(Duration::from_millis(20));
    early.extend(cluster.take_outputs());

    // Fail-stop the merger engine: state and in-flight messages vanish.
    cluster.kill(EngineId::new(1));
    // Second half arrives while the engine is dead (the log captures it;
    // sender-engine outputs go to the void).
    for (client, sentence) in &SENTENCES[3..] {
        cluster
            .injector(client)
            .unwrap()
            .send(Value::from(*sentence));
    }
    // Promote the passive replica: checkpoint restore + replay.
    cluster
        .promote(EngineId::new(1))
        .expect("promotion of a killed engine succeeds");

    cluster.finish_inputs();
    let mut outs = cluster.shutdown();
    outs.extend(early);

    // Modulo output stutter (§II.A), the observable behaviour equals the
    // failure-free run: same virtual times, same payloads.
    let deduped = Cluster::dedup_outputs(outs);
    let key = |outs: &[OutputRecord]| {
        let mut v: Vec<(u64, String)> = outs
            .iter()
            .map(|o| (o.vt.as_ticks(), o.payload.to_string()))
            .collect();
        v.sort();
        v
    };
    assert_eq!(key(&deduped), key(&reference_outs));
}

#[test]
fn killing_a_sender_engine_recovers_too() {
    let reference_outs = run_workload(two_engine_placement, paper_config, SENTENCES);

    let spec = fan_in_app(2).expect("valid app");
    let config = paper_config(&spec).with_checkpoint_every(1);
    let mut cluster =
        Cluster::deploy(spec.clone(), two_engine_placement(&spec), config).expect("deploys");
    for (client, sentence) in &SENTENCES[..4] {
        cluster
            .injector(client)
            .unwrap()
            .send(Value::from(*sentence));
    }
    let mut early = await_outputs(&cluster, 1);
    std::thread::sleep(Duration::from_millis(20));
    early.extend(cluster.take_outputs());

    // Kill the SENDER engine this time: the merger survives and dedupes the
    // re-sent stream by timestamp.
    cluster.kill(EngineId::new(0));
    cluster
        .promote(EngineId::new(0))
        .expect("promotion of a killed engine succeeds");
    for (client, sentence) in &SENTENCES[4..] {
        cluster
            .injector(client)
            .unwrap()
            .send(Value::from(*sentence));
    }
    cluster.finish_inputs();
    let mut outs = cluster.shutdown();
    outs.extend(early);
    let outs = Cluster::dedup_outputs(outs);

    let key = |outs: &[OutputRecord]| {
        let mut v: Vec<(u64, String)> = outs
            .iter()
            .map(|o| (o.vt.as_ticks(), o.payload.to_string()))
            .collect();
        v.sort();
        v
    };
    assert_eq!(key(&outs), key(&reference_outs));
}

#[test]
fn metrics_and_replica_depth_are_observable() {
    let spec = fan_in_app(2).expect("valid app");
    let config = paper_config(&spec).with_checkpoint_every(2);
    let cluster =
        Cluster::deploy(spec.clone(), Placement::single_engine(&spec), config).expect("deploys");
    for (client, sentence) in SENTENCES {
        cluster
            .injector(client)
            .unwrap()
            .send(Value::from(*sentence));
    }
    cluster.finish_inputs();
    let _ = await_outputs(&cluster, SENTENCES.len());
    let metrics = cluster.engine_metrics(EngineId::new(0)).expect("engine 0");
    assert!(metrics.processed >= 12, "senders + merger deliveries");
    assert!(cluster.replica_depth(EngineId::new(0)) >= 1);
    assert_eq!(cluster.fault_counts(), (0, 0));
    let _ = cluster.shutdown();
}

#[test]
fn deploy_rejects_incomplete_placement() {
    let spec = fan_in_app(2).expect("valid app");
    let placement = Placement::new(); // nothing assigned
    assert!(Cluster::deploy(spec, placement, ClusterConfig::logical_time()).is_err());
}

#[test]
fn aggressive_silence_policy_completes_in_the_engine() {
    let aggressive = |spec: &tart_model::AppSpec| {
        paper_config(spec).with_silence(tart_silence::SilencePolicy::Aggressive {
            max_quiet: tart_vtime::VirtualDuration::from_micros(200),
        })
    };
    let outs = run_workload(two_engine_placement, aggressive, SENTENCES);
    assert_eq!(outs.len(), SENTENCES.len());
}

#[test]
fn non_deterministic_baseline_delivers_same_payload_multiset() {
    // The arrival-order baseline gives no ordering or timestamp guarantees,
    // but it must not lose or duplicate messages either.
    let det = run_workload(two_engine_placement, paper_config, SENTENCES);
    let nondet = run_workload(
        two_engine_placement,
        |spec| paper_config(spec).non_deterministic(),
        SENTENCES,
    );
    assert_eq!(nondet.len(), det.len());
    // Sequence numbers 1..=6 each appear exactly once.
    let mut seqs: Vec<i64> = nondet
        .iter()
        .map(|o| o.payload.get("seq").unwrap().as_i64().unwrap())
        .collect();
    seqs.sort();
    assert_eq!(seqs, vec![1, 2, 3, 4, 5, 6]);
}

#[test]
fn link_delay_estimates_shift_output_virtual_times() {
    let spec = fan_in_app(2).expect("valid app");
    let merger = spec.component_by_name("Merger").unwrap().id();
    let consumer_wire = spec.output_wires_of(merger)[0].id();

    let plain = run_workload(two_engine_placement, paper_config, &SENTENCES[..2]);
    let delayed = run_workload(
        two_engine_placement,
        |spec| {
            let mut c = paper_config(spec);
            c.link_delay
                .insert(consumer_wire, tart_vtime::VirtualDuration::from_micros(250));
            c
        },
        &SENTENCES[..2],
    );
    assert_eq!(plain.len(), delayed.len());
    let mut plain_vts: Vec<u64> = plain.iter().map(|o| o.vt.as_ticks()).collect();
    let mut delayed_vts: Vec<u64> = delayed.iter().map(|o| o.vt.as_ticks()).collect();
    plain_vts.sort();
    delayed_vts.sort();
    for (p, d) in plain_vts.iter().zip(&delayed_vts) {
        assert_eq!(
            *d,
            p + 250_000,
            "the constant transmission-delay estimate shifts every output vt"
        );
    }
}

#[test]
fn same_engine_can_fail_and_recover_repeatedly() {
    let reference_outs = run_workload(two_engine_placement, paper_config, SENTENCES);

    let spec = fan_in_app(2).expect("valid app");
    let config = paper_config(&spec).with_checkpoint_every(1);
    let mut cluster =
        Cluster::deploy(spec.clone(), two_engine_placement(&spec), config).expect("deploys");
    let mut outs = Vec::new();
    for (i, (client, sentence)) in SENTENCES.iter().enumerate() {
        cluster
            .injector(client)
            .unwrap()
            .send(Value::from(*sentence));
        if i == 1 || i == 3 {
            // Fail the merger engine twice across the run; each promotion
            // must checkpoint-restore and replay cleanly (the single-failure
            // assumption allows repeated failures once recovery completes).
            std::thread::sleep(Duration::from_millis(30));
            outs.extend(cluster.take_outputs());
            cluster.kill(EngineId::new(1));
            cluster
                .promote(EngineId::new(1))
                .expect("promotion of a killed engine succeeds");
        }
    }
    cluster.finish_inputs();
    outs.extend(cluster.shutdown());
    let key = |outs: &[OutputRecord]| {
        let mut v: Vec<(u64, String)> = outs
            .iter()
            .map(|o| (o.vt.as_ticks(), o.payload.to_string()))
            .collect();
        v.sort();
        v
    };
    assert_eq!(
        key(&Cluster::dedup_outputs(outs)),
        key(&reference_outs),
        "two failures of the same engine stay invisible"
    );
}

#[test]
fn file_backed_log_survives_a_cold_restart() {
    let dir = std::env::temp_dir().join(format!("tart-cluster-log-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("external.log");

    // Run a workload with the external log on stable storage.
    let spec = fan_in_app(2).expect("valid app");
    let config = paper_config(&spec).with_log_file(&path);
    let cluster =
        Cluster::deploy(spec.clone(), two_engine_placement(&spec), config).expect("deploys");
    let mut stamped = Vec::new();
    for (client, sentence) in SENTENCES {
        let vt = cluster
            .injector(client)
            .unwrap()
            .send(Value::from(*sentence));
        stamped.push(vt);
    }
    cluster.finish_inputs();
    let outs = cluster.shutdown();
    assert_eq!(outs.len(), SENTENCES.len());

    // Cold restart: the process is gone; the log is recoverable from disk
    // with every timestamped external message intact (§II.E's stable
    // storage option).
    let recovered = tart_engine::MessageLog::recover(&path).expect("log recovers");
    assert_eq!(recovered.len(), SENTENCES.len());
    let wires: Vec<_> = spec.external_inputs().iter().map(|w| w.id()).collect();
    let mut replayed = 0;
    for wire in wires {
        for (vt, payload) in recovered.replay_from(wire, tart_vtime::VirtualTime::ZERO) {
            assert!(stamped.contains(&vt), "recovered stamp {vt} was issued");
            assert!(payload.as_str().is_some());
            replayed += 1;
        }
    }
    assert_eq!(replayed, SENTENCES.len());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn silence_policy_switches_live_without_a_fault() {
    // Start lazy, switch to curiosity mid-run (§II.G.4 allows this with no
    // determinism fault); behaviour must equal an all-curiosity run.
    let reference_outs = run_workload(two_engine_placement, paper_config, SENTENCES);

    let spec = fan_in_app(2).expect("valid app");
    let config = paper_config(&spec).with_silence(tart_silence::SilencePolicy::Lazy);
    let cluster =
        Cluster::deploy(spec.clone(), two_engine_placement(&spec), config).expect("deploys");
    for (client, sentence) in &SENTENCES[..3] {
        cluster
            .injector(client)
            .unwrap()
            .send(Value::from(*sentence));
    }
    cluster.set_silence_policy(tart_silence::SilencePolicy::Curiosity);
    for (client, sentence) in &SENTENCES[3..] {
        cluster
            .injector(client)
            .unwrap()
            .send(Value::from(*sentence));
    }
    cluster.finish_inputs();
    let outs = cluster.shutdown();
    let metrics = |outs: &[OutputRecord]| {
        let mut v: Vec<(u64, String)> = outs
            .iter()
            .map(|o| (o.vt.as_ticks(), o.payload.to_string()))
            .collect();
        v.sort();
        v
    };
    assert_eq!(
        metrics(&outs),
        metrics(&reference_outs),
        "switching silence policies changes nothing observable"
    );
}

#[test]
fn two_way_calls_work_through_the_cluster() {
    use std::sync::Arc;
    use tart_model::{CheckpointMode, Component, Ctx, RestoreError, Snapshot};
    use tart_vtime::{PortId, VirtualTime};

    struct Gateway;
    impl Component for Gateway {
        fn on_message(&mut self, _p: PortId, msg: &Value, ctx: &mut dyn Ctx) {
            // Two-way call to the pricing service, then forward the sum.
            let quote = ctx.call(PortId::new(1), msg.clone());
            let total = msg.as_i64().unwrap_or(0) + quote.as_i64().unwrap_or(0);
            ctx.send(PortId::new(2), Value::I64(total));
        }
        fn checkpoint(&mut self, _m: CheckpointMode, vt: VirtualTime) -> Snapshot {
            Snapshot::new(vt)
        }
        fn restore(&mut self, _s: &Snapshot) -> Result<(), RestoreError> {
            Ok(())
        }
    }
    struct Pricer;
    impl Component for Pricer {
        fn on_message(&mut self, _p: PortId, _m: &Value, _c: &mut dyn Ctx) {}
        fn on_call(&mut self, _p: PortId, req: &Value, ctx: &mut dyn Ctx) -> Value {
            ctx.tick_block(BlockId(0), 1);
            Value::I64(req.as_i64().unwrap_or(0) * 10)
        }
        fn checkpoint(&mut self, _m: CheckpointMode, vt: VirtualTime) -> Snapshot {
            Snapshot::new(vt)
        }
        fn restore(&mut self, _s: &Snapshot) -> Result<(), RestoreError> {
            Ok(())
        }
    }

    let mut b = tart_model::AppSpec::builder();
    let gw = b.component(
        "Gateway",
        Arc::new(|| Box::new(Gateway) as Box<dyn Component>),
    );
    let pricer = b.component(
        "Pricer",
        Arc::new(|| Box::new(Pricer) as Box<dyn Component>),
    );
    b.wire_in("orders", gw, PortId::new(0));
    b.wire(gw, PortId::new(1), pricer, PortId::new(0));
    b.wire_out(gw, PortId::new(2), "billing");
    let spec = b.build().expect("valid");
    // Calls must stay same-engine.
    let placement = Placement::single_engine(&spec);
    let cluster = Cluster::deploy(spec, placement, ClusterConfig::logical_time()).expect("deploys");
    for order in [3i64, 7, 11] {
        cluster.injector("orders").unwrap().send(Value::I64(order));
    }
    cluster.finish_inputs();
    let outs = cluster.shutdown();
    let mut totals: Vec<i64> = outs.iter().map(|o| o.payload.as_i64().unwrap()).collect();
    totals.sort();
    assert_eq!(totals, vec![33, 77, 121], "order + 10×order per request");
}
