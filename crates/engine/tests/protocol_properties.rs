//! Property tests of the recovery protocol, driven thread-free through the
//! public [`EngineCore`] stepping API.
//!
//! These are the paper's correctness claims as machine-checked properties:
//!
//! * delivery and output are independent of envelope interleaving
//!   (determinism, §II.D);
//! * checkpoint + replay from *any* prefix reproduces the original outputs
//!   exactly (§II.F);
//! * arbitrary duplication of data envelopes is absorbed (§II.F.4).

use crossbeam::channel::{unbounded, Receiver};
use proptest::prelude::*;
use tart_engine::{
    ClusterConfig, EngineCore, Envelope, FaultPlan, OutputRecord, Placement, ReplicaStore, Router,
};
use tart_estimator::EstimatorSpec;
use tart_model::reference::{self, fan_in_app};
use tart_model::{BlockId, Value};
use tart_vtime::{EngineId, VirtualTime, WireId};

fn vt(t: u64) -> VirtualTime {
    VirtualTime::from_ticks(t)
}

/// Builds a single-engine Fig 1 core plus its output drain.
fn build_core(checkpoint_every: u64) -> (EngineCore, Receiver<OutputRecord>, ReplicaStore) {
    let spec = fan_in_app(2).expect("valid");
    let placement = Placement::single_engine(&spec);
    let mut config = ClusterConfig::logical_time().with_checkpoint_every(checkpoint_every);
    for c in spec.components() {
        let est = if c.name().starts_with("Sender") {
            EstimatorSpec::per_iteration(reference::SENDER_LOOP_BLOCK, 61_000)
        } else {
            EstimatorSpec::per_iteration(BlockId(0), 400_000)
        };
        config = config.with_estimator(c.id(), est);
    }
    let replica = ReplicaStore::new();
    let (tx, rx) = unbounded();
    let core = EngineCore::new(
        EngineId::new(0),
        &spec,
        &placement,
        &config,
        Router::new(FaultPlan::none()),
        replica.clone(),
        tx,
    );
    (core, rx, replica)
}

/// One external message: (client index 0/1, timestamp, sentence).
type ExtMsg = (usize, u64, String);

/// Generates per-client monotone message streams.
fn arb_workload() -> impl Strategy<Value = Vec<ExtMsg>> {
    let word = prop_oneof![
        Just("cat"),
        Just("dog"),
        Just("the"),
        Just("ran"),
        Just("sat")
    ];
    let sentence = proptest::collection::vec(word, 1..6).prop_map(|w| w.join(" "));
    proptest::collection::vec((0usize..2, 1u64..1_000, sentence), 1..14).prop_map(|raw| {
        // Make timestamps strictly increasing per client.
        let mut clocks = [0u64; 2];
        raw.into_iter()
            .map(|(c, gap, s)| {
                clocks[c] += gap;
                (c, clocks[c], s)
            })
            .collect()
    })
}

/// Client wires of the Fig 1 single-engine deployment.
fn client_wires() -> [WireId; 2] {
    let spec = fan_in_app(2).expect("valid");
    let ins = spec.external_inputs();
    [ins[0].id(), ins[1].id()]
}

fn data_env(wire: WireId, ts: u64, prev: u64, sentence: &str) -> Envelope {
    Envelope::Data {
        wire,
        vt: vt(ts),
        prev_vt: vt(prev),
        payload: Value::from(sentence),
    }
}

/// Feeds a workload in a deterministic interleaving chosen by `seed`,
/// closing both wires with Eos; returns the output stream.
fn run_interleaved(workload: &[ExtMsg], seed: u64, checkpoint_every: u64) -> Vec<(u64, String)> {
    let (mut core, outputs, _replica) = build_core(checkpoint_every);
    let wires = client_wires();
    // Per-client envelope queues, preserving per-wire order.
    let mut queues: [Vec<Envelope>; 2] = [Vec::new(), Vec::new()];
    let mut prev = [0u64; 2];
    let mut last = [0u64; 2];
    for (client, ts, sentence) in workload {
        queues[*client].push(data_env(wires[*client], *ts, prev[*client], sentence));
        prev[*client] = *ts;
        last[*client] = *ts;
    }
    for (client, wire) in wires.iter().enumerate() {
        queues[client].push(Envelope::Eos {
            wire: *wire,
            last_data: vt(last[client]),
        });
    }
    // xorshift interleaver.
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut cursors = [0usize; 2];
    loop {
        let live: Vec<usize> = (0..2).filter(|&c| cursors[c] < queues[c].len()).collect();
        if live.is_empty() {
            break;
        }
        let pick = live[(next() % live.len() as u64) as usize];
        core.handle(queues[pick][cursors[pick]].clone());
        cursors[pick] += 1;
        core.pump();
    }
    core.pump();
    drop(core);
    outputs
        .try_iter()
        .map(|o| (o.vt.as_ticks(), o.payload.to_string()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Determinism: any arrival interleaving yields the identical output
    /// stream — order, virtual times and payloads.
    #[test]
    fn outputs_independent_of_interleaving(
        workload in arb_workload(),
        seed_a in any::<u64>(),
        seed_b in any::<u64>(),
    ) {
        let a = run_interleaved(&workload, seed_a, 1_000);
        let b = run_interleaved(&workload, seed_b, 1_000);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.len(), workload.len(), "one output per sentence");
    }

    /// Recovery: restoring from the replica at any checkpoint cadence and
    /// replaying the log reproduces the original outputs (modulo stutter,
    /// which dedups by timestamp).
    #[test]
    fn replay_from_checkpoint_reproduces_outputs(
        workload in arb_workload(),
        checkpoint_every in 1u64..6,
        seed in any::<u64>(),
    ) {
        // Original run, capturing the replica.
        let (mut core, outputs, replica) = build_core(checkpoint_every);
        let wires = client_wires();
        let mut prev = [0u64; 2];
        let mut last = [0u64; 2];
        let mut log: Vec<(usize, u64, u64, String)> = Vec::new();
        for (client, ts, sentence) in &workload {
            core.handle(data_env(wires[*client], *ts, prev[*client], sentence));
            core.pump();
            log.push((*client, *ts, prev[*client], sentence.clone()));
            prev[*client] = *ts;
            last[*client] = *ts;
        }
        for (client, wire) in wires.iter().enumerate() {
            core.handle(Envelope::Eos { wire: *wire, last_data: vt(last[client]) });
        }
        core.pump();
        drop(core);
        let original: Vec<(u64, String)> = outputs
            .try_iter()
            .map(|o| (o.vt.as_ticks(), o.payload.to_string()))
            .collect();

        // Crash after the full run; promote from the replica chain and
        // replay the external log.
        let (mut restored, outputs_b, _replica_b) = build_core(checkpoint_every);
        let chain = replica.chain();
        restored
            .restore(&chain, &replica.faults())
            .expect("restore verifies against recorded hashes");
        // The "cluster" serves each wire's replay request: everything in
        // the log from one past the checkpointed consumed watermark, with
        // the frame count of exactly that range (as the supervisor does).
        let consumed_floor = |wire: WireId| {
            chain
                .last()
                .and_then(|c| c.consumed.get(&wire))
                .map(|vt| vt.as_ticks())
                .unwrap_or(0)
        };
        let mut per_wire: [Vec<Envelope>; 2] = [Vec::new(), Vec::new()];
        for (client, ts, prev_ts, sentence) in &log {
            if *ts > consumed_floor(wires[*client]) {
                per_wire[*client].push(data_env(wires[*client], *ts, *prev_ts, sentence));
            }
        }
        for (client, wire) in wires.iter().enumerate() {
            let frames = per_wire[client].len() as u64;
            per_wire[client].push(Envelope::ReplayDone {
                wire: *wire,
                through: VirtualTime::MAX,
                frames,
            });
        }
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut cursors = [0usize; 2];
        loop {
            let live: Vec<usize> = (0..2).filter(|&c| cursors[c] < per_wire[c].len()).collect();
            if live.is_empty() {
                break;
            }
            let pick = live[(next() % live.len() as u64) as usize];
            restored.handle(per_wire[pick][cursors[pick]].clone());
            cursors[pick] += 1;
            restored.pump();
        }
        restored.pump();
        drop(restored);
        let replayed: Vec<(u64, String)> = outputs_b
            .try_iter()
            .map(|o| (o.vt.as_ticks(), o.payload.to_string()))
            .collect();

        // The replayed outputs must be a suffix of the original: everything
        // past the last checkpoint, byte-identical.
        prop_assert!(
            replayed.len() <= original.len(),
            "no phantom outputs: {} > {}",
            replayed.len(),
            original.len()
        );
        prop_assert_eq!(
            &original[original.len() - replayed.len()..],
            &replayed[..],
            "re-execution reproduces the post-checkpoint outputs exactly"
        );
    }

    /// Duplicate absorption: doubling every data envelope changes nothing.
    #[test]
    fn duplicated_data_is_absorbed(workload in arb_workload()) {
        let wires = client_wires();
        let run = |dup: bool| {
            let (mut core, outputs, _replica) = build_core(1_000);
            let mut prev = [0u64; 2];
            let mut last = [0u64; 2];
            for (client, ts, sentence) in &workload {
                let env = data_env(wires[*client], *ts, prev[*client], sentence);
                core.handle(env.clone());
                if dup {
                    core.handle(env);
                }
                core.pump();
                prev[*client] = *ts;
                last[*client] = *ts;
            }
            for (client, wire) in wires.iter().enumerate() {
                core.handle(Envelope::Eos { wire: *wire, last_data: vt(last[client]) });
            }
            core.pump();
            drop(core);
            outputs
                .try_iter()
                .map(|o| (o.vt.as_ticks(), o.payload.to_string()))
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(run(false), run(true));
    }
}

#[test]
fn silence_only_workload_produces_no_output() {
    let (mut core, outputs, _replica) = build_core(10);
    for wire in client_wires() {
        core.handle(Envelope::Silence {
            wire,
            through: vt(1_000_000),
            last_data: VirtualTime::ZERO,
        });
    }
    core.pump();
    drop(core);
    assert_eq!(outputs.try_iter().count(), 0);
}
