//! A genuinely distributed run: the Fig 1 application split across two
//! engine processes-worth of state, each with its own router, joined only
//! by real TCP sockets — the §III.C "actual multi-engine implementation"
//! shape, over an actual wire.
//!
//! The outputs must be identical to the single-process deployment of the
//! same workload: placement (and transport!) transparency.

// Test code: free to use wall clocks and hash maps (the determinism fence guards production code only).
#![allow(clippy::disallowed_methods)]

use std::time::{Duration, Instant};

use crossbeam::channel::unbounded;
use tart_engine::net::{remote_engine, TcpInbound};
use tart_engine::{
    Cluster, ClusterConfig, EngineCore, Envelope, FaultPlan, Flow, OutputRecord, Placement,
    ReplicaStore, Router,
};
use tart_estimator::EstimatorSpec;
use tart_model::reference::{self, fan_in_app};
use tart_model::{BlockId, Value};
use tart_vtime::{EngineId, VirtualTime, WireId};

fn paper_config(spec: &tart_model::AppSpec) -> ClusterConfig {
    let mut config = ClusterConfig::logical_time();
    for c in spec.components() {
        let est = if c.name().starts_with("Sender") {
            EstimatorSpec::per_iteration(reference::SENDER_LOOP_BLOCK, 61_000)
        } else {
            EstimatorSpec::per_iteration(BlockId(0), 400_000)
        };
        config = config.with_estimator(c.id(), est);
    }
    config
}

fn two_engine_placement(spec: &tart_model::AppSpec) -> Placement {
    let mut p = Placement::new();
    for c in spec.components() {
        let engine = if c.name() == "Merger" { 1 } else { 0 };
        p.assign(c.id(), EngineId::new(engine));
    }
    p
}

/// Timestamps mirror the in-process reference's logical clock, which steps
/// 1 ms per injected message across both clients.
const WORKLOAD: &[(usize, u64, &str)] = &[
    (0, 1_000_000, "the cat sat"),
    (1, 2_000_000, "on the mat"),
    (0, 3_000_000, "the cat saw the dog"),
    (1, 4_000_000, "the dog ran"),
    (0, 5_000_000, "cats and dogs"),
    (1, 6_000_000, "it rained cats"),
];

/// Runs an engine core on its own thread until drained.
fn spawn_engine(
    mut core: EngineCore,
    inbox: crossbeam::channel::Receiver<Envelope>,
) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        let mut draining = false;
        loop {
            match inbox.recv_timeout(Duration::from_micros(200)) {
                Ok(env) => match core.handle(env) {
                    Flow::Die => return,
                    Flow::Drain => draining = true,
                    Flow::Continue => {}
                },
                Err(crossbeam::channel::RecvTimeoutError::Timeout) => core.on_idle_tick(),
                Err(crossbeam::channel::RecvTimeoutError::Disconnected) => return,
            }
            core.pump();
            if draining && core.drain_step() {
                return;
            }
        }
    })
}

/// The reference: same workload through the ordinary in-process cluster.
fn single_process_reference() -> Vec<(u64, String)> {
    let spec = fan_in_app(2).expect("valid");
    let cluster = Cluster::deploy(
        spec.clone(),
        two_engine_placement(&spec),
        paper_config(&spec),
    )
    .expect("deploys");
    for (client, _ts, sentence) in WORKLOAD {
        cluster
            .injector(&format!("client{}", client + 1))
            .expect("injector")
            .send(Value::from(*sentence));
    }
    cluster.finish_inputs();
    let mut outs: Vec<(u64, String)> = cluster
        .shutdown()
        .into_iter()
        .map(|o| (o.vt.as_ticks(), o.payload.to_string()))
        .collect();
    outs.sort();
    outs
}

#[test]
fn fig1_over_real_tcp_matches_in_process_run() {
    let reference = single_process_reference();

    // --- "Host A": sender engine with its own router. -------------------
    let spec = fan_in_app(2).expect("valid");
    let placement = two_engine_placement(&spec);
    let config = paper_config(&spec);

    let router_a = Router::new(FaultPlan::none());
    let (a_tx, a_rx) = unbounded();
    router_a.register(EngineId::new(0), a_tx);
    let (outs_a_tx, _outs_a_rx) = unbounded::<OutputRecord>();
    let core_a = EngineCore::new(
        EngineId::new(0),
        &spec,
        &placement,
        &config,
        router_a.clone(),
        ReplicaStore::new(),
        outs_a_tx,
    );

    // --- "Host B": merger engine with its own router. --------------------
    let router_b = Router::new(FaultPlan::none());
    let (b_tx, b_rx) = unbounded();
    router_b.register(EngineId::new(1), b_tx);
    let (outs_b_tx, outs_b_rx) = unbounded::<OutputRecord>();
    let core_b = EngineCore::new(
        EngineId::new(1),
        &spec,
        &placement,
        &config,
        router_b.clone(),
        ReplicaStore::new(),
        outs_b_tx,
    );

    // --- The wire between the hosts: real TCP, both directions. ----------
    let inbound_b = TcpInbound::listen("127.0.0.1:0", router_b.clone()).expect("bind B");
    let inbound_a = TcpInbound::listen("127.0.0.1:0", router_a.clone()).expect("bind A");
    let _out_a_to_b =
        remote_engine(&router_a, EngineId::new(1), ("127.0.0.1", inbound_b.port())).expect("link");
    let _out_b_to_a =
        remote_engine(&router_b, EngineId::new(0), ("127.0.0.1", inbound_a.port())).expect("link");

    let engine_a = spawn_engine(core_a, a_rx);
    let engine_b = spawn_engine(core_b, b_rx);

    // --- External clients inject at host A (logged timestamps fixed). ----
    let client_wires: Vec<WireId> = spec.external_inputs().iter().map(|w| w.id()).collect();
    let mut prev = [0u64; 2];
    let mut last = [0u64; 2];
    for (client, ts, sentence) in WORKLOAD {
        router_a.send(
            EngineId::new(0),
            Envelope::Data {
                wire: client_wires[*client],
                vt: VirtualTime::from_ticks(*ts),
                prev_vt: VirtualTime::from_ticks(prev[*client]),
                payload: Value::from(*sentence),
            },
        );
        prev[*client] = *ts;
        last[*client] = *ts;
    }
    for (client, wire) in client_wires.iter().enumerate() {
        router_a.send(
            EngineId::new(0),
            Envelope::Eos {
                wire: *wire,
                last_data: VirtualTime::from_ticks(last[client]),
            },
        );
    }
    router_a.send(EngineId::new(0), Envelope::Drain);
    router_b.send(EngineId::new(1), Envelope::Drain);

    // --- Collect and compare. --------------------------------------------
    let deadline = Instant::now() + Duration::from_secs(20);
    let mut outs = Vec::new();
    while outs.len() < WORKLOAD.len() && Instant::now() < deadline {
        if let Ok(o) = outs_b_rx.recv_timeout(Duration::from_millis(50)) {
            outs.push((o.vt.as_ticks(), o.payload.to_string()));
        }
    }
    engine_a.join().expect("engine A drains");
    engine_b.join().expect("engine B drains");
    outs.sort();

    // The TCP deployment used explicit timestamps; the in-process reference
    // used the logical clock stepping 1 ms per send — the same values by
    // construction. Outputs must match exactly.
    assert_eq!(outs, reference, "TCP transport is behaviourally invisible");
}

#[test]
fn severed_tcp_link_reconnects_and_replay_restores_the_stream() {
    use tart_engine::net::{remote_engine_with, ReconnectPolicy};

    let reference = single_process_reference();

    let spec = fan_in_app(2).expect("valid");
    let placement = two_engine_placement(&spec);
    let config = paper_config(&spec);

    let router_a = Router::new(FaultPlan::none());
    let (a_tx, a_rx) = unbounded();
    router_a.register(EngineId::new(0), a_tx);
    let (outs_a_tx, _outs_a_rx) = unbounded::<OutputRecord>();
    let core_a = EngineCore::new(
        EngineId::new(0),
        &spec,
        &placement,
        &config,
        router_a.clone(),
        ReplicaStore::new(),
        outs_a_tx,
    );

    let router_b = Router::new(FaultPlan::none());
    let (b_tx, b_rx) = unbounded();
    router_b.register(EngineId::new(1), b_tx);
    let (outs_b_tx, outs_b_rx) = unbounded::<OutputRecord>();
    let core_b = EngineCore::new(
        EngineId::new(1),
        &spec,
        &placement,
        &config,
        router_b.clone(),
        ReplicaStore::new(),
        outs_b_tx,
    );

    let inbound_b = TcpInbound::listen("127.0.0.1:0", router_b.clone()).expect("bind B");
    let inbound_a = TcpInbound::listen("127.0.0.1:0", router_a.clone()).expect("bind A");
    let fast = ReconnectPolicy {
        initial_backoff: Duration::from_millis(5),
        max_backoff: Duration::from_millis(50),
        multiplier: 2.0,
        jitter: 0.5,
        max_attempts: 0,
    };
    let link_a_to_b = remote_engine_with(
        &router_a,
        EngineId::new(1),
        ("127.0.0.1", inbound_b.port()),
        fast,
    )
    .expect("link");
    // The reverse (replay-request) direction stays intact throughout.
    let _link_b_to_a =
        remote_engine(&router_b, EngineId::new(0), ("127.0.0.1", inbound_a.port())).expect("link");

    let engine_a = spawn_engine(core_a, a_rx);
    let engine_b = spawn_engine(core_b, b_rx);

    let client_wires: Vec<WireId> = spec.external_inputs().iter().map(|w| w.id()).collect();
    let mut prev = [0u64; 2];
    let mut last = [0u64; 2];
    let mut inject = |(client, ts, sentence): (usize, u64, &str)| {
        router_a.send(
            EngineId::new(0),
            Envelope::Data {
                wire: client_wires[client],
                vt: VirtualTime::from_ticks(ts),
                prev_vt: VirtualTime::from_ticks(prev[client]),
                payload: Value::from(sentence),
            },
        );
        prev[client] = ts;
        last[client] = ts;
    };

    // First third flows over the healthy link.
    for w in &WORKLOAD[..2] {
        inject(*w);
    }
    std::thread::sleep(Duration::from_millis(100));

    // Sever the A→B connection mid-run, inject while it is down (the
    // engine-A outputs toward the merger become in-transit loss), then wait
    // for the writer to notice and self-heal.
    inbound_b.sever_connections();
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut nudge = 0u64;
    while link_a_to_b.snapshot().reconnects == 0 && Instant::now() < deadline {
        if nudge < 2 {
            inject(WORKLOAD[2 + nudge as usize]);
            nudge += 1;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    for w in &WORKLOAD[2 + nudge as usize..4] {
        inject(*w);
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    while !link_a_to_b.snapshot().connected && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    let health = link_a_to_b.snapshot();
    assert!(health.connected, "A→B link must self-heal");
    assert!(health.reconnects >= 1, "reconnect must be counted");

    // Remainder (and end-of-stream) over the healed link. The merger's gap
    // detection sees the missing prev_vt chain and requests replay from
    // engine A's retention buffer.
    for w in &WORKLOAD[4..] {
        inject(*w);
    }
    for (client, wire) in client_wires.iter().enumerate() {
        router_a.send(
            EngineId::new(0),
            Envelope::Eos {
                wire: *wire,
                last_data: VirtualTime::from_ticks(last[client]),
            },
        );
    }

    // Collect the merger's outputs BEFORE draining engine A: recovering the
    // frames dropped during the outage needs A alive to answer the
    // merger's probe/replay traffic. Draining A first would be a race —
    // if A exits before the merger notices its gaps, the replay request
    // goes unanswered and the merger can never finish accounting. Replay
    // may stutter, so count *unique* outputs.
    let deadline = Instant::now() + Duration::from_secs(20);
    let mut outs = std::collections::BTreeSet::new();
    while outs.len() < WORKLOAD.len() && Instant::now() < deadline {
        if let Ok(o) = outs_b_rx.recv_timeout(Duration::from_millis(50)) {
            outs.insert((o.vt.as_ticks(), o.payload.to_string()));
        }
    }
    let outs: Vec<(u64, String)> = outs.into_iter().collect();

    // Assert before joining so a recovery failure reports a diff instead
    // of wedging the test on a drain that can never complete.
    assert_eq!(
        outs, reference,
        "a severed-and-healed TCP link must be invisible in the output stream"
    );

    router_a.send(EngineId::new(0), Envelope::Drain);
    router_b.send(EngineId::new(1), Envelope::Drain);
    engine_a.join().expect("engine A drains");
    engine_b.join().expect("engine B drains");
}
