//! Property tests of the crash-safe durability layer (§II.E's stable
//! storage, done properly):
//!
//! - [`EngineCheckpoint`] survives its canonical encoding exactly — the
//!   restart point is the bytes, so the bytes must be the checkpoint.
//! - No truncation of a WAL segment, at *any* byte offset, can surface a
//!   wrong record: recovery always yields a verified prefix of what was
//!   appended, and reports exactly the bytes it discarded.
//! - No single-byte corruption can either: the scan stops at the damaged
//!   frame and everything before it is intact.
//! - The checkpoint store's manifest is expendable — destroying it must
//!   never cost a generation, because the store rebuilds it from the
//!   checkpoint files themselves.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;
use tart_codec::{Decode, Encode};
use tart_engine::{CheckpointStore, DurabilityPolicy, EngineCheckpoint, FsyncPolicy, Wal};
use tart_model::{Snapshot, StateChunk, Value};
use tart_vtime::{ComponentId, EngineId, VirtualTime, WireId};

/// A scratch directory unique to this process *and* proptest case.
fn scratch(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("tart-durprop-{tag}-{}-{n}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn arb_vt() -> impl Strategy<Value = VirtualTime> {
    (0u64..u64::MAX / 2).prop_map(VirtualTime::from_ticks)
}

fn arb_payload() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i64>().prop_map(Value::I64),
        "[a-z ]{0,16}".prop_map(Value::from),
    ]
}

fn arb_chunk() -> impl Strategy<Value = StateChunk> {
    prop_oneof![
        proptest::collection::vec(any::<u8>(), 0..48).prop_map(StateChunk::Full),
        proptest::collection::vec(any::<u8>(), 0..48).prop_map(StateChunk::Delta),
    ]
}

fn arb_snapshot() -> impl Strategy<Value = Snapshot> {
    (
        arb_vt(),
        proptest::collection::btree_map("[a-z]{1,8}", arb_chunk(), 0..4),
    )
        .prop_map(|(vt, fields)| {
            let mut s = Snapshot::new(vt);
            for (k, c) in fields {
                s.put(&k, c);
            }
            s
        })
}

/// An [`EngineCheckpoint`] with every field populated arbitrarily,
/// including the retention capture that cold restart depends on.
fn arb_checkpoint() -> impl Strategy<Value = EngineCheckpoint> {
    (
        (
            0u32..64,
            0u64..1_000_000,
            proptest::collection::btree_map(0u32..64, arb_snapshot(), 0..3),
            proptest::collection::btree_map(0u32..64, arb_vt(), 0..3),
        ),
        (
            proptest::collection::btree_map(0u32..256, arb_vt(), 0..4),
            proptest::collection::btree_map(0u32..256, arb_vt(), 0..4),
            proptest::collection::btree_map(
                0u32..256,
                proptest::collection::vec((arb_vt(), arb_payload()), 0..4),
                0..3,
            ),
        ),
    )
        .prop_map(
            |((engine, seq, components, clocks), (consumed, sent, retention))| {
                let mut c = EngineCheckpoint::new(EngineId::new(engine), seq);
                c.components = components
                    .into_iter()
                    .map(|(k, v)| (ComponentId::new(k), v))
                    .collect();
                c.clocks = clocks
                    .into_iter()
                    .map(|(k, v)| (ComponentId::new(k), v))
                    .collect();
                c.consumed = consumed
                    .into_iter()
                    .map(|(k, v)| (WireId::new(k), v))
                    .collect();
                c.sent = sent.into_iter().map(|(k, v)| (WireId::new(k), v)).collect();
                c.retention = retention
                    .into_iter()
                    .map(|(k, v)| (WireId::new(k), v))
                    .collect();
                c
            },
        )
}

/// Forces every chunk full so the checkpoint persists as a self-contained
/// generation — the store refuses a delta with no full base, and
/// `load_latest` has full-only semantics. Seals it the way the live
/// checkpoint path does (self-contained members restart the seal chain),
/// since the store's loaders verify seals.
fn self_contained(mut c: EngineCheckpoint) -> EngineCheckpoint {
    for snap in c.components.values_mut() {
        let fields: Vec<(String, Vec<u8>)> = snap
            .iter()
            .map(|(k, chunk)| (k.to_owned(), chunk.bytes().to_vec()))
            .collect();
        for (k, bytes) in fields {
            snap.put(&k, StateChunk::Full(bytes));
        }
    }
    c.seal(&tart_model::StateHash::ZERO);
    c
}

/// Arbitrary WAL record bodies. Never empty: the WAL rejects empty bodies
/// by contract (`crc32(b"") == 0`, so an empty-record frame would be eight
/// zero bytes — indistinguishable from preallocation padding).
fn arb_records() -> impl Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..32), 1..10)
}

/// Writes `records` into a fresh single-segment WAL and returns the
/// segment file's path alongside the directory.
fn write_wal(dir: &PathBuf, records: &[Vec<u8>]) -> PathBuf {
    let mut wal = Wal::create(dir, u64::MAX, FsyncPolicy::Never).expect("create wal");
    for r in records {
        wal.append(r).expect("append");
    }
    wal.sync().expect("sync");
    drop(wal);
    std::fs::read_dir(dir)
        .expect("wal dir")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|x| x == "seg"))
        .expect("one segment")
}

proptest! {
    /// The checkpoint codec is exact: decode(encode(c)) == c for every
    /// field, including retention frames.
    #[test]
    fn checkpoint_round_trips(ckpt in arb_checkpoint()) {
        let bytes = ckpt.to_bytes();
        let back = EngineCheckpoint::from_bytes(&bytes).expect("well-formed bytes decode");
        prop_assert_eq!(back, ckpt);
    }

    /// Chopping the segment at every possible byte offset: recovery never
    /// invents or corrupts a record — it returns an exact prefix and
    /// accounts for every discarded byte.
    #[test]
    fn truncation_at_every_offset_yields_a_verified_prefix(records in arb_records()) {
        let dir = scratch("trunc");
        let seg = write_wal(&dir, &records);
        let full = std::fs::read(&seg).expect("segment bytes");

        for cut in 0..=full.len() {
            std::fs::write(&seg, &full[..cut]).expect("truncate copy");
            let (wal, recovery) =
                Wal::open(&dir, u64::MAX, FsyncPolicy::Never).expect("open truncated wal");
            drop(wal);
            prop_assert!(
                recovery.records.len() <= records.len(),
                "cut at {cut}: more records than written"
            );
            for (i, rec) in recovery.records.iter().enumerate() {
                prop_assert_eq!(rec, &records[i], "cut at {}: record {} corrupted", cut, i);
            }
            // Everything kept + everything discarded + any zero bytes kept
            // as preallocation padding is everything read. (An all-zero
            // tail is padding by contract, not a torn record: it is neither
            // counted as truncated nor kept past the WAL's clean-close trim
            // to its logical length.)
            let kept = std::fs::metadata(&seg).expect("meta").len();
            let accounted = kept + recovery.truncated_bytes;
            prop_assert!(
                accounted <= cut as u64,
                "cut at {cut}: recovery accounted for more bytes than exist"
            );
            prop_assert!(
                full[accounted as usize..cut].iter().all(|b| *b == 0),
                "cut at {cut}: unaccounted bytes must be all-zero padding"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Flipping a single byte anywhere in the segment: the CRC (or frame
    /// bounds) catch it, and recovery still yields an intact prefix.
    #[test]
    fn single_byte_corruption_never_surfaces_a_wrong_record(
        records in arb_records(),
        pos_seed in any::<u64>(),
        flip in 1u8..=255,
    ) {
        let dir = scratch("flip");
        let seg = write_wal(&dir, &records);
        let mut bytes = std::fs::read(&seg).expect("segment bytes");
        prop_assert!(!bytes.is_empty(), "at least one record means at least one frame");
        let pos = (pos_seed % bytes.len() as u64) as usize;
        bytes[pos] ^= flip;
        std::fs::write(&seg, &bytes).expect("write corrupted");

        let (wal, recovery) =
            Wal::open(&dir, u64::MAX, FsyncPolicy::Never).expect("open corrupted wal");
        drop(wal);
        prop_assert!(recovery.records.len() < records.len(), "damage must drop something");
        for (i, rec) in recovery.records.iter().enumerate() {
            prop_assert_eq!(rec, &records[i], "record {} corrupted by unrelated flip", i);
        }
        prop_assert!(recovery.truncated_bytes > 0, "discarded bytes must be reported");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Tearing a mixed-lane group-commit tail at any offset past the last
    /// strict record: every Strict append survives (its fsync pinned it and
    /// every record staged before it), no record is ever surfaced twice,
    /// and recovered records keep append order. This is the torn-tail half
    /// of the tiered-durability contract (DURABILITY.md: Strict loss == 0,
    /// Buffered loss confined to the unsynced tail).
    #[test]
    fn torn_mixed_lane_tail_never_loses_strict_or_duplicates_buffered(
        lanes in proptest::collection::vec(any::<bool>(), 1..24),
        cut_seed in any::<u64>(),
    ) {
        let dir = scratch("mixed");
        let buffered = DurabilityPolicy::Buffered {
            flush_window: std::time::Duration::from_secs(3600),
        };
        let mut bodies = Vec::new();
        {
            let mut wal = Wal::create(&dir, u64::MAX, FsyncPolicy::Never).expect("create wal");
            for (i, strict) in lanes.iter().enumerate() {
                let body = if *strict {
                    format!("s-{i:03}").into_bytes()
                } else {
                    format!("b-{i:03}").into_bytes()
                };
                let tier = if *strict { DurabilityPolicy::Strict } else { buffered };
                wal.append_lane(&body, tier).expect("append_lane");
                bodies.push(body);
            }
            // Drop (clean close) flushes the open buffered window to the
            // kernel *unsynced* — the on-disk image models a process that
            // wrote its tail but never got the fsync out.
        }
        let seg = std::fs::read_dir(&dir)
            .expect("wal dir")
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .find(|p| p.extension().is_some_and(|x| x == "seg"))
            .expect("one segment");
        let full = std::fs::read(&seg).expect("segment bytes");

        // Frame-walk to the end of the last Strict body: its fsync made
        // everything up to and including it durable (buffered records
        // staged before a strict append ride the same synced job), so a
        // real crash can only tear *after* this point.
        let mut safe_end = 0usize;
        let mut off = 0usize;
        while off + 8 <= full.len() {
            let len = u32::from_be_bytes(full[off..off + 4].try_into().unwrap()) as usize;
            let crc = u32::from_be_bytes(full[off + 4..off + 8].try_into().unwrap());
            if len == 0 && crc == 0 {
                break; // preallocation padding
            }
            let body_end = off + 8 + len;
            if body_end > full.len() {
                break;
            }
            if full[off + 8..body_end].starts_with(b"s-") {
                safe_end = body_end;
            }
            off = body_end;
        }

        let span = full.len() - safe_end;
        let cut = safe_end + (cut_seed % (span as u64 + 1)) as usize;
        std::fs::write(&seg, &full[..cut]).expect("tear tail");

        let (wal, recovery) =
            Wal::open(&dir, u64::MAX, FsyncPolicy::Never).expect("open torn wal");
        drop(wal);

        let mut seen = std::collections::BTreeSet::new();
        for rec in &recovery.records {
            prop_assert!(seen.insert(rec.clone()), "record surfaced twice: {:?}", rec);
            prop_assert!(bodies.contains(rec), "recovered a record never appended");
        }
        // Append order is preserved: recovered records appear in the same
        // relative order they were appended in.
        let mut last = None;
        for rec in &recovery.records {
            let idx = bodies.iter().position(|b| b == rec).expect("known body");
            prop_assert!(last.is_none_or(|l| idx > l), "append order violated");
            last = Some(idx);
        }
        // Every Strict body survives the tear.
        for (i, body) in bodies.iter().enumerate() {
            if lanes[i] {
                prop_assert!(
                    recovery.records.contains(body),
                    "strict record {} lost by a tear at {}", i, cut
                );
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// The manifest is a cache, not the truth: overwrite it with garbage
    /// (or delete it) and every persisted generation is still loadable.
    #[test]
    fn manifest_corruption_never_costs_a_generation(
        ckpts in proptest::collection::vec(arb_checkpoint(), 1..4),
        garbage in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let dir = scratch("manifest");
        let store = CheckpointStore::open(&dir).expect("open store");
        let mut newest = std::collections::BTreeMap::new();
        for c in &ckpts {
            let c = self_contained(c.clone());
            let generation = store.persist(&c).expect("persist");
            newest.insert(c.engine, (generation, c));
        }
        drop(store);
        std::fs::write(dir.join("MANIFEST"), &garbage).expect("corrupt manifest");

        let store = CheckpointStore::open(&dir).expect("reopen rebuilds from listing");
        for (engine, (generation, ckpt)) in newest {
            let loaded = store
                .load_latest(engine)
                .expect("load after manifest loss")
                .expect("generation still present");
            prop_assert_eq!(loaded.generation, generation);
            prop_assert!(!loaded.fell_back);
            prop_assert_eq!(loaded.checkpoint, ckpt);
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
