//! Warm-standby failover end-to-end: the LLFT-style standby plane keeps a
//! passive core pre-applied to within the trailing horizon, promotion takes
//! over from it in bounded time, and every degraded path — stale standby,
//! hash-diverged standby, mistimed promotion — falls back to the cold
//! hash-verified drill without losing byte-identical convergence.

// Test code: free to use wall clocks (the determinism fence guards production code only).
#![allow(clippy::disallowed_methods)]

use std::time::{Duration, Instant};

use tart_engine::{Cluster, ClusterConfig, OutputRecord, Placement, PromoteError, StandbyConfig};
use tart_estimator::EstimatorSpec;
use tart_model::reference::{self, fan_in_app};
use tart_model::{AppSpec, BlockId, Value};
use tart_vtime::EngineId;

const SENTENCES: &[(&str, &str)] = &[
    ("client1", "alpha beta gamma"),
    ("client2", "beta gamma delta"),
    ("client1", "gamma delta epsilon"),
    ("client2", "delta epsilon alpha"),
    ("client1", "epsilon alpha beta"),
    ("client2", "alpha beta gamma delta"),
    ("client1", "beta delta"),
    ("client2", "gamma epsilon alpha beta"),
];

fn paper_config(spec: &AppSpec) -> ClusterConfig {
    let mut config = ClusterConfig::logical_time().with_checkpoint_every(1);
    for c in spec.components() {
        let est = if c.name().starts_with("Sender") {
            EstimatorSpec::per_iteration(reference::SENDER_LOOP_BLOCK, 61_000)
        } else {
            EstimatorSpec::per_iteration(BlockId(0), 400_000)
        };
        config = config.with_estimator(c.id(), est);
    }
    config
}

/// A tight standby: one-tick horizon, millisecond apply cadence, so the
/// plane catches up as fast as checkpoints stream.
fn tight_standby() -> StandbyConfig {
    StandbyConfig {
        trailing_horizon_ticks: 1,
        apply_interval: Duration::from_millis(1),
    }
}

fn two_engine_placement(spec: &AppSpec) -> Placement {
    let mut p = Placement::new();
    for c in spec.components() {
        let engine = if c.name() == "Merger" { 1 } else { 0 };
        p.assign(c.id(), EngineId::new(engine));
    }
    p
}

fn normalize(outputs: Vec<OutputRecord>) -> Vec<(u64, String)> {
    Cluster::dedup_outputs(outputs)
        .into_iter()
        .map(|o| (o.vt.as_ticks(), o.payload.to_string()))
        .collect()
}

fn failure_free_run() -> Vec<(u64, String)> {
    let spec = fan_in_app(2).expect("valid app");
    let cluster = Cluster::deploy(
        spec.clone(),
        two_engine_placement(&spec),
        paper_config(&spec),
    )
    .expect("deploys");
    for (client, sentence) in SENTENCES {
        cluster
            .injector(client)
            .expect("injector")
            .send(Value::from(*sentence));
    }
    cluster.finish_inputs();
    normalize(cluster.shutdown())
}

/// Polls `cluster.standby_status` until `pred` holds (or panics after 5 s).
fn await_standby(
    cluster: &Cluster,
    engine: EngineId,
    what: &str,
    pred: impl Fn(&tart_engine::StandbyStatus) -> bool,
) -> tart_engine::StandbyStatus {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        if let Some(s) = cluster.standby_status(engine) {
            if pred(&s) {
                return s;
            }
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting for standby {engine} to become {what}: {:?}",
            cluster.standby_status(engine)
        );
        std::thread::sleep(Duration::from_millis(2));
    }
}

#[test]
fn warm_promotion_takes_over_from_the_standby() {
    let reference_outs = failure_free_run();

    let spec = fan_in_app(2).expect("valid app");
    let config = paper_config(&spec).with_warm_standby(tight_standby());
    let mut cluster =
        Cluster::deploy(spec.clone(), two_engine_placement(&spec), config).expect("deploys");
    let merger = EngineId::new(1);

    for (client, sentence) in &SENTENCES[..4] {
        cluster
            .injector(client)
            .expect("injector")
            .send(Value::from(*sentence));
    }
    // The standby must anchor on the merger's first full checkpoint and
    // pre-apply members as later captures push the head past the one-tick
    // horizon.
    let status = await_standby(&cluster, merger, "anchored", |s| {
        s.anchored && s.applied >= 1
    });
    assert!(!status.demoted);

    cluster.kill(merger);
    cluster
        .promote(merger)
        .expect("promotion of a killed engine succeeds");

    for (client, sentence) in &SENTENCES[4..] {
        cluster
            .injector(client)
            .expect("injector")
            .send(Value::from(*sentence));
    }
    cluster.finish_inputs();

    let snap = cluster.obs_snapshot();
    assert_eq!(snap.warm_promotions, 1, "promotion rode the warm path");
    assert_eq!(snap.cold_promotions, 0);
    assert!(snap.standby_applied >= 1, "pre-applies were counted");
    assert!(
        snap.standby_lag_ticks.count() >= 1,
        "each pre-apply records its lag behind the head"
    );
    assert_eq!(snap.promotion_latency_ns.count(), 1);
    assert_eq!(snap.standby_demotions, 0);
    assert_eq!(
        snap.divergences_detected, 0,
        "a clean warm takeover verifies without divergence"
    );

    assert_eq!(
        normalize(cluster.shutdown()),
        reference_outs,
        "warm promotion must stay byte-identical to the failure-free run"
    );
}

#[test]
fn diverged_standby_is_demoted_and_cold_path_converges() {
    let reference_outs = failure_free_run();

    let spec = fan_in_app(2).expect("valid app");
    let config = paper_config(&spec).with_warm_standby(tight_standby());
    let mut cluster =
        Cluster::deploy(spec.clone(), two_engine_placement(&spec), config).expect("deploys");
    let merger = EngineId::new(1);

    for (client, sentence) in &SENTENCES[..4] {
        cluster
            .injector(client)
            .expect("injector")
            .send(Value::from(*sentence));
    }
    await_standby(&cluster, merger, "anchored", |s| {
        s.anchored && s.applied >= 1
    });

    // Seed the divergence: the next member the standby applies carries a
    // tampered digest, modelling a standby whose memory went bad. The
    // authoritative replica chain is untouched.
    assert!(cluster.corrupt_standby(merger), "standby plane is running");
    for (client, sentence) in &SENTENCES[4..] {
        cluster
            .injector(client)
            .expect("injector")
            .send(Value::from(*sentence));
    }
    let status = await_standby(&cluster, merger, "demoted", |s| s.demoted);
    assert!(
        !status.anchored,
        "a demoted slot holds no takeover candidate"
    );

    cluster.kill(merger);
    cluster
        .promote(merger)
        .expect("cold fallback promotion succeeds");
    cluster.finish_inputs();

    let snap = cluster.obs_snapshot();
    assert_eq!(snap.standby_demotions, 1, "the divergence demoted the slot");
    assert_eq!(
        snap.warm_promotions, 0,
        "a demoted standby must never be promoted warm"
    );
    assert_eq!(
        snap.cold_promotions, 1,
        "promotion fell back to cold replay"
    );
    assert!(
        snap.divergences_detected >= 1,
        "the tampered digest surfaced as a recorded divergence"
    );

    assert_eq!(
        normalize(cluster.shutdown()),
        reference_outs,
        "recovery around a demoted standby must still converge byte-identically"
    );
}

#[test]
fn kill_during_catch_up_falls_back_cold_and_converges() {
    let reference_outs = failure_free_run();

    // The default ~100 ms virtual-time horizon dwarfs this workload's
    // timeline: every streamed checkpoint is still inside the horizon when
    // the kill lands, so the standby holds pending members it never applied
    // — the mid-catch-up shape.
    let spec = fan_in_app(2).expect("valid app");
    let config = paper_config(&spec).with_warm_standby(StandbyConfig::default());
    let mut cluster =
        Cluster::deploy(spec.clone(), two_engine_placement(&spec), config).expect("deploys");
    let merger = EngineId::new(1);

    for (client, sentence) in &SENTENCES[..4] {
        cluster
            .injector(client)
            .expect("injector")
            .send(Value::from(*sentence));
    }
    await_standby(&cluster, merger, "receiving the stream", |s| s.pending >= 1);

    cluster.kill(merger);
    cluster
        .promote(merger)
        .expect("promotion of a killed engine succeeds");
    for (client, sentence) in &SENTENCES[4..] {
        cluster
            .injector(client)
            .expect("injector")
            .send(Value::from(*sentence));
    }
    cluster.finish_inputs();

    let snap = cluster.obs_snapshot();
    assert_eq!(
        snap.warm_promotions, 0,
        "an unanchored standby is not a takeover candidate"
    );
    assert_eq!(snap.cold_promotions, 1);
    assert_eq!(snap.standby_demotions, 0, "catch-up lag is not divergence");
    assert_eq!(snap.divergences_detected, 0);

    assert_eq!(
        normalize(cluster.shutdown()),
        reference_outs,
        "killing mid-catch-up must still converge via the cold path"
    );
}

#[test]
fn mistimed_promotion_is_a_structured_error_not_a_panic() {
    let spec = fan_in_app(2).expect("valid app");
    let config = paper_config(&spec).with_warm_standby(tight_standby());
    let mut cluster =
        Cluster::deploy(spec.clone(), two_engine_placement(&spec), config).expect("deploys");

    // A supervisor racing a live engine must degrade gracefully: the error
    // names the engine and the cluster keeps running.
    match cluster.promote(EngineId::new(1)) {
        Err(PromoteError::EngineStillAlive(e)) => assert_eq!(e, EngineId::new(1)),
        other => panic!("promoting a live engine must be rejected, got {other:?}"),
    }
    match cluster.promote(EngineId::new(77)) {
        Err(PromoteError::UnknownEngine(e)) => assert_eq!(e, EngineId::new(77)),
        other => panic!("promoting an undeployed engine must be rejected, got {other:?}"),
    }

    // The rejected promotions poisoned nothing: the workload still runs to
    // completion, failure drills included.
    for (client, sentence) in SENTENCES {
        cluster
            .injector(client)
            .expect("injector")
            .send(Value::from(*sentence));
    }
    cluster.finish_inputs();
    assert_eq!(normalize(cluster.shutdown()), failure_free_run());
}

#[test]
fn standby_status_is_absent_without_the_plane() {
    let spec = fan_in_app(2).expect("valid app");
    let cluster = Cluster::deploy(
        spec.clone(),
        two_engine_placement(&spec),
        paper_config(&spec),
    )
    .expect("deploys");
    assert_eq!(cluster.standby_status(EngineId::new(1)), None);
    assert!(!cluster.corrupt_standby(EngineId::new(1)));
    cluster.finish_inputs();
    let _ = cluster.shutdown();
}
