//! Property tests of the TCP frame codec: every envelope kind round-trips
//! through `write_frame`/`read_frame` (and batches of them through
//! `write_batch`/`read_batch`), and *no* truncation of a valid frame can
//! ever decode into a wrong envelope — the reader either reports a torn
//! frame (`UnexpectedEof`), corruption (`InvalidData`), or a clean EOF at a
//! frame boundary. A batch shares one CRC, so damage anywhere rejects
//! *every* envelope in it.

use std::io::ErrorKind;

use bytes::BytesMut;
use proptest::prelude::*;
use tart_engine::net::{read_batch, read_frame, write_batch, write_frame};
use tart_engine::Envelope;
use tart_estimator::EstimatorSpec;
use tart_model::{BlockId, Value};
use tart_silence::SilencePolicy;
use tart_vtime::{ComponentId, EngineId, VirtualDuration, VirtualTime, WireId};

fn arb_vt() -> impl Strategy<Value = VirtualTime> {
    (0u64..u64::MAX / 2).prop_map(VirtualTime::from_ticks)
}

fn arb_wire() -> impl Strategy<Value = WireId> {
    (0u32..1_000).prop_map(WireId::new)
}

fn arb_payload() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i64>().prop_map(Value::I64),
        "[a-z ]{0,24}".prop_map(Value::from),
        (any::<i64>(), "[a-z]{1,8}")
            .prop_map(|(n, s)| Value::map([("n", Value::I64(n)), ("s", Value::from(s)),])),
    ]
}

fn arb_policy() -> impl Strategy<Value = SilencePolicy> {
    prop_oneof![
        Just(SilencePolicy::Lazy),
        Just(SilencePolicy::Curiosity),
        (1u64..1_000_000).prop_map(|us| SilencePolicy::Aggressive {
            max_quiet: VirtualDuration::from_micros(us),
        }),
    ]
}

fn arb_estimator() -> impl Strategy<Value = EstimatorSpec> {
    prop_oneof![
        (0u16..16, 1u64..1_000_000)
            .prop_map(|(b, per)| EstimatorSpec::per_iteration(BlockId(b), per)),
        (1u64..1_000_000).prop_map(|us| EstimatorSpec::constant(VirtualDuration::from_micros(us))),
    ]
}

/// Every [`Envelope`] variant, with arbitrary field values.
fn arb_envelope() -> impl Strategy<Value = Envelope> {
    prop_oneof![
        (arb_wire(), arb_vt(), arb_vt(), arb_payload()).prop_map(|(wire, vt, prev_vt, payload)| {
            Envelope::Data {
                wire,
                vt,
                prev_vt,
                payload,
            }
        }),
        (arb_wire(), arb_vt(), arb_vt()).prop_map(|(wire, through, last_data)| {
            Envelope::Silence {
                wire,
                through,
                last_data,
            }
        }),
        (arb_wire(), arb_vt()).prop_map(|(wire, needed_through)| Envelope::Probe {
            wire,
            needed_through,
        }),
        (arb_wire(), arb_vt()).prop_map(|(wire, from)| Envelope::ReplayRequest { wire, from }),
        (arb_wire(), arb_vt(), any::<u64>()).prop_map(|(wire, through, frames)| {
            Envelope::ReplayDone {
                wire,
                through,
                frames,
            }
        }),
        (arb_wire(), arb_vt()).prop_map(|(wire, through)| Envelope::TrimAck { wire, through }),
        Just(Envelope::Checkpoint),
        Just(Envelope::Die),
        Just(Envelope::Drain),
        arb_policy().prop_map(|policy| Envelope::SetSilencePolicy { policy }),
        (arb_wire(), arb_vt()).prop_map(|(wire, last_data)| Envelope::Eos { wire, last_data }),
        (0u32..64, arb_estimator()).prop_map(|(c, spec)| Envelope::Recalibrate {
            component: ComponentId::new(c),
            spec,
        }),
        (0u32..16, any::<u64>()).prop_map(|(e, seq)| Envelope::Heartbeat {
            engine: EngineId::new(e),
            seq,
        }),
    ]
}

/// A batch of envelopes with arbitrary per-envelope targets.
fn arb_batch() -> impl Strategy<Value = Vec<(EngineId, Envelope)>> {
    proptest::collection::vec(
        ((0u32..1_000).prop_map(EngineId::new), arb_envelope()),
        0..8,
    )
}

proptest! {
    /// Any envelope to any target round-trips through a frame intact.
    #[test]
    fn frames_round_trip(target in 0u32..1_000, env in arb_envelope()) {
        let target = EngineId::new(target);
        let mut buf = Vec::new();
        write_frame(&mut buf, target, &env).expect("write to memory");
        let mut cursor = &buf[..];
        let decoded = read_frame(&mut cursor).expect("valid frame decodes");
        prop_assert_eq!(decoded, Some((target, env)));
        prop_assert_eq!(read_frame(&mut cursor).expect("clean tail"), None);
    }

    /// Truncating a frame at *every* byte offset yields a clean EOF (cut at
    /// the frame boundary), `UnexpectedEof` (torn mid-frame) or
    /// `InvalidData` — never `Ok(Some(_))` with a wrong envelope.
    #[test]
    fn truncation_never_yields_a_wrong_envelope(
        target in 0u32..1_000,
        env in arb_envelope(),
    ) {
        let target = EngineId::new(target);
        let mut buf = Vec::new();
        write_frame(&mut buf, target, &env).expect("write to memory");
        for cut in 0..buf.len() {
            let mut cursor = &buf[..cut];
            match read_frame(&mut cursor) {
                Ok(None) => prop_assert_eq!(cut, 0, "clean EOF only at the boundary"),
                Ok(Some(decoded)) => prop_assert!(
                    false,
                    "truncation at {cut}/{} decoded {decoded:?}",
                    buf.len()
                ),
                Err(e) => prop_assert!(
                    matches!(e.kind(), ErrorKind::UnexpectedEof | ErrorKind::InvalidData),
                    "unexpected error kind {:?} at cut {cut}",
                    e.kind()
                ),
            }
        }
    }

    /// Flipping any single byte of a frame is detected (CRC or decode),
    /// except in the length prefix where the flip may legitimately turn the
    /// frame into a longer one that then reads as torn.
    #[test]
    fn corruption_is_detected(
        target in 0u32..1_000,
        env in arb_envelope(),
        flip_byte in any::<u8>(),
        pos_seed in any::<u64>(),
    ) {
        let target = EngineId::new(target);
        let mut buf = Vec::new();
        write_frame(&mut buf, target, &env).expect("write to memory");
        let pos = (pos_seed % buf.len() as u64) as usize;
        let flip = if flip_byte == 0 { 0xff } else { flip_byte };
        buf[pos] ^= flip;
        let mut cursor = &buf[..];
        match read_frame(&mut cursor) {
            Ok(Some(decoded)) => prop_assert!(
                false,
                "corrupt frame (byte {pos} ^ {flip:#04x}) decoded {decoded:?}"
            ),
            Ok(None) => prop_assert!(false, "corrupt frame read as clean EOF"),
            Err(e) => prop_assert!(
                matches!(e.kind(), ErrorKind::UnexpectedEof | ErrorKind::InvalidData),
                "unexpected error kind {:?}",
                e.kind()
            ),
        }
    }

    /// A batch of N envelopes round-trips through one batch frame intact —
    /// order, targets and payloads all preserved. An empty batch writes
    /// nothing at all.
    #[test]
    fn batches_round_trip(batch in arb_batch()) {
        let mut buf = Vec::new();
        let mut scratch = BytesMut::new();
        write_batch(&mut buf, &batch, &mut scratch).expect("write to memory");
        if batch.is_empty() {
            prop_assert!(buf.is_empty(), "empty batch must touch nothing");
        } else {
            let mut cursor = &buf[..];
            let decoded = read_batch(&mut cursor).expect("valid batch decodes");
            prop_assert_eq!(decoded, Some(batch));
            prop_assert_eq!(read_batch(&mut cursor).expect("clean tail"), None);
        }
    }

    /// Truncating a batch frame at *every* byte offset yields a clean EOF
    /// (cut at the boundary), `UnexpectedEof`, or `InvalidData` — never a
    /// partial batch.
    #[test]
    fn batch_truncation_never_yields_envelopes(batch in arb_batch()) {
        let mut buf = Vec::new();
        let mut scratch = BytesMut::new();
        write_batch(&mut buf, &batch, &mut scratch).expect("write to memory");
        for cut in 0..buf.len() {
            let mut cursor = &buf[..cut];
            match read_batch(&mut cursor) {
                Ok(None) => prop_assert_eq!(cut, 0, "clean EOF only at the boundary"),
                Ok(Some(decoded)) => prop_assert!(
                    false,
                    "truncation at {cut}/{} yielded {} envelopes",
                    buf.len(),
                    decoded.len()
                ),
                Err(e) => prop_assert!(
                    matches!(e.kind(), ErrorKind::UnexpectedEof | ErrorKind::InvalidData),
                    "unexpected error kind {:?} at cut {cut}",
                    e.kind()
                ),
            }
        }
    }

    /// One flipped byte anywhere in a batch frame rejects the *whole*
    /// batch: the single CRC covers every envelope, so no prefix of the
    /// batch may survive the damage.
    #[test]
    fn batch_corruption_rejects_every_envelope(
        batch in arb_batch(),
        flip_byte in any::<u8>(),
        pos_seed in any::<u64>(),
    ) {
        if batch.is_empty() {
            return; // nothing on the wire to corrupt
        }
        let mut buf = Vec::new();
        let mut scratch = BytesMut::new();
        write_batch(&mut buf, &batch, &mut scratch).expect("write to memory");
        let pos = (pos_seed % buf.len() as u64) as usize;
        let flip = if flip_byte == 0 { 0xff } else { flip_byte };
        buf[pos] ^= flip;
        let mut cursor = &buf[..];
        match read_batch(&mut cursor) {
            Ok(Some(decoded)) => prop_assert!(
                false,
                "corrupt batch (byte {pos} ^ {flip:#04x}) yielded {} envelopes",
                decoded.len()
            ),
            Ok(None) => prop_assert!(false, "corrupt batch read as clean EOF"),
            Err(e) => prop_assert!(
                matches!(e.kind(), ErrorKind::UnexpectedEof | ErrorKind::InvalidData),
                "unexpected error kind {:?}",
                e.kind()
            ),
        }
    }
}
