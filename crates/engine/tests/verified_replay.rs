//! Verified replay end-to-end (DESIGN.md §15): seeded state corruption is
//! **detected** — not silently resumed — and recovery still converges.
//!
//! The drill models the failure the chain seal cannot catch on its own:
//! recorded checkpoint metadata that is internally consistent (CRC valid,
//! seals recomputed) but no longer matches what deterministic replay
//! reproduces — the on-disk signature of a nondeterministic original run
//! or of memory corruption that was checkpointed before crashing. The
//! cluster must raise a structured divergence (counter + timeline event +
//! flight dump), discard the divergent suffix, and reconverge from the
//! longest verified prefix; the offline bisector must name the first
//! divergent member and virtual time.

// Test code: free to use wall clocks (the determinism fence guards production code only).
#![allow(clippy::disallowed_methods)]

use std::path::{Path, PathBuf};
use std::time::Duration;

use tart_codec::{crc32, Encode};
use tart_engine::{
    verify_replay, CheckpointStore, Cluster, ClusterConfig, EngineCheckpoint, FsyncPolicy,
    OutputRecord, Placement, ReplayVerdict,
};
use tart_estimator::EstimatorSpec;
use tart_model::reference::{self, fan_in_app};
use tart_model::{AppSpec, BlockId, Value};
use tart_vtime::{EngineId, VirtualTime};

const SENTENCES: &[(&str, &str)] = &[
    ("client1", "alpha beta gamma"),
    ("client2", "beta gamma delta"),
    ("client1", "gamma delta epsilon"),
    ("client2", "delta epsilon alpha"),
    ("client1", "epsilon alpha beta"),
    ("client2", "alpha beta gamma delta"),
    ("client1", "beta delta"),
    ("client2", "gamma epsilon alpha beta"),
];

fn paper_config(spec: &AppSpec) -> ClusterConfig {
    let mut config = ClusterConfig::logical_time();
    for c in spec.components() {
        let est = if c.name().starts_with("Sender") {
            EstimatorSpec::per_iteration(reference::SENDER_LOOP_BLOCK, 61_000)
        } else {
            EstimatorSpec::per_iteration(BlockId(0), 400_000)
        };
        config = config.with_estimator(c.id(), est);
    }
    config
}

fn two_engine_placement(spec: &AppSpec) -> Placement {
    let mut p = Placement::new();
    for c in spec.components() {
        let engine = if c.name() == "Merger" { 1 } else { 0 };
        p.assign(c.id(), EngineId::new(engine));
    }
    p
}

fn normalize(outputs: Vec<OutputRecord>) -> Vec<(u64, String)> {
    Cluster::dedup_outputs(outputs)
        .into_iter()
        .map(|o| (o.vt.as_ticks(), o.payload.to_string()))
        .collect()
}

fn failure_free_run() -> Vec<(u64, String)> {
    let spec = fan_in_app(2).expect("valid app");
    let cluster = Cluster::deploy(
        spec.clone(),
        two_engine_placement(&spec),
        paper_config(&spec),
    )
    .expect("deploys");
    for (client, sentence) in SENTENCES {
        cluster
            .injector(client)
            .expect("injector")
            .send(Value::from(*sentence));
    }
    cluster.finish_inputs();
    normalize(cluster.shutdown())
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tart-vreplay-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Drives six sentences in three checkpointed strides so engine 0's durable
/// chain has the shape `[full, delta, delta]`, then crashes the cluster.
fn run_and_crash(dir: &Path) -> Vec<OutputRecord> {
    let spec = fan_in_app(2).expect("valid app");
    // Manual checkpoint cadence (the huge `checkpoint_every` never fires on
    // its own) with a full only every 4th capture: three strides give one
    // full plus two deltas per engine.
    let config = paper_config(&spec)
        .with_checkpoint_every(100_000)
        .with_durability(dir, FsyncPolicy::Always)
        .with_full_checkpoint_every(4);
    let cluster =
        Cluster::deploy(spec.clone(), two_engine_placement(&spec), config).expect("deploys");
    for chunk in SENTENCES[..6].chunks(2) {
        for (client, sentence) in chunk {
            cluster
                .injector(client)
                .expect("injector")
                .send(Value::from(*sentence));
        }
        // Let the sends land so each checkpoint captures real progress
        // (an empty delta is re-captured as a full, changing the shape).
        std::thread::sleep(Duration::from_millis(250));
        for engine in cluster.engine_ids() {
            cluster.checkpoint_now(engine);
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    cluster.crash()
}

/// On-disk checkpoint file name, mirroring the store's naming scheme.
fn ckpt_path(dir: &Path, engine: u32, generation: u64, is_full: bool) -> PathBuf {
    let suffix = if is_full { "" } else { "-d" };
    dir.join("ckpt")
        .join(format!("ckpt-e{engine:04}-g{generation:08}{suffix}.bin"))
}

/// Rewrites generation `generation` of `engine` with `ckpt`, CRC frame
/// recomputed — byte-level checks will pass; only hash verification can
/// object to what's inside.
fn rewrite_checkpoint(dir: &Path, engine: u32, generation: u64, ckpt: &EngineCheckpoint) {
    let body = ckpt.to_bytes();
    let mut framed = Vec::with_capacity(body.len() + 8);
    framed.extend_from_slice(&(body.len() as u32).to_be_bytes());
    framed.extend_from_slice(&crc32(&body).to_be_bytes());
    framed.extend_from_slice(&body);
    std::fs::write(
        ckpt_path(dir, engine, generation, ckpt.is_self_contained()),
        framed,
    )
    .expect("rewrite checkpoint");
}

/// Corrupts engine 0's durable chain from its first delta onward: every
/// recorded clock from that horizon is skewed one tick, and the seals are
/// recomputed so the chain is *structurally* pristine. This is exactly what
/// a nondeterministic original run leaves behind — checkpoints that verify
/// byte-for-byte but describe state replay will never reproduce. Returns
/// the pristine chain and the virtual time of the first divergent horizon.
fn skew_chain_from_first_delta(dir: &Path) -> (Vec<EngineCheckpoint>, VirtualTime) {
    let store = CheckpointStore::open(dir.join("ckpt")).expect("open store");
    let e0 = EngineId::new(0);
    let loaded = store
        .load_chain(e0)
        .expect("chain loads")
        .expect("engine 0 persisted a chain");
    assert!(
        loaded.chain.len() >= 3 && !loaded.chain[1].is_self_contained(),
        "drill needs a [full, delta, delta] chain, got {} members",
        loaded.chain.len()
    );
    let first_divergent_vt = *loaded.chain[1].clocks.values().next().expect("clocks");
    let base_generation = loaded.generation + 1 - loaded.chain.len() as u64;
    let mut prev_seal = loaded.chain[0].chain_seal;
    for (i, member) in loaded.chain.iter().enumerate().skip(1) {
        let mut skewed = member.clone();
        for clock in skewed.clocks.values_mut() {
            *clock = VirtualTime::from_ticks(clock.as_ticks() + 1);
        }
        let base = if skewed.is_self_contained() {
            tart_model::StateHash::ZERO
        } else {
            prev_seal
        };
        skewed.seal(&base);
        prev_seal = skewed.chain_seal;
        rewrite_checkpoint(dir, 0, base_generation + i as u64, &skewed);
    }
    (loaded.chain, first_divergent_vt)
}

#[test]
fn corrupted_chain_is_detected_bisected_and_recovered_around() {
    let dir = fresh_dir("drill");
    let dump = dir.join("flight-dump.json");
    // Route flight dumps to a file we can assert on. Set before recovery;
    // this test binary owns the process, and no other test here dumps.
    std::env::set_var("TART_FLIGHT_DUMP", &dump);

    let pre = run_and_crash(&dir);
    let (_pristine, first_divergent_vt) = skew_chain_from_first_delta(&dir);

    let spec = fan_in_app(2).expect("valid app");
    let placement = two_engine_placement(&spec);
    let e0 = EngineId::new(0);
    let e1 = EngineId::new(1);

    // The skewed chain is structurally pristine: CRC frames and chain seals
    // all verify, so the store serves the full three-member chain.
    let store = CheckpointStore::open(dir.join("ckpt")).expect("open store");
    let skewed = store.load_chain(e0).expect("loads").expect("present");
    assert_eq!(
        skewed.chain.len(),
        3,
        "seal-consistent corruption must pass the structural layer"
    );
    assert!(!skewed.fell_back);

    // Offline bisect: the first divergent member is the first delta, and
    // the fault names the skewed horizon.
    let faults = store.faults(e0).expect("fault log");
    let verdict = verify_replay(
        &spec,
        &placement,
        &paper_config(&spec),
        e0,
        &skewed.chain,
        &faults,
    );
    match verdict {
        ReplayVerdict::Diverged { index, seq, fault } => {
            assert_eq!(index, 1, "first delta is the first divergent member");
            assert_eq!(seq, skewed.chain[1].seq);
            assert_eq!(
                fault.vt,
                VirtualTime::from_ticks(first_divergent_vt.as_ticks() + 1),
                "fault reports the first divergent virtual time"
            );
            assert!(fault.component.is_some(), "component-level divergence");
            assert_ne!(fault.expected, fault.actual);
        }
        other => panic!("expected a divergence, got {other:?}"),
    }
    // Engine 1 was not touched: its chain replays clean.
    let clean = store.load_chain(e1).expect("loads").expect("present");
    let verdict = verify_replay(
        &spec,
        &placement,
        &paper_config(&spec),
        e1,
        &clean.chain,
        &store.faults(e1).expect("fault log"),
    );
    assert_eq!(
        verdict,
        ReplayVerdict::Clean {
            members: clean.chain.len()
        }
    );
    drop(store);

    // Hash-verified cold restart: both skewed deltas are rejected (one per
    // retry), engine 0 restores from the full head alone, and replay
    // regenerates the difference — outputs stay byte-identical.
    let config = paper_config(&spec)
        .with_checkpoint_every(100_000)
        .with_durability(&dir, FsyncPolicy::Always)
        .with_full_checkpoint_every(4);
    let (cluster, report) =
        Cluster::recover_from_disk(spec.clone(), placement.clone(), config).expect("recovers");
    let rec0 = report
        .engines
        .iter()
        .find(|e| e.engine == e0)
        .expect("engine 0 in report");
    assert!(rec0.fell_back, "divergent suffix discarded");
    for (client, sentence) in &SENTENCES[6..] {
        cluster
            .injector(client)
            .expect("injector")
            .send(Value::from(*sentence));
    }
    cluster.finish_inputs();

    let snap = cluster.obs_snapshot();
    assert!(
        snap.divergences_detected >= 2,
        "both skewed deltas raise divergences, got {}",
        snap.divergences_detected
    );
    assert!(snap.state_hashes_computed > 0, "hashes recorded");
    assert!(
        dump.exists(),
        "each rejection dumps the flight recorder for forensics"
    );

    let mut all = pre;
    all.extend(cluster.shutdown());
    assert_eq!(
        normalize(all),
        failure_free_run(),
        "recovery around detected corruption must still converge"
    );
    std::env::remove_var("TART_FLIGHT_DUMP");
    std::fs::remove_dir_all(&dir).ok();
}

/// Corrupts engine 0's durable chain **from its full head onward** — every
/// generation's recorded clocks skewed, seals recomputed — so hash
/// verification rejects the entire chain. Same shape as
/// [`skew_chain_from_first_delta`], but nothing survives.
fn skew_entire_chain(dir: &Path) {
    let store = CheckpointStore::open(dir.join("ckpt")).expect("open store");
    let loaded = store
        .load_chain(EngineId::new(0))
        .expect("chain loads")
        .expect("engine 0 persisted a chain");
    let base_generation = loaded.generation + 1 - loaded.chain.len() as u64;
    let mut prev_seal = tart_model::StateHash::ZERO;
    for (i, member) in loaded.chain.iter().enumerate() {
        let mut skewed = member.clone();
        for clock in skewed.clocks.values_mut() {
            *clock = VirtualTime::from_ticks(clock.as_ticks() + 1);
        }
        let base = if skewed.is_self_contained() {
            tart_model::StateHash::ZERO
        } else {
            prev_seal
        };
        skewed.seal(&base);
        prev_seal = skewed.chain_seal;
        rewrite_checkpoint(dir, 0, base_generation + i as u64, &skewed);
    }
}

#[test]
fn exhausted_chain_is_a_structured_terminal_error() {
    // Every generation of engine 0's chain diverges: the restore loop must
    // discard all of them and surface a structured error — NOT restore
    // vacuously (which would silently erase the engine's history) and NOT
    // panic (which would poison the host lock).
    let dir = fresh_dir("exhaust");
    let _ = run_and_crash(&dir);
    skew_entire_chain(&dir);

    let spec = fan_in_app(2).expect("valid app");
    let config = paper_config(&spec)
        .with_checkpoint_every(100_000)
        .with_durability(&dir, FsyncPolicy::Always)
        .with_full_checkpoint_every(4);
    let outcome = Cluster::recover_from_disk(spec.clone(), two_engine_placement(&spec), config);
    let Err(err) = outcome else {
        panic!("an exhausted chain must refuse to recover");
    };
    match err {
        tart_engine::DeployError::DurabilityUnavailable(msg) => {
            assert!(
                msg.contains("failed verification"),
                "error names the verification failure, got: {msg}"
            );
            assert!(
                msg.contains("all 3"),
                "error reports how many generations were discarded, got: {msg}"
            );
        }
        other => panic!("expected DurabilityUnavailable, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn clean_chain_replays_without_divergence() {
    let dir = fresh_dir("clean");
    let pre = run_and_crash(&dir);

    let spec = fan_in_app(2).expect("valid app");
    let placement = two_engine_placement(&spec);
    // Every engine's untouched chain passes the offline verifier whole.
    let store = CheckpointStore::open(dir.join("ckpt")).expect("open store");
    for engine in store.engines() {
        let loaded = store.load_chain(engine).expect("loads").expect("present");
        let verdict = verify_replay(
            &spec,
            &placement,
            &paper_config(&spec),
            engine,
            &loaded.chain,
            &store.faults(engine).expect("fault log"),
        );
        assert_eq!(
            verdict,
            ReplayVerdict::Clean {
                members: loaded.chain.len()
            },
            "clean chain for {engine} must verify end-to-end"
        );
    }
    drop(store);

    let config = paper_config(&spec)
        .with_checkpoint_every(100_000)
        .with_durability(&dir, FsyncPolicy::Always)
        .with_full_checkpoint_every(4);
    let (cluster, report) =
        Cluster::recover_from_disk(spec.clone(), placement, config).expect("recovers");
    for e in &report.engines {
        assert!(!e.fell_back, "clean chains restore whole");
    }
    for (client, sentence) in &SENTENCES[6..] {
        cluster
            .injector(client)
            .expect("injector")
            .send(Value::from(*sentence));
    }
    cluster.finish_inputs();

    let snap = cluster.obs_snapshot();
    assert_eq!(snap.divergences_detected, 0, "clean replay reconverges");
    assert!(
        snap.state_hashes_computed > 0,
        "restore verification recorded its hash work"
    );

    let mut all = pre;
    all.extend(cluster.shutdown());
    assert_eq!(normalize(all), failure_free_run());
    std::fs::remove_dir_all(&dir).ok();
}
