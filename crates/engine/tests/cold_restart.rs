//! Cold restart: a cluster running with the crash-safe durability layer is
//! killed **in its entirety** — no surviving replica, no warm process — and
//! relaunched from nothing but the on-disk WAL + checkpoint store. The
//! deduplicated outputs of crash + recovery must be byte-identical to a run
//! that never failed, including when the crash tore the final WAL record or
//! rotted the newest checkpoint generation.
//!
//! This extends the paper's single-failure transparency argument (§II.F) to
//! whole-cluster failure: external inputs replay from stable storage
//! (§II.E), engine state restores from the newest durable checkpoint that
//! verifies, and deterministic re-execution regenerates everything between
//! the restart point and the crash instant.

use std::path::{Path, PathBuf};
use std::time::Duration;

use tart_engine::{
    ChaosOptions, ChaosPlan, Cluster, ClusterConfig, DeployError, DurabilityConfig, FsyncPolicy,
    OutputRecord, Placement,
};
use tart_estimator::EstimatorSpec;
use tart_model::reference::{self, fan_in_app};
use tart_model::{AppSpec, BlockId, Value};
use tart_vtime::EngineId;

const SENTENCES: &[(&str, &str)] = &[
    ("client1", "alpha beta gamma"),
    ("client2", "beta gamma delta"),
    ("client1", "gamma delta epsilon"),
    ("client2", "delta epsilon alpha"),
    ("client1", "epsilon alpha beta"),
    ("client2", "alpha beta gamma delta"),
    ("client1", "beta delta"),
    ("client2", "gamma epsilon alpha beta"),
    ("client1", "delta alpha"),
    ("client2", "epsilon beta gamma"),
];

fn paper_config(spec: &AppSpec) -> ClusterConfig {
    let mut config = ClusterConfig::logical_time().with_checkpoint_every(2);
    for c in spec.components() {
        let est = if c.name().starts_with("Sender") {
            EstimatorSpec::per_iteration(reference::SENDER_LOOP_BLOCK, 61_000)
        } else {
            EstimatorSpec::per_iteration(BlockId(0), 400_000)
        };
        config = config.with_estimator(c.id(), est);
    }
    config
}

fn two_engine_placement(spec: &AppSpec) -> Placement {
    let mut p = Placement::new();
    for c in spec.components() {
        let engine = if c.name() == "Merger" { 1 } else { 0 };
        p.assign(c.id(), EngineId::new(engine));
    }
    p
}

fn normalize(outputs: Vec<OutputRecord>) -> Vec<(u64, String)> {
    Cluster::dedup_outputs(outputs)
        .into_iter()
        .map(|o| (o.vt.as_ticks(), o.payload.to_string()))
        .collect()
}

/// The reference: same workload, no durability, no failure.
fn failure_free_run() -> Vec<(u64, String)> {
    let spec = fan_in_app(2).expect("valid app");
    let cluster = Cluster::deploy(
        spec.clone(),
        two_engine_placement(&spec),
        paper_config(&spec),
    )
    .expect("deploys");
    for (client, sentence) in SENTENCES {
        cluster
            .injector(client)
            .expect("injector")
            .send(Value::from(*sentence));
    }
    cluster.finish_inputs();
    normalize(cluster.shutdown())
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tart-cold-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Deploys with durability, drives the first `upto` sentences, forces both
/// engines to checkpoint, and crashes the whole cluster. Returns whatever
/// outputs had surfaced before the lights went out.
fn run_and_crash(dir: &Path, upto: usize) -> Vec<OutputRecord> {
    let spec = fan_in_app(2).expect("valid app");
    let config = paper_config(&spec).with_durability(dir, FsyncPolicy::Always);
    let cluster =
        Cluster::deploy(spec.clone(), two_engine_placement(&spec), config).expect("deploys");
    for (client, sentence) in &SENTENCES[..upto] {
        cluster
            .injector(client)
            .expect("injector")
            .send(Value::from(*sentence));
    }
    // Let processing settle, then force a durable generation on each engine
    // so recovery exercises restore-from-checkpoint, not just full replay.
    std::thread::sleep(Duration::from_millis(150));
    for engine in cluster.engine_ids() {
        cluster.checkpoint_now(engine);
    }
    std::thread::sleep(Duration::from_millis(150));
    cluster.crash()
}

/// Relaunches from `dir`, drives the remaining sentences (from `resume_at`),
/// and shuts down cleanly. Returns the recovery report and the outputs.
fn recover_and_finish(
    dir: &Path,
    resume_at: usize,
) -> (tart_engine::RecoveryReport, Vec<OutputRecord>) {
    recover_and_finish_with(dir, FsyncPolicy::Always, resume_at)
}

/// [`recover_and_finish`] under an explicit fsync policy.
fn recover_and_finish_with(
    dir: &Path,
    policy: FsyncPolicy,
    resume_at: usize,
) -> (tart_engine::RecoveryReport, Vec<OutputRecord>) {
    let spec = fan_in_app(2).expect("valid app");
    let config = paper_config(&spec).with_durability(dir, policy);
    let (cluster, report) =
        Cluster::recover_from_disk(spec.clone(), two_engine_placement(&spec), config)
            .expect("recovers");
    for (client, sentence) in &SENTENCES[resume_at..] {
        cluster
            .injector(client)
            .expect("injector")
            .send(Value::from(*sentence));
    }
    cluster.finish_inputs();
    (report, cluster.shutdown())
}

#[test]
fn clean_durable_run_is_transparent() {
    let dir = fresh_dir("clean");
    let spec = fan_in_app(2).expect("valid app");
    let config = paper_config(&spec).with_durability(&dir, FsyncPolicy::Always);
    let cluster =
        Cluster::deploy(spec.clone(), two_engine_placement(&spec), config).expect("deploys");
    for (client, sentence) in SENTENCES {
        cluster
            .injector(client)
            .expect("injector")
            .send(Value::from(*sentence));
    }
    cluster.finish_inputs();
    let outs = normalize(cluster.shutdown());
    assert_eq!(
        outs,
        failure_free_run(),
        "durability must not perturb outputs"
    );
    // The layer actually wrote: a WAL segment and (post-drain) checkpoints.
    assert!(
        std::fs::read_dir(dir.join("wal")).unwrap().next().is_some(),
        "WAL populated"
    );
    assert!(
        std::fs::read_dir(dir.join("ckpt"))
            .unwrap()
            .next()
            .is_some(),
        "checkpoint store populated"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cold_restart_is_byte_identical() {
    let dir = fresh_dir("restart");
    let crash_at = 6;
    let pre = run_and_crash(&dir, crash_at);
    let (report, post) = recover_and_finish(&dir, crash_at);

    assert_eq!(report.wal_records, crash_at, "every send was durable");
    assert_eq!(report.wal_truncated_bytes, 0, "clean WAL tail");
    for e in &report.engines {
        assert!(
            e.generation.is_some(),
            "engine {:?} restored from a durable checkpoint",
            e.engine
        );
        assert!(!e.fell_back, "newest generation verified");
    }

    let mut all = pre;
    all.extend(post);
    assert_eq!(
        normalize(all),
        failure_free_run(),
        "crash + cold restart must be invisible after dedup"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cold_restart_truncates_torn_wal_tail() {
    let dir = fresh_dir("torn");
    let crash_at = 6;
    let pre = run_and_crash(&dir, crash_at);

    // Tear the final WAL record: the crash interrupted the last write.
    let wal = dir.join("wal");
    let newest = std::fs::read_dir(&wal)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "seg"))
        .max()
        .expect("a WAL segment exists");
    let len = std::fs::metadata(&newest).unwrap().len();
    let f = std::fs::OpenOptions::new()
        .write(true)
        .open(&newest)
        .unwrap();
    f.set_len(len - 3).unwrap();
    f.sync_all().unwrap();
    drop(f);

    // The torn send (sentence 6) was never durable, so the client re-sends
    // it — exactly what a real producer does when its last send was never
    // acknowledged. The logical clock resumes from the durable log, so the
    // re-send reproduces the original timestamp.
    let (report, post) = recover_and_finish(&dir, crash_at - 1);
    assert_eq!(report.wal_records, crash_at - 1, "torn record discarded");
    assert!(report.wal_truncated_bytes > 0, "tail truncation reported");

    let mut all = pre;
    all.extend(post);
    assert_eq!(
        normalize(all),
        failure_free_run(),
        "torn-tail recovery must still converge to the failure-free run"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cold_restart_truncates_torn_group_commit_tail() {
    // Under group commit a whole window of appends shares one `sync_all`,
    // so a crash can tear *several* trailing records at once — the torn
    // tail is a partial batch, not a single half-written frame. Recovery
    // must truncate every record at or past the tear and let the producer
    // re-send the lost batch.
    let dir = fresh_dir("torn-group");
    let crash_at = 6;
    let group = FsyncPolicy::GroupCommit {
        max_records: 4,
        max_delay: Duration::from_millis(5),
    };
    let spec = fan_in_app(2).expect("valid app");
    let config = paper_config(&spec).with_durability(&dir, group);
    let cluster =
        Cluster::deploy(spec.clone(), two_engine_placement(&spec), config).expect("deploys");
    for (client, sentence) in &SENTENCES[..crash_at] {
        cluster
            .injector(client)
            .expect("injector")
            .send(Value::from(*sentence));
    }
    std::thread::sleep(Duration::from_millis(150));
    for engine in cluster.engine_ids() {
        cluster.checkpoint_now(engine);
    }
    std::thread::sleep(Duration::from_millis(150));
    let pre = cluster.crash();

    // Walk the frame headers of the newest segment and cut into the body
    // of the second-to-last record: the final two appends of the commit
    // window vanish together.
    let wal = dir.join("wal");
    let newest = std::fs::read_dir(&wal)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "seg"))
        .max()
        .expect("a WAL segment exists");
    let bytes = std::fs::read(&newest).unwrap();
    let mut starts = Vec::new();
    let mut pos = 0usize;
    while pos + 8 <= bytes.len() {
        let len = u32::from_be_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        starts.push(pos);
        pos += 8 + len;
    }
    assert!(starts.len() >= 2, "need at least two records to tear");
    let cut = starts[starts.len() - 2] + 12;
    let f = std::fs::OpenOptions::new()
        .write(true)
        .open(&newest)
        .unwrap();
    f.set_len(cut as u64).unwrap();
    f.sync_all().unwrap();
    drop(f);

    let (report, post) = recover_and_finish_with(&dir, group, crash_at - 2);
    assert_eq!(report.wal_records, crash_at - 2, "partial batch discarded");
    assert!(report.wal_truncated_bytes > 0, "tail truncation reported");

    let mut all = pre;
    all.extend(post);
    assert_eq!(
        normalize(all),
        failure_free_run(),
        "torn group-commit tail must still converge to the failure-free run"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cold_restart_falls_back_when_newest_generation_is_corrupt() {
    let dir = fresh_dir("rot");
    let crash_at = 6;
    let pre = run_and_crash(&dir, crash_at);

    // Rot the newest checkpoint generation of engine 0: recovery must fall
    // back one generation and replay the difference.
    let ckpt = dir.join("ckpt");
    let newest = std::fs::read_dir(&ckpt)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("ckpt-e0000-g"))
        })
        .max()
        .expect("engine 0 persisted at least one generation");
    let mut bytes = std::fs::read(&newest).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&newest, &bytes).unwrap();

    let (report, post) = recover_and_finish(&dir, crash_at);
    let e0 = report
        .engines
        .iter()
        .find(|e| e.engine == EngineId::new(0))
        .expect("engine 0 in report");
    assert!(e0.fell_back, "newest generation rejected, fell back one");
    assert!(e0.generation.is_some(), "an older generation verified");

    let mut all = pre;
    all.extend(post);
    assert_eq!(
        normalize(all),
        failure_free_run(),
        "one-generation fallback must still converge to the failure-free run"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cold_restart_survives_losing_a_delta_chain_base() {
    // Delta checkpoints are worthless without their base full generation.
    // Build per-engine chains of the shape [full, delta, full], damage the
    // newest full of engine 0 (stranding nothing — but simulating a crash
    // that rotted the base a later delta would have built on), and recover:
    // the store must fall back to the older full + delta chain and replay
    // the difference.
    let dir = fresh_dir("delta-base");
    let spec = fan_in_app(2).expect("valid app");
    // No automatic checkpoints: the test drives the cadence by hand so the
    // on-disk chain shape is deterministic. Full every 2nd checkpoint.
    let config = paper_config(&spec)
        .with_checkpoint_every(100_000)
        .with_durability(&dir, FsyncPolicy::Always)
        .with_full_checkpoint_every(2);
    let cluster =
        Cluster::deploy(spec.clone(), two_engine_placement(&spec), config).expect("deploys");
    let crash_at = 6;
    for chunk in SENTENCES[..crash_at].chunks(2) {
        for (client, sentence) in chunk {
            cluster
                .injector(client)
                .expect("injector")
                .send(Value::from(*sentence));
        }
        // Let the sends land so each checkpoint captures real progress
        // (an empty delta is re-captured as a full, changing the shape).
        std::thread::sleep(Duration::from_millis(250));
        for engine in cluster.engine_ids() {
            cluster.checkpoint_now(engine);
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    let pre = cluster.crash();

    // The cadence must actually have produced deltas for engine 0.
    let ckpt = dir.join("ckpt");
    let e0_files: Vec<String> = std::fs::read_dir(&ckpt)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter_map(|e| e.file_name().into_string().ok())
        .filter(|n| n.starts_with("ckpt-e0000-g"))
        .collect();
    assert!(
        e0_files.iter().any(|n| n.ends_with("-d.bin")),
        "expected delta generations for engine 0, got {e0_files:?}"
    );
    // Damage engine 0's newest *full* generation.
    let newest_full = e0_files
        .iter()
        .filter(|n| !n.ends_with("-d.bin"))
        .max()
        .expect("engine 0 persisted a full generation");
    let path = ckpt.join(newest_full);
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&path, &bytes).unwrap();

    let (report, post) = recover_and_finish(&dir, crash_at);
    let e0 = report
        .engines
        .iter()
        .find(|e| e.engine == EngineId::new(0))
        .expect("engine 0 in report");
    assert!(e0.fell_back, "damaged full forces an older restore chain");
    assert!(e0.generation.is_some(), "an older chain verified");

    let mut all = pre;
    all.extend(post);
    assert_eq!(
        normalize(all),
        failure_free_run(),
        "chain fallback must still converge to the failure-free run"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn deploy_refuses_a_populated_durability_dir() {
    let dir = fresh_dir("refuse");
    let _ = run_and_crash(&dir, 2);
    let spec = fan_in_app(2).expect("valid app");
    let config = paper_config(&spec).with_durability(&dir, FsyncPolicy::Always);
    let err = Cluster::deploy(spec.clone(), two_engine_placement(&spec), config).unwrap_err();
    assert_eq!(
        err,
        DeployError::DurabilityDirNotEmpty,
        "prior state must not be silently orphaned"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn recover_requires_durability_config() {
    let spec = fan_in_app(2).expect("valid app");
    let err = Cluster::recover_from_disk(
        spec.clone(),
        two_engine_placement(&spec),
        paper_config(&spec),
    )
    .unwrap_err();
    assert_eq!(err, DeployError::DurabilityNotConfigured);
}

#[test]
fn seeded_disk_faults_cannot_break_cold_restart() {
    // Each seed draws a different combination of post-mortem disk faults
    // from the chaos generator; recovery must converge regardless. Every
    // assertion carries the seed so a failure reproduces exactly.
    for seed in [1u64, 42, 0xD15C] {
        let dir = fresh_dir(&format!("chaos-{seed}"));
        let crash_at = 6;
        let pre = run_and_crash(&dir, crash_at);

        let opts = ChaosOptions {
            disk_faults: 2,
            ..ChaosOptions::fast()
        };
        let engines = [EngineId::new(0), EngineId::new(1)];
        let plan = ChaosPlan::generate(seed, &engines, &opts);
        let applied = plan.apply_disk_faults(&dir).expect("fault surgery");

        let spec = fan_in_app(2).expect("valid app");
        let config = paper_config(&spec).with_durability(&dir, FsyncPolicy::Always);
        let (cluster, report) =
            Cluster::recover_from_disk(spec.clone(), two_engine_placement(&spec), config)
                .unwrap_or_else(|e| {
                    panic!("seed {seed:#x}: recovery failed after faults {applied:?}: {e}")
                });
        // A torn WAL tail may have eaten the final (unacknowledged) send;
        // the producer resumes from whatever the log durably holds.
        let resume_at = report.wal_records;
        assert!(
            resume_at == crash_at || resume_at == crash_at - 1,
            "seed {seed:#x}: unexpected WAL survivor count {resume_at} (faults {applied:?})"
        );
        for (client, sentence) in &SENTENCES[resume_at..] {
            cluster
                .injector(client)
                .expect("injector")
                .send(Value::from(*sentence));
        }
        cluster.finish_inputs();
        let post = cluster.shutdown();

        let mut all = pre;
        all.extend(post);
        assert_eq!(
            normalize(all),
            failure_free_run(),
            "seed {seed:#x}: outputs diverged after disk faults {applied:?}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn sealed_segment_rot_is_refused() {
    // Bit-rot in a sealed, fsynced WAL segment is stable storage decaying —
    // not a crash artifact. Recovery must refuse loudly, never replay
    // garbage. A tiny rotation threshold forces multiple segments so a
    // sealed one exists to rot.
    use tart_engine::DiskFault;
    let dir = fresh_dir("sealed-rot");
    let spec = fan_in_app(2).expect("valid app");
    let mut config = paper_config(&spec);
    config.durability = Some(DurabilityConfig {
        wal_segment_bytes: 64,
        ..DurabilityConfig::new(dir.clone(), FsyncPolicy::Always)
    });
    let cluster = Cluster::deploy(spec.clone(), two_engine_placement(&spec), config.clone())
        .expect("deploys");
    for (client, sentence) in &SENTENCES[..6] {
        cluster
            .injector(client)
            .expect("injector")
            .send(Value::from(*sentence));
    }
    std::thread::sleep(Duration::from_millis(100));
    let _ = cluster.crash();

    let applied = DiskFault::BitFlipSealedSegment
        .apply(&dir)
        .expect("surgery");
    assert!(applied, "64-byte segments must have rotated at least once");
    assert!(!DiskFault::BitFlipSealedSegment.recoverable());

    let err = match Cluster::recover_from_disk(spec.clone(), two_engine_placement(&spec), config) {
        Err(e) => e,
        Ok(_) => panic!("rotted sealed segment must refuse recovery"),
    };
    assert!(
        matches!(err, DeployError::DurabilityUnavailable(_)),
        "got {err:?}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn losing_the_checkpoint_dir_mid_run_degrades_gracefully() {
    // When the disk dies under a live cluster, persists fail and `TrimAck`s
    // stop advancing — retention grows, but outputs stay correct.
    let dir = fresh_dir("degrade");
    let spec = fan_in_app(2).expect("valid app");
    let config = paper_config(&spec).with_durability(&dir, FsyncPolicy::Always);
    let cluster =
        Cluster::deploy(spec.clone(), two_engine_placement(&spec), config).expect("deploys");
    for (client, sentence) in &SENTENCES[..5] {
        cluster
            .injector(client)
            .expect("injector")
            .send(Value::from(*sentence));
    }
    std::thread::sleep(Duration::from_millis(100));
    std::fs::remove_dir_all(dir.join("ckpt")).expect("pull the disk");
    for (client, sentence) in &SENTENCES[5..] {
        cluster
            .injector(client)
            .expect("injector")
            .send(Value::from(*sentence));
    }
    cluster.finish_inputs();
    let outs = normalize(cluster.shutdown());
    assert_eq!(
        outs,
        failure_free_run(),
        "disk loss must not corrupt outputs"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Component id by name — tier assignment needs ids, specs name components.
fn component_id(spec: &AppSpec, name: &str) -> tart_vtime::ComponentId {
    spec.components()
        .iter()
        .find(|c| c.name() == name)
        .unwrap_or_else(|| panic!("component {name} exists"))
        .id()
}

#[test]
fn mixed_tier_crash_reports_and_recovers_per_component_loss() {
    // The tiered durability contract, end to end: Sender1's inputs ride the
    // Strict lane (fsynced before the send returns), Sender2's ride the
    // Buffered lane (acknowledged inside the open group-commit window), and
    // the crash drill reports per component exactly what the open window
    // cost. Recovery then accounts for every component's recovered inputs,
    // the producer re-drives only the lost tail, and the deduplicated
    // outputs converge to the failure-free run — a Buffered record is never
    // applied twice, a Strict record never lost.
    use tart_engine::DurabilityPolicy;
    let dir = fresh_dir("mixed-tier");
    let spec = fan_in_app(2).expect("valid app");
    let strict = component_id(&spec, "Sender1");
    let buffered = component_id(&spec, "Sender2");
    let tiered = |spec: &AppSpec| {
        paper_config(spec)
            .with_durability(&dir, FsyncPolicy::Always)
            .with_default_tier(DurabilityPolicy::Strict)
            .with_component_tier(
                buffered,
                DurabilityPolicy::Buffered {
                    // A window far wider than the test: only Strict barriers
                    // (and the crash) close it, so the loss is deterministic.
                    flush_window: Duration::from_secs(3600),
                },
            )
    };
    let cluster =
        Cluster::deploy(spec.clone(), two_engine_placement(&spec), tiered(&spec)).expect("deploys");
    for (client, sentence) in SENTENCES {
        cluster
            .injector(client)
            .expect("injector")
            .send(Value::from(*sentence));
    }
    std::thread::sleep(Duration::from_millis(150));
    for engine in cluster.engine_ids() {
        cluster.checkpoint_now(engine);
    }
    std::thread::sleep(Duration::from_millis(150));
    let (pre, crash) = cluster.crash_with_report();

    assert!(
        !crash.lost_inputs.contains_key(&strict),
        "a Strict component must never lose an acknowledged input: {crash:?}"
    );
    assert!(
        crash.memory_only_inputs.is_empty(),
        "no InMemory tier in this drill: {crash:?}"
    );
    // SENTENCES alternate client1 (Strict) / client2 (Buffered) and end on
    // client2: every earlier Buffered send was pinned down by the next
    // Strict barrier, so the open window holds exactly the final send.
    let lost = crash.lost_inputs.get(&buffered).copied().unwrap_or(0);
    assert_eq!(lost, 1, "exactly the open window is lost: {crash:?}");

    let (cluster, report) =
        Cluster::recover_from_disk(spec.clone(), two_engine_placement(&spec), tiered(&spec))
            .expect("recovers");
    let recovered = |id| {
        report
            .components
            .iter()
            .find(|c| c.component == id)
            .unwrap_or_else(|| panic!("component {id} in recovery report"))
    };
    let client1_sends = SENTENCES.iter().filter(|(c, _)| *c == "client1").count() as u64;
    let client2_sends = SENTENCES.len() as u64 - client1_sends;
    assert_eq!(recovered(strict).tier, Some(DurabilityPolicy::Strict));
    assert_eq!(recovered(strict).recovered_inputs, client1_sends);
    assert!(!recovered(strict).replay_from_peers_only);
    assert_eq!(
        recovered(buffered).recovered_inputs,
        client2_sends - lost,
        "the recovered shortfall is exactly the crash report's loss"
    );

    // The producer re-drives its unacknowledged tail (the final sentence),
    // as a real client does when a send was never acked.
    for (client, sentence) in &SENTENCES[SENTENCES.len() - lost as usize..] {
        cluster
            .injector(client)
            .expect("injector")
            .send(Value::from(*sentence));
    }
    cluster.finish_inputs();
    let post = cluster.shutdown();

    let mut all = pre;
    all.extend(post);
    assert_eq!(
        normalize(all),
        failure_free_run(),
        "mixed-tier crash + recovery must converge: no Strict loss, no Buffered double-apply"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn in_memory_component_recovers_via_peer_replay_byte_identically() {
    // The InMemory tier persists nothing — its external inputs never touch
    // the WAL and its engines never persist a checkpoint — yet single-engine
    // failure is still transparent: the passive replica restores state and
    // peer replay (the in-process message log and upstream retention)
    // regenerates the gap, byte-identically.
    use tart_engine::{DurabilityPolicy, Wal};
    let dir = fresh_dir("inmem-tier");
    let spec = fan_in_app(2).expect("valid app");
    let config = paper_config(&spec)
        .with_durability(&dir, FsyncPolicy::Always)
        .with_default_tier(DurabilityPolicy::InMemory);
    let mut cluster =
        Cluster::deploy(spec.clone(), two_engine_placement(&spec), config).expect("deploys");
    for (client, sentence) in &SENTENCES[..6] {
        cluster
            .injector(client)
            .expect("injector")
            .send(Value::from(*sentence));
    }
    std::thread::sleep(Duration::from_millis(150));
    for engine in cluster.engine_ids() {
        cluster.checkpoint_now(engine);
    }
    std::thread::sleep(Duration::from_millis(150));
    // Fail-stop the engine hosting both senders: its state and every
    // in-flight envelope die with it. Promotion restores the replica and
    // replays the senders' external wires from the in-process log.
    cluster.kill(EngineId::new(0));
    cluster.promote(EngineId::new(0)).expect("promotes");
    for (client, sentence) in &SENTENCES[6..] {
        cluster
            .injector(client)
            .expect("injector")
            .send(Value::from(*sentence));
    }
    cluster.finish_inputs();
    let outs = normalize(cluster.shutdown());
    assert_eq!(
        outs,
        failure_free_run(),
        "InMemory-tier failover must be byte-identical to the failure-free run"
    );
    // And the disk really was left out of it: the WAL holds zero records
    // and the checkpoint store persisted zero generations.
    let (wal, recovery) =
        Wal::open(dir.join("wal"), 1 << 20, FsyncPolicy::Always).expect("reopen wal");
    drop(wal);
    assert_eq!(
        recovery.records.len(),
        0,
        "InMemory inputs never hit the WAL"
    );
    let persisted = std::fs::read_dir(dir.join("ckpt"))
        .expect("ckpt dir")
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().starts_with("ckpt-"))
        .count();
    assert_eq!(persisted, 0, "InMemory engines never persist checkpoints");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn undrained_outputs_survive_a_crash_after_a_durable_checkpoint() {
    // The nastiest window in the durability protocol: an input is durably
    // consumed by a persisted checkpoint, its output sits in the volatile
    // outputs channel, and the process dies before the consumer drains it.
    // Replay will never regenerate that output (its input is behind the
    // restored consumed watermark), so the checkpoint itself must carry it
    // and recovery must re-emit it. Discarding *everything* the crashed run
    // produced models a consumer that saw none of it.
    let dir = fresh_dir("undrained");
    let lost = run_and_crash(&dir, SENTENCES.len());
    assert!(
        !lost.is_empty(),
        "the crashed run must have produced (and then lost) outputs"
    );
    drop(lost); // the consumer never saw any of them

    let (report, outs) = recover_and_finish(&dir, SENTENCES.len());
    assert_eq!(report.wal_records, SENTENCES.len(), "all inputs durable");
    assert_eq!(
        normalize(outs),
        failure_free_run(),
        "recovery alone must re-emit every output the consumer never drained"
    );
    std::fs::remove_dir_all(&dir).ok();
}
