//! Chaos soak: a supervised cluster absorbs seeded crashes, partitions and
//! latency spikes with **zero manual intervention**, and its deduplicated
//! outputs are byte-identical to a failure-free run.
//!
//! This is the paper's transparency claim under the harshest harness the
//! repo has: the supervisor's phi-accrual failure detector must notice each
//! unannounced fail-stop from missing heartbeats alone and run the
//! kill → promote → replay drill on its own, while the chaos driver is
//! simultaneously dropping and delaying payload traffic.

// Test code: free to use wall clocks and hash maps (the determinism fence guards production code only).
#![allow(clippy::disallowed_methods)]

use std::time::{Duration, Instant};

use tart_engine::{
    ChaosOptions, ChaosPlan, Cluster, ClusterConfig, DurabilityPolicy, FsyncPolicy, OutputRecord,
    Placement, StandbyConfig, SupervisionConfig,
};
use tart_estimator::EstimatorSpec;
use tart_model::reference::{self, fan_in_app};
use tart_model::{AppSpec, BlockId, Value};
use tart_vtime::EngineId;

fn paper_config(spec: &AppSpec) -> ClusterConfig {
    let mut config = ClusterConfig::logical_time().with_checkpoint_every(2);
    for c in spec.components() {
        let est = if c.name().starts_with("Sender") {
            EstimatorSpec::per_iteration(reference::SENDER_LOOP_BLOCK, 61_000)
        } else {
            EstimatorSpec::per_iteration(BlockId(0), 400_000)
        };
        config = config.with_estimator(c.id(), est);
    }
    config
}

/// With `TART_SOAK_TIERS=mixed` in the environment, the soaked cluster runs
/// with disk durability enabled and a mixed tier assignment — the ledger-like
/// Merger Strict, one ingest-like sender Buffered, the other cache-like
/// sender InMemory — so the nightly matrix proves the zero-divergence gate
/// holds when all three durability tiers persist side by side.
fn with_soak_tiers(spec: &AppSpec, mut config: ClusterConfig, seed: u64) -> ClusterConfig {
    if std::env::var("TART_SOAK_TIERS").as_deref() != Ok("mixed") {
        return config;
    }
    let dir = std::env::temp_dir().join(format!("tart-soak-tiers-{}-{seed:x}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    config = config.with_durability(dir, FsyncPolicy::Always);
    for c in spec.components() {
        let tier = match c.name() {
            "Merger" => DurabilityPolicy::Strict,
            "Sender1" => DurabilityPolicy::Buffered {
                flush_window: Duration::from_millis(50),
            },
            _ => DurabilityPolicy::InMemory,
        };
        config = config.with_component_tier(c.id(), tier);
    }
    config
}

fn two_engine_placement(spec: &AppSpec) -> Placement {
    let mut p = Placement::new();
    for c in spec.components() {
        let engine = if c.name() == "Merger" { 1 } else { 0 };
        p.assign(c.id(), EngineId::new(engine));
    }
    p
}

const SENTENCES: &[(&str, &str)] = &[
    ("client1", "alpha beta gamma"),
    ("client2", "beta gamma delta"),
    ("client1", "gamma delta epsilon"),
    ("client2", "delta epsilon alpha"),
    ("client1", "epsilon alpha beta"),
    ("client2", "alpha beta gamma delta"),
    ("client1", "beta delta"),
    ("client2", "gamma epsilon alpha beta"),
    ("client1", "delta alpha"),
    ("client2", "epsilon beta gamma"),
];

fn normalize(outputs: Vec<OutputRecord>) -> Vec<(u64, String)> {
    Cluster::dedup_outputs(outputs)
        .into_iter()
        .map(|o| (o.vt.as_ticks(), o.payload.to_string()))
        .collect()
}

/// The reference: same workload, same pacing, no supervision, no chaos.
fn failure_free_run(pace: Duration) -> Vec<(u64, String)> {
    let spec = fan_in_app(2).expect("valid app");
    let cluster = Cluster::deploy(
        spec.clone(),
        two_engine_placement(&spec),
        paper_config(&spec),
    )
    .expect("deploys");
    for (client, sentence) in SENTENCES {
        cluster
            .injector(client)
            .expect("injector")
            .send(Value::from(*sentence));
        std::thread::sleep(pace);
    }
    cluster.finish_inputs();
    normalize(cluster.shutdown())
}

/// Soaks a supervised cluster under a seeded chaos plan and returns the
/// normalized outputs. Panics if any crash went unrecovered. With
/// `standby`, the warm plane runs alongside the supervisor, so automatic
/// promotions mix warm takeovers (slot anchored at crash time) with cold
/// replays (crash landed mid-catch-up) — both must stay transparent.
fn chaos_run(
    seed: u64,
    opts: &ChaosOptions,
    pace: Duration,
    standby: Option<StandbyConfig>,
) -> Vec<(u64, String)> {
    let spec = fan_in_app(2).expect("valid app");
    let mut config = paper_config(&spec).with_supervision(SupervisionConfig::fast());
    if let Some(s) = standby {
        config = config.with_warm_standby(s);
    }
    config = with_soak_tiers(&spec, config, seed);
    let cluster =
        Cluster::deploy(spec.clone(), two_engine_placement(&spec), config).expect("deploys");

    let plan = ChaosPlan::generate(seed, &cluster.engine_ids(), opts);
    let chaos = cluster.launch_chaos(plan);

    // Inject the workload while the cluster is being tormented. No kill(),
    // no promote() — recovery is entirely the supervisor's job.
    for (client, sentence) in SENTENCES {
        cluster
            .injector(client)
            .expect("injector")
            .send(Value::from(*sentence));
        std::thread::sleep(pace);
    }

    let report = chaos.wait();
    assert_eq!(
        report.unrecovered, 0,
        "every injected crash must be auto-recovered (report: {report:?})"
    );
    assert_eq!(u64::from(opts.crashes), report.crashes);

    let metrics = cluster
        .supervision_metrics()
        .expect("supervision is enabled");
    assert!(
        metrics.failovers >= u64::from(opts.crashes),
        "one automatic failover per crash at least, got {metrics:?}"
    );
    assert!(metrics.heartbeats_seen > 0, "engines heartbeat");

    // Soak summary: per-engine checkpoint traffic, including how much of it
    // rode the cheap incremental (delta) path.
    for engine in cluster.engine_ids() {
        if let Some(m) = cluster.engine_metrics(engine) {
            eprintln!(
                "chaos-soak seed {seed:#x} engine {}: processed={} checkpoints={} \
                 (delta={} / {}B of {}B total)",
                engine.raw(),
                m.processed,
                m.checkpoints,
                m.delta_checkpoints,
                m.delta_checkpoint_bytes,
                m.checkpoint_bytes,
            );
        }
    }

    // Observability: the soak must produce a validating obs report holding
    // the quantities the paper's evaluation is phrased in (§II.H, §IV).
    let snap = cluster.obs_snapshot();
    assert!(snap.delivered > 0, "deliveries recorded");
    assert!(
        snap.pessimism_wait_ns.count() > 0,
        "pessimism waits measured"
    );
    assert!(
        !snap.silence_per_wire.is_empty(),
        "per-wire silence totals recorded"
    );
    assert!(
        snap.failovers >= 1,
        "failover promotions land in the obs timeline"
    );
    // Verified replay (DESIGN.md §15): every checkpoint and every promotion
    // hashed state, and in a clean soak — chaos only crashes engines, it
    // never corrupts their state — replay must reconverge every time.
    assert!(
        snap.state_hashes_computed > 0,
        "checkpoints and promotions record state hashes"
    );
    assert_eq!(
        snap.divergences_detected, 0,
        "a clean soak must replay without a single divergence"
    );
    eprintln!(
        "chaos-soak seed {seed:#x}: state_hashes_computed={} divergences_detected={} \
         warm_promotions={} cold_promotions={} standby_applied={} standby_demotions={}",
        snap.state_hashes_computed,
        snap.divergences_detected,
        snap.warm_promotions,
        snap.cold_promotions,
        snap.standby_applied,
        snap.standby_demotions,
    );
    assert_eq!(
        snap.standby_demotions, 0,
        "chaos only crashes engines; it never corrupts standby state"
    );
    let path = cluster.write_obs_report().expect("obs report written");
    let text = std::fs::read_to_string(&path).expect("obs report readable");
    let req = tart_engine::ReportRequirements {
        failover_event: true,
        pessimism_samples: true,
        silence_totals: true,
        zero_divergence: true,
    };
    assert_eq!(
        tart_engine::check_report(&text, req),
        Ok(()),
        "obs report must pass the CI gate's validation"
    );
    eprintln!(
        "chaos-soak seed {seed:#x}: obs report at {}",
        path.display()
    );

    cluster.finish_inputs();
    normalize(cluster.shutdown())
}

#[test]
fn chaos_soak_outputs_match_failure_free_run() {
    let opts = ChaosOptions {
        duration: Duration::from_millis(2_500),
        crashes: 2,
        partitions: 2,
        latency_spikes: 2,
        max_latency: Duration::from_millis(20),
        disturbance_len: Duration::from_millis(150),
        disk_faults: 0,
    };
    // Pace the workload across the chaos window so disturbances land
    // mid-stream, not after the fact.
    let pace = Duration::from_millis(200);

    let clean = failure_free_run(pace);
    assert_eq!(clean.len(), SENTENCES.len(), "reference run is complete");

    let tormented = chaos_run(0xC4A05, &opts, pace, None);
    assert_eq!(
        clean, tormented,
        "deduplicated chaos outputs must be byte-identical to the failure-free run"
    );
}

#[test]
fn fast_preset_smoke() {
    // The CI smoke configuration: sub-second, one of each disturbance.
    let pace = Duration::from_millis(80);
    let clean = failure_free_run(pace);
    // Warm standby on in the CI smoke: automatic promotions take the warm
    // path when the slot is anchored and must stay byte-identical either way.
    let tormented = chaos_run(
        7,
        &ChaosOptions::fast(),
        pace,
        Some(StandbyConfig {
            trailing_horizon_ticks: 50_000,
            apply_interval: Duration::from_millis(1),
        }),
    );
    assert_eq!(clean, tormented);
}

/// The nightly soak: several times the CI window, more of every
/// disturbance, seed taken from `$TART_SOAK_SEED` so the matrix in
/// `soak-extended.yml` covers distinct schedules. Even seeds run with the
/// warm-standby plane enabled (a tight horizon, so automatic promotions mix
/// warm takeovers with cold mid-catch-up fallbacks); odd seeds run the
/// pure cold path — across the matrix both recovery modes soak nightly,
/// and the zero-divergence gate holds for both. Ignored by default — run
/// explicitly with `-- --ignored`.
#[test]
#[ignore = "nightly soak; run explicitly with -- --ignored"]
fn extended_soak() {
    let seed = std::env::var("TART_SOAK_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42u64);
    let opts = ChaosOptions {
        duration: Duration::from_secs(8),
        crashes: 4,
        partitions: 4,
        latency_spikes: 4,
        max_latency: Duration::from_millis(30),
        disturbance_len: Duration::from_millis(200),
        disk_faults: 0,
    };
    // Even seeds soak with the warm plane, odd seeds stay pure cold — the
    // seed matrix covers both recovery modes.
    let standby = seed.is_multiple_of(2).then(|| StandbyConfig {
        trailing_horizon_ticks: 50_000,
        apply_interval: Duration::from_millis(1),
    });
    // Spread the workload across most of the chaos window.
    let pace = Duration::from_millis(650);
    let clean = failure_free_run(pace);
    let tormented = chaos_run(seed, &opts, pace, standby);
    assert_eq!(
        clean, tormented,
        "extended soak (seed {seed}) must stay byte-identical to the failure-free run"
    );
}

#[test]
fn supervised_cluster_is_transparent_when_nothing_fails() {
    // Supervision alone must not disturb outputs (heartbeats ride the
    // control plane; the detector never fires on a healthy cluster).
    let spec = fan_in_app(2).expect("valid app");
    let config = paper_config(&spec).with_supervision(SupervisionConfig::fast());
    let cluster =
        Cluster::deploy(spec.clone(), two_engine_placement(&spec), config).expect("deploys");
    for (client, sentence) in SENTENCES {
        cluster
            .injector(client)
            .expect("injector")
            .send(Value::from(*sentence));
    }
    // Give the detector time to misbehave if it were going to.
    std::thread::sleep(Duration::from_millis(300));
    cluster.finish_inputs();
    let metrics = cluster.supervision_metrics().expect("supervision on");
    assert!(metrics.heartbeats_seen > 0);
    let outs = normalize(cluster.shutdown());
    assert_eq!(outs, failure_free_run(Duration::ZERO));
}

#[test]
fn manual_kills_stay_manual_under_supervision() {
    // A deliberate fail-stop (operator action) must NOT be auto-recovered:
    // the supervisor only owns engines it believes alive.
    let spec = fan_in_app(2).expect("valid app");
    let config = paper_config(&spec).with_supervision(SupervisionConfig::fast());
    let mut cluster =
        Cluster::deploy(spec.clone(), two_engine_placement(&spec), config).expect("deploys");
    for (client, sentence) in &SENTENCES[..4] {
        cluster
            .injector(client)
            .expect("injector")
            .send(Value::from(*sentence));
    }
    std::thread::sleep(Duration::from_millis(50));
    cluster.kill(EngineId::new(1));

    // Well past the suspicion timeout: still no automatic failover.
    let deadline = Instant::now() + Duration::from_millis(600);
    while Instant::now() < deadline {
        let m = cluster.supervision_metrics().expect("supervision on");
        assert_eq!(m.failovers, 0, "manual kill must not be auto-promoted");
        std::thread::sleep(Duration::from_millis(20));
    }

    cluster
        .promote(EngineId::new(1))
        .expect("manual promotion of a killed engine succeeds");
    for (client, sentence) in &SENTENCES[4..] {
        cluster
            .injector(client)
            .expect("injector")
            .send(Value::from(*sentence));
    }
    cluster.finish_inputs();
    let outs = normalize(cluster.shutdown());
    assert_eq!(
        outs,
        failure_free_run(Duration::ZERO),
        "recovery transparent"
    );
}
