//! TART — Time-Aware Run-Time.
//!
//! A Rust reproduction of *"Deterministic Replay for Transparent Recovery in
//! Component-Oriented Middleware"* (Strom, Dorai, Feng, Zheng — ICDCS 2009):
//! component-oriented event-processing middleware in which networks of
//! stateful components execute **deterministically** by scheduling all
//! message handling in *virtual-time* order, making **checkpoint + replay**
//! a complete, low-overhead recovery mechanism.
//!
//! # The short version
//!
//! 1. Write components against [`Component`]: handle messages, keep state in
//!    checkpointable containers ([`CkptMap`], [`CkptCell`], [`CkptVec`]),
//!    report loop counts through [`Ctx::tick_block`].
//! 2. Wire them statically with [`AppSpec::builder`].
//! 3. Deploy with [`Cluster::deploy`] under a [`Placement`] and a
//!    [`ClusterConfig`] carrying per-component [`EstimatorSpec`]s.
//! 4. Feed external input through [`Injector`]s (timestamped and logged),
//!    collect external output, and let the runtime checkpoint to passive
//!    replicas. On a failure, [`Cluster::kill`] + [`Cluster::promote`]
//!    recovers transparently — downstream sees at most *output stutter*.
//!
//! # Example
//!
//! ```
//! use tart_core::prelude::*;
//!
//! // The paper's Fig 1 application: two word-count senders → merger.
//! let spec = reference::fan_in_app(2)?;
//! let placement = Placement::single_engine(&spec);
//! let mut config = ClusterConfig::logical_time();
//! for name in ["Sender1", "Sender2"] {
//!     let id = spec.component_by_name(name).unwrap().id();
//!     config = config.with_estimator(
//!         id,
//!         EstimatorSpec::per_iteration(reference::SENDER_LOOP_BLOCK, 61_000),
//!     );
//! }
//! let cluster = Cluster::deploy(spec, placement, config)?;
//! cluster.injector("client1").unwrap().send("the cat sat".into());
//! cluster.injector("client2").unwrap().send("on the mat".into());
//! cluster.finish_inputs();
//! let outputs = cluster.shutdown();
//! assert_eq!(outputs.len(), 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! # Crate map
//!
//! | Crate | Contents |
//! |-------|----------|
//! | [`tart_vtime`] | virtual time, intervals, wire clocks |
//! | [`tart_codec`] | canonical binary codec, CRC32 |
//! | [`tart_stats`] | deterministic RNG, distributions, regression |
//! | [`tart_model`] | components, payloads, topology, checkpointable state |
//! | [`tart_estimator`] | estimators, calibration, determinism faults |
//! | [`tart_silence`] | lazy/curiosity/aggressive/bias silence propagation |
//! | [`tart_sched`] | the deterministic pessimistic merge gate |
//! | [`tart_sim`] | the §III.A/§III.B discrete-event simulator |
//! | [`tart_engine`] | the real runtime: engines, checkpointing, failover |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use tart_codec;
pub use tart_engine;
pub use tart_estimator;
pub use tart_model;
pub use tart_sched;
pub use tart_silence;
pub use tart_sim;
pub use tart_stats;
pub use tart_vtime;

pub use tart_engine::{
    check_report, write_report, ChaosEvent, ChaosHandle, ChaosOptions, ChaosPlan, ChaosReport,
    CheckpointStore, Cluster, ClusterConfig, DeployError, DiskFault, DurabilityConfig,
    EngineMetrics, EngineRecovery, FailureDetector, FaultPlan, FsyncPolicy, Injector, LogicalClock,
    MessageLog, ObsEvent, ObsEventKind, ObsHub, ObsSnapshot, OutputRecord, Placement, RealClock,
    RecoveryReport, ReplicaStore, ReportRequirements, SupervisionConfig, SupervisionMetrics,
    TimeSource, Wal,
};
pub use tart_estimator::{
    Calibrator, DeterminismFault, Estimator, EstimatorSchedule, EstimatorSpec,
};
pub use tart_model::{
    reference, AppSpec, BlockId, CheckpointMode, CkptCell, CkptMap, CkptVec, Component, Ctx,
    Features, Instrumented, RestoreError, Snapshot, StateChunk, Value,
};
pub use tart_silence::SilencePolicy;
pub use tart_sim::{ExecMode, FanInSim, IterationDist, JitterModel, SimConfig, SimReport};
pub use tart_vtime::{
    ComponentId, EngineId, EventStamp, Interval, IntervalSet, PortId, VirtualDuration, VirtualTime,
    WireId,
};

/// The most common imports, for glob use.
pub mod prelude {
    pub use tart_engine::{
        ChaosOptions, ChaosPlan, Cluster, ClusterConfig, FaultPlan, Injector, OutputRecord,
        Placement, SupervisionConfig,
    };
    pub use tart_estimator::{Estimator, EstimatorSpec};
    pub use tart_model::{
        reference, AppSpec, BlockId, CheckpointMode, CkptCell, CkptMap, CkptVec, Component, Ctx,
        Features, RestoreError, Snapshot, Value,
    };
    pub use tart_silence::SilencePolicy;
    pub use tart_vtime::{ComponentId, EngineId, PortId, VirtualDuration, VirtualTime, WireId};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facade_reexports_are_usable() {
        let vt = VirtualTime::from_micros(1);
        let d = VirtualDuration::from_micros(1);
        assert_eq!((vt + d).as_ticks(), 2_000);
        let spec = reference::fan_in_app(1).unwrap();
        assert_eq!(spec.components().len(), 2);
        let _policy = SilencePolicy::Curiosity;
        let _mode = ExecMode::Deterministic;
    }

    #[test]
    fn prelude_compiles_for_glob_import() {
        #[allow(unused_imports)]
        use crate::prelude::*;
        let _ = Value::from("ok");
    }
}
