//! Deterministic 32-byte state hashing for verified replay.
//!
//! The paper's recovery argument is that deterministic re-execution
//! reconverges to the pre-crash state; until now the repo only checked this
//! indirectly, by diffing external outputs. [`StateHash`] makes
//! reconvergence a *runtime-checked invariant*: every checkpoint records a
//! hash of the complete engine state, and the recovery path recomputes and
//! compares it at every replay horizon (restore, promotion, cold restart).
//!
//! The hash is **not cryptographic** — the threat model is bit rot, torn
//! writes and replay divergence, not an adversary. What matters is that it
//! is *deterministic* (a pure function of the canonical codec encoding,
//! which the checkpointable containers already guarantee is identical for
//! equal state) and *sensitive* (any single-byte difference in the folded
//! stream flips the digest with overwhelming probability). It is built from
//! four independently seeded 64-bit multiply-xor-rotate lanes — no external
//! crates, in keeping with the workspace's zero-dependency core.

use std::fmt;

use bytes::{BufMut, BytesMut};
use tart_codec::{Decode, DecodeError, Encode, Reader};

/// A deterministic 32-byte digest of checkpointable state.
///
/// # Example
///
/// ```
/// use tart_model::{StateHash, StateHasher};
///
/// let mut h = StateHasher::new();
/// h.update(b"counts");
/// let a = h.finish();
/// assert_ne!(a, StateHash::ZERO);
/// // Same bytes, same digest:
/// let mut h2 = StateHasher::new();
/// h2.update(b"counts");
/// assert_eq!(a, h2.finish());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StateHash(pub [u8; 32]);

impl StateHash {
    /// The all-zero digest — the seed of a hash chain, never produced by
    /// [`StateHasher::finish`] for any input (the finalizer folds in a
    /// nonzero length tag).
    pub const ZERO: StateHash = StateHash([0u8; 32]);

    /// The digest bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Abbreviated hex form for logs and fault reports (first 8 bytes).
    pub fn short_hex(&self) -> String {
        self.0[..8].iter().map(|b| format!("{b:02x}")).collect()
    }
}

impl fmt::Debug for StateHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "StateHash({}…)", self.short_hex())
    }
}

impl fmt::Display for StateHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in &self.0 {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

impl Encode for StateHash {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_slice(&self.0);
    }
}

impl Decode for StateHash {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let mut bytes = [0u8; 32];
        for b in &mut bytes {
            *b = r.read_u8()?;
        }
        Ok(StateHash(bytes))
    }
}

/// Distinct odd seeds per lane (digits of well-known constants) so the four
/// lanes never agree even on empty input.
const SEEDS: [u64; 4] = [
    0x243F_6A88_85A3_08D3, // π
    0x1319_8A2E_0370_7344, // π
    0xA409_3822_299F_31D0, // π
    0x082E_FA98_EC4E_6C89, // π
];

/// Multiplicative constants per lane (odd, high-entropy).
const MULT: [u64; 4] = [
    0x9E37_79B9_7F4A_7C15, // golden ratio
    0xC2B2_AE3D_27D4_EB4F, // xxhash prime
    0xFF51_AFD7_ED55_8CCD, // murmur3 fmix
    0xC4CE_B9FE_1A85_EC53, // murmur3 fmix
];

/// Streaming hasher producing a [`StateHash`].
///
/// Feed it bytes in **canonical codec order** — the same discipline the
/// checkpointable containers use for full images (sorted map iteration,
/// fixed field order) — and the digest is a pure function of logical state,
/// independent of insertion order or journal history.
#[derive(Clone, Debug)]
pub struct StateHasher {
    lanes: [u64; 4],
    /// Partial word awaiting its remaining bytes (the digest depends only
    /// on the total byte stream, never on `update` call boundaries).
    buf: [u8; 8],
    buf_len: usize,
    /// Completed 8-byte words absorbed so far (selects the lane).
    words: u64,
    /// Total bytes absorbed (folded into the finalizer so streams that are
    /// prefixes of one another cannot collide trivially).
    len: u64,
}

impl Default for StateHasher {
    fn default() -> Self {
        StateHasher::new()
    }
}

impl StateHasher {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        StateHasher {
            lanes: SEEDS,
            buf: [0u8; 8],
            buf_len: 0,
            words: 0,
            len: 0,
        }
    }

    /// Absorbs `bytes` into the digest.
    pub fn update(&mut self, mut bytes: &[u8]) {
        self.len = self.len.wrapping_add(bytes.len() as u64);
        // Complete a pending partial word first.
        if self.buf_len > 0 {
            let need = 8 - self.buf_len;
            let take = need.min(bytes.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&bytes[..take]);
            self.buf_len += take;
            bytes = &bytes[take..];
            if self.buf_len == 8 {
                let word = u64::from_le_bytes(self.buf);
                self.absorb_word(word);
                self.buf_len = 0;
            }
        }
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            self.absorb_word(word);
        }
        let rem = chunks.remainder();
        self.buf[..rem.len()].copy_from_slice(rem);
        self.buf_len = rem.len();
    }

    /// Absorbs another digest — used to fold per-section hashes into a
    /// combined engine-level digest, and to build hash chains.
    pub fn update_hash(&mut self, hash: &StateHash) {
        self.update(&hash.0);
    }

    /// Finalizes the digest.
    pub fn finish(mut self) -> StateHash {
        // Absorb the trailing partial word (if any), tagged with its length
        // so a short tail can never alias a zero-padded full word.
        if self.buf_len > 0 {
            let mut tail = [0u8; 8];
            tail[..self.buf_len].copy_from_slice(&self.buf[..self.buf_len]);
            tail[7] = tail[7].wrapping_add(self.buf_len as u8).wrapping_add(1);
            self.absorb_word(u64::from_le_bytes(tail));
        }
        // Fold the length and cross-mix the lanes so every input byte
        // affects all 32 output bytes.
        let len = self.len;
        for (i, mult) in MULT.iter().enumerate() {
            self.absorb(i, len ^ mult);
        }
        for round in 0..2 {
            for i in 0..4 {
                let neighbour = self.lanes[(i + 1 + round) & 3];
                self.absorb(i, neighbour);
            }
        }
        let mut out = [0u8; 32];
        for (i, lane) in self.lanes.iter().enumerate() {
            out[i * 8..(i + 1) * 8].copy_from_slice(&mix(*lane).to_le_bytes());
        }
        StateHash(out)
    }

    fn absorb_word(&mut self, word: u64) {
        let lane = (self.words & 3) as usize;
        self.words = self.words.wrapping_add(1);
        self.absorb(lane, word);
    }

    fn absorb(&mut self, lane: usize, word: u64) {
        let v = (self.lanes[lane] ^ word).wrapping_mul(MULT[lane]);
        self.lanes[lane] = v.rotate_left(27) ^ (v >> 31);
    }
}

/// Final avalanche (murmur3 fmix64): every input bit flips each output bit
/// with probability ≈½.
fn mix(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 33;
    x = x.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    x ^= x >> 33;
    x
}

/// State that can fold itself into a [`StateHasher`] in canonical order
/// without mutating itself (unlike `take_chunk`, which consumes journals).
///
/// Implemented by the checkpointable containers ([`crate::CkptCell`],
/// [`crate::CkptMap`], [`crate::CkptVec`]) and by [`crate::Snapshot`];
/// components built from the containers get a deterministic state hash by
/// folding each field in declaration order.
pub trait FoldState {
    /// Folds this value's canonical encoding into `hasher`.
    fn fold_state(&self, hasher: &mut StateHasher);
}

/// Convenience: the digest of one encodable value.
pub fn hash_of(value: &impl Encode) -> StateHash {
    let mut h = StateHasher::new();
    h.update(&value.to_bytes());
    h.finish()
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::{Snapshot, StateChunk};
    use proptest::prelude::*;
    use tart_codec::Decode;
    use tart_vtime::VirtualTime;

    fn arb_chunk() -> impl Strategy<Value = StateChunk> {
        prop_oneof![
            proptest::collection::vec(any::<u8>(), 0..48).prop_map(StateChunk::Full),
            proptest::collection::vec(any::<u8>(), 0..48).prop_map(StateChunk::Delta),
        ]
    }

    fn arb_snapshot() -> impl Strategy<Value = Snapshot> {
        (
            0u64..1_000_000,
            proptest::collection::btree_map("[a-z]{1,8}", arb_chunk(), 0..4),
        )
            .prop_map(|(vt, fields)| {
                let mut s = Snapshot::new(VirtualTime::from_ticks(vt));
                for (k, c) in fields {
                    s.put(&k, c);
                }
                s
            })
    }

    proptest! {
        /// The hash is a function of the canonical encoding, so shipping
        /// state through the codec — exactly what soft checkpointing does —
        /// must never change its digest. A hash that drifted across
        /// serialization would raise phantom divergences on every restore.
        #[test]
        fn state_hash_is_stable_across_codec_round_trip(snap in arb_snapshot()) {
            let back = Snapshot::from_bytes(&snap.to_bytes()).expect("snapshot decodes");
            prop_assert_eq!(back.state_hash(), snap.state_hash());
        }

        /// Flipping any single byte of any state chunk changes the digest:
        /// the divergence detector must not have blind spots at any offset
        /// of the checkpointed payload.
        #[test]
        fn single_byte_state_mutation_changes_hash(
            snap in arb_snapshot(),
            field_seed in any::<u64>(),
            pos_seed in any::<u64>(),
            flip in 1u8..=255,
        ) {
            let mutable: Vec<String> = snap
                .iter()
                .filter(|(_, c)| !c.bytes().is_empty())
                .map(|(k, _)| k.to_owned())
                .collect();
            // The proptest shim has no prop_assume; a snapshot with no
            // mutable payload is vacuously out of scope for this property.
            if mutable.is_empty() {
                return;
            }
            let field = &mutable[(field_seed % mutable.len() as u64) as usize];
            let original = snap.state_hash();

            let mut mutated = snap.clone();
            let chunk = snap
                .iter()
                .find(|(k, _)| k == field)
                .map(|(_, c)| c.clone())
                .expect("field present");
            let mut bytes = chunk.bytes().to_vec();
            let pos = (pos_seed % bytes.len() as u64) as usize;
            bytes[pos] ^= flip;
            let flipped = match chunk {
                StateChunk::Full(_) => StateChunk::Full(bytes),
                StateChunk::Delta(_) => StateChunk::Delta(bytes),
            };
            mutated.put(field, flipped);
            prop_assert_ne!(mutated.state_hash(), original);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_order_sensitive() {
        let mut a = StateHasher::new();
        a.update(b"hello");
        a.update(b"world");
        let mut b = StateHasher::new();
        b.update(b"helloworld");
        // Same total stream, different call boundaries: same digest.
        assert_eq!(a.finish(), b.finish());

        let mut c = StateHasher::new();
        c.update(b"worldhello");
        let mut d = StateHasher::new();
        d.update(b"helloworld");
        assert_ne!(c.finish(), d.finish(), "order matters");
    }

    #[test]
    fn empty_input_is_not_zero() {
        assert_ne!(StateHasher::new().finish(), StateHash::ZERO);
    }

    #[test]
    fn single_bit_flip_changes_digest() {
        let base: Vec<u8> = (0..97u8).collect();
        let reference = {
            let mut h = StateHasher::new();
            h.update(&base);
            h.finish()
        };
        for i in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[i] ^= 1 << bit;
                let mut h = StateHasher::new();
                h.update(&flipped);
                assert_ne!(
                    h.finish(),
                    reference,
                    "flipping byte {i} bit {bit} must change the digest"
                );
            }
        }
    }

    #[test]
    fn length_extension_prefixes_differ() {
        let mut a = StateHasher::new();
        a.update(b"abc");
        let mut b = StateHasher::new();
        b.update(b"abc\0");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn codec_round_trip() {
        let mut h = StateHasher::new();
        h.update(b"state");
        let digest = h.finish();
        let bytes = digest.to_bytes();
        assert_eq!(bytes.len(), 32);
        assert_eq!(StateHash::from_bytes(&bytes).unwrap(), digest);
    }

    #[test]
    fn display_and_debug() {
        let digest = StateHash([0xAB; 32]);
        assert_eq!(digest.to_string().len(), 64);
        assert!(digest.to_string().starts_with("abab"));
        assert_eq!(digest.short_hex(), "abababababababab");
        assert!(format!("{digest:?}").contains("abab"));
    }

    #[test]
    fn update_hash_folds() {
        let inner = hash_of(&42u64);
        let mut a = StateHasher::new();
        a.update_hash(&inner);
        let mut b = StateHasher::new();
        b.update(inner.as_bytes());
        assert_eq!(a.finish(), b.finish());
    }
}
