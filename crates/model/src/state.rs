//! Checkpointable state containers.
//!
//! TART components keep state "in ordinary instance variables" rather than
//! special transactional objects (§I.B). These containers are the Rust
//! rendering of that promise: they behave like a value, a map, and a vector,
//! while transparently journaling updates so the runtime can take cheap
//! *incremental* checkpoints (§II.F.2) between full ones.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use bytes::{BufMut, BytesMut};
use tart_codec::{Decode, DecodeError, Encode, Reader};

use crate::{CheckpointMode, FoldState, StateChunk, StateHasher};

/// A single checkpointable value.
///
/// # Example
///
/// ```
/// use tart_model::{CheckpointMode, CkptCell};
///
/// let mut total = CkptCell::new(0i64);
/// total.set(5);
/// let chunk = total.take_chunk(CheckpointMode::Incremental).expect("dirty");
/// // Unchanged since the checkpoint: nothing to ship.
/// assert!(total.take_chunk(CheckpointMode::Incremental).is_none());
///
/// let mut replica = CkptCell::new(0i64);
/// replica.apply_chunk(&chunk)?;
/// assert_eq!(*replica.get(), 5);
/// # Ok::<(), tart_codec::DecodeError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CkptCell<T> {
    value: T,
    dirty: bool,
}

impl<T> CkptCell<T> {
    /// Creates a cell holding `value`. The cell starts dirty so the first
    /// checkpoint always captures it.
    pub fn new(value: T) -> Self {
        CkptCell { value, dirty: true }
    }

    /// Borrows the current value.
    pub fn get(&self) -> &T {
        &self.value
    }

    /// Replaces the value, marking the cell dirty.
    pub fn set(&mut self, value: T) {
        self.value = value;
        self.dirty = true;
    }

    /// Updates the value in place, marking the cell dirty.
    pub fn update(&mut self, f: impl FnOnce(&mut T)) {
        f(&mut self.value);
        self.dirty = true;
    }

    /// Whether the value changed since the last checkpoint.
    pub fn is_dirty(&self) -> bool {
        self.dirty
    }
}

impl<T: Encode + Decode> CkptCell<T> {
    /// Captures this cell's checkpoint contribution.
    ///
    /// Cells are atomic: an incremental checkpoint either omits the cell
    /// (clean) or ships its full encoding (dirty).
    pub fn take_chunk(&mut self, mode: CheckpointMode) -> Option<StateChunk> {
        match mode {
            CheckpointMode::Full => {
                self.dirty = false;
                Some(StateChunk::Full(self.value.to_bytes()))
            }
            CheckpointMode::Incremental => {
                if self.dirty {
                    self.dirty = false;
                    Some(StateChunk::Full(self.value.to_bytes()))
                } else {
                    None
                }
            }
        }
    }

    /// Applies a restored chunk.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] if the payload is corrupt or the chunk is a
    /// delta (cells never emit deltas).
    pub fn apply_chunk(&mut self, chunk: &StateChunk) -> Result<(), DecodeError> {
        match chunk {
            StateChunk::Full(bytes) => {
                self.value = T::from_bytes(bytes)?;
                self.dirty = false;
                Ok(())
            }
            StateChunk::Delta(_) => Err(DecodeError::InvalidTag {
                tag: 1,
                type_name: "CkptCell (cells never emit deltas)",
            }),
        }
    }
}

impl<T: Default> Default for CkptCell<T> {
    fn default() -> Self {
        CkptCell::new(T::default())
    }
}

impl<T: Encode> FoldState for CkptCell<T> {
    /// Folds the value's canonical encoding — identical bytes to the cell's
    /// full checkpoint image, but without touching the dirty flag.
    fn fold_state(&self, hasher: &mut StateHasher) {
        hasher.update(&self.value.to_bytes());
    }
}

/// Journal operation for [`CkptMap`].
#[derive(Clone, Debug, PartialEq)]
enum MapOp<K, V> {
    Insert(K, V),
    Remove(K),
    Clear,
}

impl<K: Encode, V: Encode> Encode for MapOp<K, V> {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            MapOp::Insert(k, v) => {
                buf.put_u8(0);
                k.encode(buf);
                v.encode(buf);
            }
            MapOp::Remove(k) => {
                buf.put_u8(1);
                k.encode(buf);
            }
            MapOp::Clear => buf.put_u8(2),
        }
    }
}

impl<K: Decode, V: Decode> Decode for MapOp<K, V> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.read_u8()? {
            0 => Ok(MapOp::Insert(K::decode(r)?, V::decode(r)?)),
            1 => Ok(MapOp::Remove(K::decode(r)?)),
            2 => Ok(MapOp::Clear),
            tag => Err(DecodeError::InvalidTag {
                tag,
                type_name: "MapOp",
            }),
        }
    }
}

/// A checkpointable hash map with incremental-delta support.
///
/// This is the paper's motivating case: "for large structures like hash
/// tables needing incremental checkpointing, updates since the last
/// checkpoint are stored in an auxiliary structure" (§II.F.2). Updates are
/// journaled; an incremental checkpoint ships only the journal (falling
/// back to a full image when the journal grows past twice the map size).
///
/// The map is `BTreeMap`-backed so that *everything* about it is
/// deterministic: iteration order, checkpoint-image bytes, and any
/// component behaviour derived from walking the entries. (A hash-backed
/// map is one `iter()` away from a replay divergence; see DESIGN.md §11.)
///
/// # Example
///
/// ```
/// use tart_model::{CheckpointMode, CkptMap};
///
/// let mut counts: CkptMap<String, u64> = CkptMap::new();
/// counts.insert("the".into(), 1);
/// let full = counts.take_chunk(CheckpointMode::Full).expect("first full");
/// counts.insert("cat".into(), 1);
/// let delta = counts.take_chunk(CheckpointMode::Incremental).expect("journal");
///
/// let mut replica: CkptMap<String, u64> = CkptMap::new();
/// replica.apply_chunk(&full)?;
/// replica.apply_chunk(&delta)?;
/// assert_eq!(replica.get("cat"), Some(&1));
/// # Ok::<(), tart_codec::DecodeError>(())
/// ```
#[derive(Clone)]
pub struct CkptMap<K, V> {
    map: BTreeMap<K, V>,
    journal: Vec<MapOp<K, V>>,
    /// Set when the journal alone cannot reconstruct the state (fresh
    /// container that has never shipped a full image).
    needs_full: bool,
    /// Incremental content digest: the mod-2⁶⁴ sum of one contribution per
    /// entry. Keys touched since the last [`CkptMap::digest`] wait in
    /// `digest_dirty`; their cached contributions are swapped out lazily,
    /// so a digest costs O(touched entries), not O(map).
    digest_acc: u64,
    digest_cache: BTreeMap<K, u64>,
    digest_dirty: BTreeSet<K>,
}

impl<K, V> CkptMap<K, V>
where
    K: Ord + Clone + Encode + Decode,
    V: Clone + Encode + Decode,
{
    /// Creates an empty map.
    pub fn new() -> Self {
        CkptMap {
            map: BTreeMap::new(),
            journal: Vec::new(),
            needs_full: true,
            digest_acc: 0,
            digest_cache: BTreeMap::new(),
            digest_dirty: BTreeSet::new(),
        }
    }

    /// Inserts a key/value pair, journaling the update. Returns the previous
    /// value, if any.
    pub fn insert(&mut self, k: K, v: V) -> Option<V> {
        self.journal.push(MapOp::Insert(k.clone(), v.clone()));
        if !self.digest_dirty.contains(&k) {
            self.digest_dirty.insert(k.clone());
        }
        self.map.insert(k, v)
    }

    /// Removes a key, journaling the update.
    pub fn remove(&mut self, k: &K) -> Option<V> {
        let prev = self.map.remove(k);
        if prev.is_some() {
            self.journal.push(MapOp::Remove(k.clone()));
            self.digest_dirty.insert(k.clone());
        }
        prev
    }

    /// Clears the map, journaling the update.
    pub fn clear(&mut self) {
        if !self.map.is_empty() {
            self.journal.push(MapOp::Clear);
            self.map.clear();
        }
        self.reset_digest();
    }

    fn reset_digest(&mut self) {
        self.digest_acc = 0;
        self.digest_cache.clear();
        self.digest_dirty.clear();
    }

    /// A deterministic 64-bit digest of the current content, maintained
    /// incrementally: each entry contributes a hash of its canonical
    /// `(key, value)` encoding, and contributions sum mod 2⁶⁴ — a pure,
    /// order-independent function of logical state. Amortized cost is
    /// O(entries touched since the last call), which is what makes
    /// per-checkpoint state hashing affordable on maps that grow with the
    /// message history (see DESIGN.md §15).
    pub fn digest(&mut self) -> u64 {
        for k in std::mem::take(&mut self.digest_dirty) {
            if let Some(old) = self.digest_cache.remove(&k) {
                self.digest_acc = self.digest_acc.wrapping_sub(old);
            }
            if let Some(v) = self.map.get(&k) {
                let c = Self::entry_digest(&k, v);
                self.digest_acc = self.digest_acc.wrapping_add(c);
                self.digest_cache.insert(k, c);
            }
        }
        self.digest_acc
    }

    fn entry_digest(k: &K, v: &V) -> u64 {
        let mut buf = BytesMut::new();
        k.encode(&mut buf);
        v.encode(&mut buf);
        let mut h = StateHasher::new();
        h.update(&buf);
        let hash = h.finish();
        u64::from_le_bytes(hash.as_bytes()[..8].try_into().expect("8 bytes"))
    }

    /// Looks up a key.
    pub fn get<Q>(&self, k: &Q) -> Option<&V>
    where
        K: std::borrow::Borrow<Q>,
        Q: Ord + ?Sized,
    {
        self.map.get(k)
    }

    /// Returns `true` if the key is present.
    pub fn contains_key<Q>(&self, k: &Q) -> bool
    where
        K: std::borrow::Borrow<Q>,
        Q: Ord + ?Sized,
    {
        self.map.contains_key(k)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Returns `true` if the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates over entries in ascending key order. The order is
    /// deterministic, so component behaviour may safely depend on it.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.map.iter()
    }

    /// Number of journaled updates awaiting the next incremental checkpoint.
    pub fn journal_len(&self) -> usize {
        self.journal.len()
    }

    /// Captures this map's checkpoint contribution.
    ///
    /// Full mode (or a journal larger than the map, or a map that has never
    /// shipped a full image) produces a self-contained canonical image;
    /// otherwise the journal ships as a delta. Either way the journal is
    /// drained.
    pub fn take_chunk(&mut self, mode: CheckpointMode) -> Option<StateChunk> {
        let force_full = mode == CheckpointMode::Full
            || self.needs_full
            || self.journal.len() > self.map.len().saturating_mul(2);
        if force_full {
            self.journal.clear();
            self.needs_full = false;
            // BTreeMap iteration is already ascending-key, so the image is
            // canonical without an extra sort.
            let mut buf = BytesMut::new();
            (self.map.len() as u64).encode(&mut buf);
            for (k, v) in &self.map {
                k.encode(&mut buf);
                v.encode(&mut buf);
            }
            Some(StateChunk::Full(buf.to_vec()))
        } else if self.journal.is_empty() {
            None
        } else {
            let delta = self.journal.to_bytes();
            self.journal.clear();
            Some(StateChunk::Delta(delta))
        }
    }

    /// Applies a restored chunk (full image or journal delta).
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] if the payload is corrupt.
    pub fn apply_chunk(&mut self, chunk: &StateChunk) -> Result<(), DecodeError> {
        match chunk {
            StateChunk::Full(bytes) => {
                self.map = BTreeMap::from_bytes(bytes)?;
                self.journal.clear();
                self.needs_full = false;
                // Restored content replaces everything: rebuild the digest
                // lazily by marking every surviving key touched.
                self.reset_digest();
                self.digest_dirty = self.map.keys().cloned().collect();
                Ok(())
            }
            StateChunk::Delta(bytes) => {
                let ops: Vec<MapOp<K, V>> = Vec::from_bytes(bytes)?;
                for op in ops {
                    match op {
                        MapOp::Insert(k, v) => {
                            self.digest_dirty.insert(k.clone());
                            self.map.insert(k, v);
                        }
                        MapOp::Remove(k) => {
                            self.digest_dirty.insert(k.clone());
                            self.map.remove(&k);
                        }
                        MapOp::Clear => {
                            self.map.clear();
                            self.reset_digest();
                        }
                    }
                }
                Ok(())
            }
        }
    }
}

impl<K, V> Default for CkptMap<K, V>
where
    K: Ord + Clone + Encode + Decode,
    V: Clone + Encode + Decode,
{
    fn default() -> Self {
        CkptMap::new()
    }
}

impl<K: Encode, V: Encode> FoldState for CkptMap<K, V> {
    /// Folds the canonical full image (length, then ascending-key pairs) —
    /// identical bytes to a full checkpoint chunk, but without draining the
    /// journal. Equal logical state always folds identically, whatever the
    /// update history.
    fn fold_state(&self, hasher: &mut StateHasher) {
        let mut buf = BytesMut::new();
        (self.map.len() as u64).encode(&mut buf);
        for (k, v) in &self.map {
            k.encode(&mut buf);
            v.encode(&mut buf);
        }
        hasher.update(&buf);
    }
}

impl<K, V> fmt::Debug for CkptMap<K, V>
where
    K: fmt::Debug,
    V: fmt::Debug,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CkptMap")
            .field("entries", &self.map.len())
            .field("journal", &self.journal.len())
            .finish()
    }
}

impl<K, V> PartialEq for CkptMap<K, V>
where
    K: PartialEq,
    V: PartialEq,
{
    /// Equality compares logical contents only, not journal state.
    fn eq(&self, other: &Self) -> bool {
        self.map == other.map
    }
}

/// Journal operation for [`CkptVec`].
#[derive(Clone, Debug, PartialEq)]
enum VecOp<T> {
    Push(T),
    Pop,
    Set(u64, T),
    Clear,
}

impl<T: Encode> Encode for VecOp<T> {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            VecOp::Push(v) => {
                buf.put_u8(0);
                v.encode(buf);
            }
            VecOp::Pop => buf.put_u8(1),
            VecOp::Set(i, v) => {
                buf.put_u8(2);
                i.encode(buf);
                v.encode(buf);
            }
            VecOp::Clear => buf.put_u8(3),
        }
    }
}

impl<T: Decode> Decode for VecOp<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.read_u8()? {
            0 => Ok(VecOp::Push(T::decode(r)?)),
            1 => Ok(VecOp::Pop),
            2 => Ok(VecOp::Set(u64::decode(r)?, T::decode(r)?)),
            3 => Ok(VecOp::Clear),
            tag => Err(DecodeError::InvalidTag {
                tag,
                type_name: "VecOp",
            }),
        }
    }
}

/// A checkpointable vector with incremental-delta support.
///
/// Suits append-mostly state such as event windows and recent-history
/// buffers.
#[derive(Clone)]
pub struct CkptVec<T> {
    vec: Vec<T>,
    journal: Vec<VecOp<T>>,
    needs_full: bool,
}

impl<T> CkptVec<T>
where
    T: Clone + Encode + Decode,
{
    /// Creates an empty vector.
    pub fn new() -> Self {
        CkptVec {
            vec: Vec::new(),
            journal: Vec::new(),
            needs_full: true,
        }
    }

    /// Appends an element, journaling the update.
    pub fn push(&mut self, v: T) {
        self.journal.push(VecOp::Push(v.clone()));
        self.vec.push(v);
    }

    /// Removes and returns the last element, journaling the update.
    pub fn pop(&mut self) -> Option<T> {
        let out = self.vec.pop();
        if out.is_some() {
            self.journal.push(VecOp::Pop);
        }
        out
    }

    /// Replaces the element at `idx`, journaling the update.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    pub fn set(&mut self, idx: usize, v: T) {
        assert!(idx < self.vec.len(), "index {idx} out of bounds");
        self.journal.push(VecOp::Set(idx as u64, v.clone()));
        self.vec[idx] = v;
    }

    /// Clears the vector, journaling the update.
    pub fn clear(&mut self) {
        if !self.vec.is_empty() {
            self.journal.push(VecOp::Clear);
            self.vec.clear();
        }
    }

    /// Element access.
    pub fn get(&self, idx: usize) -> Option<&T> {
        self.vec.get(idx)
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.vec.len()
    }

    /// Returns `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.vec.is_empty()
    }

    /// Iterates over elements in order.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.vec.iter()
    }

    /// Borrows the contents as a slice.
    pub fn as_slice(&self) -> &[T] {
        &self.vec
    }

    /// Captures this vector's checkpoint contribution (see
    /// [`CkptMap::take_chunk`] for the full/delta policy).
    pub fn take_chunk(&mut self, mode: CheckpointMode) -> Option<StateChunk> {
        let force_full = mode == CheckpointMode::Full
            || self.needs_full
            || self.journal.len() > self.vec.len().saturating_mul(2);
        if force_full {
            self.journal.clear();
            self.needs_full = false;
            Some(StateChunk::Full(self.vec.to_bytes()))
        } else if self.journal.is_empty() {
            None
        } else {
            let delta = self.journal.to_bytes();
            self.journal.clear();
            Some(StateChunk::Delta(delta))
        }
    }

    /// Applies a restored chunk (full image or journal delta).
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] if the payload is corrupt or a delta
    /// references an out-of-range index.
    pub fn apply_chunk(&mut self, chunk: &StateChunk) -> Result<(), DecodeError> {
        match chunk {
            StateChunk::Full(bytes) => {
                self.vec = Vec::from_bytes(bytes)?;
                self.journal.clear();
                self.needs_full = false;
                Ok(())
            }
            StateChunk::Delta(bytes) => {
                let ops: Vec<VecOp<T>> = Vec::from_bytes(bytes)?;
                for op in ops {
                    match op {
                        VecOp::Push(v) => self.vec.push(v),
                        VecOp::Pop => {
                            self.vec.pop();
                        }
                        VecOp::Set(i, v) => {
                            let idx = i as usize;
                            if idx >= self.vec.len() {
                                return Err(DecodeError::LengthOverflow { declared: i });
                            }
                            self.vec[idx] = v;
                        }
                        VecOp::Clear => self.vec.clear(),
                    }
                }
                Ok(())
            }
        }
    }
}

impl<T: Clone + Encode + Decode> Default for CkptVec<T> {
    fn default() -> Self {
        CkptVec::new()
    }
}

impl<T: Encode> FoldState for CkptVec<T> {
    /// Folds the canonical full image — identical bytes to a full checkpoint
    /// chunk, but without draining the journal.
    fn fold_state(&self, hasher: &mut StateHasher) {
        hasher.update(&self.vec.to_bytes());
    }
}

impl<T: fmt::Debug> fmt::Debug for CkptVec<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CkptVec")
            .field("len", &self.vec.len())
            .field("journal", &self.journal.len())
            .finish()
    }
}

impl<T: PartialEq> PartialEq for CkptVec<T> {
    /// Equality compares logical contents only, not journal state.
    fn eq(&self, other: &Self) -> bool {
        self.vec == other.vec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_digest_tracks_content_not_history() {
        let mut a: CkptMap<String, u64> = CkptMap::new();
        let mut b: CkptMap<String, u64> = CkptMap::new();
        a.insert("x".into(), 1);
        a.insert("y".into(), 2);
        a.insert("x".into(), 3);
        b.insert("y".into(), 2);
        b.insert("x".into(), 3);
        b.insert("z".into(), 9);
        b.remove(&"z".to_string());
        assert_eq!(
            a.digest(),
            b.digest(),
            "equal content must digest equally, whatever the update history"
        );
        a.insert("y".into(), 5);
        assert_ne!(a.digest(), b.digest(), "divergent content must differ");
        a.clear();
        let fresh: u64 = CkptMap::<String, u64>::new().digest();
        assert_eq!(a.digest(), fresh, "cleared map digests like an empty one");
    }

    #[test]
    fn map_digest_survives_checkpoint_restore_round_trip() {
        let mut primary: CkptMap<String, u64> = CkptMap::new();
        for (i, w) in ["alpha", "beta", "gamma"].iter().enumerate() {
            primary.insert((*w).into(), i as u64);
        }
        let full = primary.take_chunk(CheckpointMode::Full).expect("full");
        primary.insert("delta".into(), 7);
        primary.remove(&"beta".to_string());
        let delta = primary
            .take_chunk(CheckpointMode::Incremental)
            .expect("delta");

        let mut replica: CkptMap<String, u64> = CkptMap::new();
        replica.apply_chunk(&full).expect("applies full");
        replica.apply_chunk(&delta).expect("applies delta");
        assert_eq!(
            replica.digest(),
            primary.digest(),
            "a restored replica must digest identically to the primary"
        );
    }

    #[test]
    fn cell_dirty_tracking() {
        let mut c = CkptCell::new(10u64);
        assert!(c.is_dirty(), "fresh cells are dirty");
        assert!(c.take_chunk(CheckpointMode::Incremental).is_some());
        assert!(!c.is_dirty());
        assert!(c.take_chunk(CheckpointMode::Incremental).is_none());
        c.update(|v| *v += 1);
        assert_eq!(*c.get(), 11);
        assert!(c.take_chunk(CheckpointMode::Incremental).is_some());
        // Full mode always captures.
        assert!(c.take_chunk(CheckpointMode::Full).is_some());
    }

    #[test]
    fn cell_rejects_delta_chunk() {
        let mut c = CkptCell::new(0u8);
        assert!(c.apply_chunk(&StateChunk::Delta(vec![])).is_err());
    }

    #[test]
    fn cell_restore_round_trip() {
        let mut c = CkptCell::new(String::from("hello"));
        let chunk = c.take_chunk(CheckpointMode::Full).unwrap();
        let mut r = CkptCell::new(String::new());
        r.apply_chunk(&chunk).unwrap();
        assert_eq!(r.get(), "hello");
        assert!(!r.is_dirty());
    }

    #[test]
    fn map_basic_operations() {
        let mut m: CkptMap<String, u64> = CkptMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert("a".into(), 1), None);
        assert_eq!(m.insert("a".into(), 2), Some(1));
        assert_eq!(m.get("a"), Some(&2));
        assert!(m.contains_key("a"));
        assert_eq!(m.len(), 1);
        assert_eq!(m.remove(&"a".to_string()), Some(2));
        assert_eq!(m.remove(&"a".to_string()), None);
        assert!(m.iter().next().is_none());
    }

    #[test]
    fn map_incremental_chain_equals_full() {
        let mut live: CkptMap<String, u64> = CkptMap::new();
        let mut replica: CkptMap<String, u64> = CkptMap::new();

        live.insert("the".into(), 1);
        live.insert("cat".into(), 1);
        let full = live.take_chunk(CheckpointMode::Full).unwrap();
        assert!(full.is_full());
        replica.apply_chunk(&full).unwrap();

        live.insert("the".into(), 2);
        live.remove(&"cat".to_string());
        live.insert("dog".into(), 5);
        let delta = live.take_chunk(CheckpointMode::Incremental).unwrap();
        assert!(!delta.is_full(), "small journal ships as delta");
        replica.apply_chunk(&delta).unwrap();

        assert_eq!(replica, live);
        assert_eq!(replica.get("the"), Some(&2));
        assert_eq!(replica.get("cat"), None);
        assert_eq!(replica.get("dog"), Some(&5));
    }

    #[test]
    fn map_first_incremental_is_full() {
        // A fresh map has never shipped a full image, so even in
        // incremental mode the first chunk must be self-contained.
        let mut m: CkptMap<u32, u32> = CkptMap::new();
        m.insert(1, 1);
        let chunk = m.take_chunk(CheckpointMode::Incremental).unwrap();
        assert!(chunk.is_full());
    }

    #[test]
    fn map_large_journal_falls_back_to_full() {
        let mut m: CkptMap<u32, u32> = CkptMap::new();
        m.insert(1, 1);
        let _ = m.take_chunk(CheckpointMode::Full);
        // Churn one key many times: journal exceeds map size.
        for i in 0..10 {
            m.insert(1, i);
        }
        let chunk = m.take_chunk(CheckpointMode::Incremental).unwrap();
        assert!(chunk.is_full(), "journal larger than map ships full image");
    }

    #[test]
    fn map_clean_incremental_is_none() {
        let mut m: CkptMap<u32, u32> = CkptMap::new();
        m.insert(1, 1);
        let _ = m.take_chunk(CheckpointMode::Full);
        assert!(m.take_chunk(CheckpointMode::Incremental).is_none());
    }

    #[test]
    fn map_clear_journals() {
        let mut live: CkptMap<u32, u32> = CkptMap::new();
        let mut replica: CkptMap<u32, u32> = CkptMap::new();
        live.insert(1, 1);
        live.insert(2, 2);
        replica
            .apply_chunk(&live.take_chunk(CheckpointMode::Full).unwrap())
            .unwrap();
        live.clear();
        live.insert(3, 3);
        replica
            .apply_chunk(&live.take_chunk(CheckpointMode::Incremental).unwrap())
            .unwrap();
        assert_eq!(replica, live);
        assert_eq!(replica.len(), 1);
        // Clearing an empty map journals nothing.
        let before = live.journal_len();
        live.clear();
        live.clear();
        assert!(live.journal_len() <= before + 1);
    }

    #[test]
    fn map_full_image_is_canonical() {
        let mut a: CkptMap<String, u64> = CkptMap::new();
        let mut b: CkptMap<String, u64> = CkptMap::new();
        a.insert("x".into(), 1);
        a.insert("y".into(), 2);
        b.insert("y".into(), 2);
        b.insert("x".into(), 1);
        let ca = a.take_chunk(CheckpointMode::Full).unwrap();
        let cb = b.take_chunk(CheckpointMode::Full).unwrap();
        assert_eq!(
            ca.bytes(),
            cb.bytes(),
            "equal state ⇒ equal checkpoint bytes"
        );
    }

    #[test]
    fn map_corrupt_chunk_is_error() {
        let mut m: CkptMap<u32, u32> = CkptMap::new();
        assert!(m.apply_chunk(&StateChunk::Full(vec![0xff, 0xff])).is_err());
        assert!(m.apply_chunk(&StateChunk::Delta(vec![0x01, 9])).is_err());
    }

    #[test]
    fn vec_basic_operations() {
        let mut v: CkptVec<u32> = CkptVec::new();
        assert!(v.is_empty());
        v.push(1);
        v.push(2);
        v.set(0, 10);
        assert_eq!(v.len(), 2);
        assert_eq!(v.get(0), Some(&10));
        assert_eq!(v.as_slice(), &[10, 2]);
        assert_eq!(v.pop(), Some(2));
        assert_eq!(v.iter().copied().collect::<Vec<_>>(), vec![10]);
        v.clear();
        assert!(v.is_empty());
        assert_eq!(v.pop(), None);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn vec_set_out_of_bounds_panics() {
        let mut v: CkptVec<u32> = CkptVec::new();
        v.set(0, 1);
    }

    #[test]
    fn vec_incremental_chain_equals_full() {
        let mut live: CkptVec<String> = CkptVec::new();
        let mut replica: CkptVec<String> = CkptVec::new();
        live.push("a".into());
        replica
            .apply_chunk(&live.take_chunk(CheckpointMode::Full).unwrap())
            .unwrap();
        live.push("b".into());
        live.set(0, "a2".into());
        let delta = live.take_chunk(CheckpointMode::Incremental).unwrap();
        assert!(!delta.is_full());
        replica.apply_chunk(&delta).unwrap();
        assert_eq!(replica, live);
        assert_eq!(replica.as_slice(), &["a2".to_string(), "b".to_string()]);
        live.pop();
        let delta2 = live.take_chunk(CheckpointMode::Incremental).unwrap();
        replica.apply_chunk(&delta2).unwrap();
        assert_eq!(replica, live);
        assert_eq!(replica.as_slice(), &["a2".to_string()]);
    }

    #[test]
    fn vec_delta_with_bad_index_is_error() {
        let ops: Vec<VecOp<u32>> = vec![VecOp::Set(5, 1)];
        let mut v: CkptVec<u32> = CkptVec::new();
        assert!(v.apply_chunk(&StateChunk::Delta(ops.to_bytes())).is_err());
    }

    #[test]
    fn fold_state_matches_full_image_without_side_effects() {
        use crate::StateHasher;
        let hash_of_bytes = |bytes: &[u8]| {
            let mut h = StateHasher::new();
            h.update(bytes);
            h.finish()
        };

        let mut m: CkptMap<String, u64> = CkptMap::new();
        m.insert("a".into(), 1);
        m.insert("b".into(), 2);
        let journal_before = m.journal_len();
        let mut h = StateHasher::new();
        m.fold_state(&mut h);
        let folded = h.finish();
        assert_eq!(
            m.journal_len(),
            journal_before,
            "folding must not drain the journal"
        );
        let full = m.take_chunk(CheckpointMode::Full).unwrap();
        assert_eq!(folded, hash_of_bytes(full.bytes()));

        let mut v: CkptVec<u32> = CkptVec::new();
        v.push(7);
        let mut h = StateHasher::new();
        v.fold_state(&mut h);
        let folded = h.finish();
        let full = v.take_chunk(CheckpointMode::Full).unwrap();
        assert_eq!(folded, hash_of_bytes(full.bytes()));

        let mut c = CkptCell::new(9u64);
        let mut h = StateHasher::new();
        c.fold_state(&mut h);
        let folded = h.finish();
        assert!(c.is_dirty(), "folding must not clear the dirty flag");
        let full = c.take_chunk(CheckpointMode::Full).unwrap();
        assert_eq!(folded, hash_of_bytes(full.bytes()));
    }

    #[test]
    fn debug_reprs_nonempty() {
        let m: CkptMap<u32, u32> = CkptMap::new();
        assert!(format!("{m:?}").contains("CkptMap"));
        let v: CkptVec<u32> = CkptVec::new();
        assert!(format!("{v:?}").contains("CkptVec"));
        let c = CkptCell::new(1u8);
        assert!(format!("{c:?}").contains("CkptCell"));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    #[derive(Clone, Debug)]
    enum Op {
        Insert(u8, u32),
        Remove(u8),
        Clear,
        Checkpoint,
    }

    fn arb_op() -> impl Strategy<Value = Op> {
        prop_oneof![
            4 => (any::<u8>(), any::<u32>()).prop_map(|(k, v)| Op::Insert(k, v)),
            2 => any::<u8>().prop_map(Op::Remove),
            1 => Just(Op::Clear),
            1 => Just(Op::Checkpoint),
        ]
    }

    proptest! {
        /// The replay invariant behind soft checkpoints: a replica applying
        /// the full + incremental chunk chain always matches the live state.
        #[test]
        fn replica_tracks_live_state(ops in proptest::collection::vec(arb_op(), 0..80)) {
            let mut live: CkptMap<u8, u32> = CkptMap::new();
            let mut replica: CkptMap<u8, u32> = CkptMap::new();
            let mut model: BTreeMap<u8, u32> = BTreeMap::new();
            for op in ops {
                match op {
                    Op::Insert(k, v) => {
                        live.insert(k, v);
                        model.insert(k, v);
                    }
                    Op::Remove(k) => {
                        live.remove(&k);
                        model.remove(&k);
                    }
                    Op::Clear => {
                        live.clear();
                        model.clear();
                    }
                    Op::Checkpoint => {
                        if let Some(chunk) = live.take_chunk(CheckpointMode::Incremental) {
                            replica.apply_chunk(&chunk).unwrap();
                        }
                        prop_assert_eq!(&replica, &live);
                    }
                }
            }
            // Final checkpoint reconciles everything.
            if let Some(chunk) = live.take_chunk(CheckpointMode::Incremental) {
                replica.apply_chunk(&chunk).unwrap();
            }
            prop_assert_eq!(&replica, &live);
            prop_assert_eq!(live.len(), model.len());
            for (k, v) in &model {
                prop_assert_eq!(live.get(k), Some(v));
            }
        }

        /// Full checkpoints from any point are self-contained.
        #[test]
        fn full_checkpoint_is_always_sufficient(ops in proptest::collection::vec(arb_op(), 0..40)) {
            let mut live: CkptMap<u8, u32> = CkptMap::new();
            for op in &ops {
                match op {
                    Op::Insert(k, v) => { live.insert(*k, *v); }
                    Op::Remove(k) => { live.remove(k); }
                    Op::Clear => live.clear(),
                    Op::Checkpoint => { let _ = live.take_chunk(CheckpointMode::Incremental); }
                }
            }
            let full = live.take_chunk(CheckpointMode::Full).unwrap();
            let mut fresh: CkptMap<u8, u32> = CkptMap::new();
            fresh.apply_chunk(&full).unwrap();
            prop_assert_eq!(&fresh, &live);
        }
    }
}
