//! The TART component model.
//!
//! A TART application is a network of stateful [`Component`]s that interact
//! only through one-way *sends* and two-way *calls* over statically wired
//! ports (§II.B of the paper). This crate defines everything a component
//! author touches:
//!
//! * [`Value`] — the self-describing payload type messages carry;
//! * [`Component`] — the handler trait (message, call, checkpoint, restore);
//! * [`Ctx`] — the handler's window on the runtime: deterministic virtual
//!   `now()`, sends, calls, and estimator feature counting
//!   ([`Ctx::tick_block`]);
//! * checkpointable state containers ([`CkptCell`], [`CkptMap`],
//!   [`CkptVec`]) supporting both full and *incremental* checkpoints, as
//!   required for "large structures like hash tables needing incremental
//!   checkpointing" (§II.F.2);
//! * [`Snapshot`] / [`StateChunk`] — the serialized checkpoint form shipped
//!   to passive replicas;
//! * [`AppSpec`] — the static component/wire topology, fixed before
//!   deployment ("the code and wiring of the components are known prior to
//!   deployment", §II.B);
//! * [`mod@reference`] — the paper's running example (Code Body 1 word-count
//!   senders fanning into a merger, Fig 1), reused by examples, tests and
//!   benchmarks throughout the workspace.
//!
//! # Example
//!
//! ```
//! use tart_model::{AppSpec, Value};
//! use tart_model::reference::{self, WordCountSender};
//!
//! // The Fig 1 topology: two senders fanning into a merger.
//! let spec = reference::fan_in_app(2).expect("valid topology");
//! assert_eq!(spec.components().len(), 3);
//! assert_eq!(spec.wires().len(), 5); // 2 inputs + 2 internal + 1 output
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod component;
mod hash;
mod instrumented;
pub mod reference;
mod snapshot;
mod state;
mod topology;
mod value;

pub use component::{BlockId, Component, Ctx, Features, RecordingCtx};
pub use hash::{hash_of, FoldState, StateHash, StateHasher};
pub use instrumented::{Instrumented, PAYLOAD_SIZE_BLOCK, PORT_BLOCK_BASE};
pub use snapshot::{CheckpointMode, RestoreError, Snapshot, StateChunk};
pub use state::{CkptCell, CkptMap, CkptVec};
pub use topology::{AppSpec, AppSpecBuilder, ComponentSpec, Endpoint, TopologyError, WireSpec};
pub use value::Value;
