//! Static application topology: components and wires.

use std::fmt;
use std::sync::Arc;

use tart_vtime::{ComponentId, PortId, WireId};

use crate::Component;

/// Factory producing fresh instances of a component.
///
/// Topologies carry factories rather than instances because the same
/// component must be instantiable in several places: on the active engine at
/// deployment, and again on a promoted replica after failover.
pub type ComponentFactory = Arc<dyn Fn() -> Box<dyn Component> + Send + Sync>;

/// One component in the application graph.
#[derive(Clone)]
pub struct ComponentSpec {
    id: ComponentId,
    name: String,
    factory: ComponentFactory,
}

impl ComponentSpec {
    /// The component's id (assigned by the builder, in declaration order).
    pub fn id(&self) -> ComponentId {
        self.id
    }

    /// The component's unique name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Instantiates a fresh copy of the component.
    pub fn instantiate(&self) -> Box<dyn Component> {
        (self.factory)()
    }
}

impl fmt::Debug for ComponentSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ComponentSpec")
            .field("id", &self.id)
            .field("name", &self.name)
            .finish()
    }
}

/// One end of a wire.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Endpoint {
    /// A port on a component.
    Component {
        /// The component.
        component: ComponentId,
        /// The port on that component.
        port: PortId,
    },
    /// The external world: a producer (for wire sources) or consumer (for
    /// wire sinks), named for identification in logs and outputs.
    External {
        /// Stable name of the external party.
        name: String,
    },
}

impl Endpoint {
    /// The component id, if this endpoint is a component port.
    pub fn component(&self) -> Option<ComponentId> {
        match self {
            Endpoint::Component { component, .. } => Some(*component),
            Endpoint::External { .. } => None,
        }
    }

    /// The port, if this endpoint is a component port.
    pub fn port(&self) -> Option<PortId> {
        match self {
            Endpoint::Component { port, .. } => Some(*port),
            Endpoint::External { .. } => None,
        }
    }

    /// Returns `true` for an external endpoint.
    pub fn is_external(&self) -> bool {
        matches!(self, Endpoint::External { .. })
    }
}

/// A directed wire: a reliable FIFO stream of ticks from `from` to `to`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireSpec {
    id: WireId,
    from: Endpoint,
    to: Endpoint,
}

impl WireSpec {
    /// The wire's id — also the deterministic tie-breaker for simultaneous
    /// messages, so ids are assigned in declaration order and never change.
    pub fn id(&self) -> WireId {
        self.id
    }

    /// The sending endpoint.
    pub fn from(&self) -> &Endpoint {
        &self.from
    }

    /// The receiving endpoint.
    pub fn to(&self) -> &Endpoint {
        &self.to
    }

    /// Returns `true` if this wire carries external input into the system.
    pub fn is_external_input(&self) -> bool {
        self.from.is_external()
    }

    /// Returns `true` if this wire delivers output to an external consumer.
    pub fn is_external_output(&self) -> bool {
        self.to.is_external()
    }
}

/// Errors detected while validating a topology.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TopologyError {
    /// Two components share a name.
    DuplicateComponentName {
        /// The offending name.
        name: String,
    },
    /// A component name was empty.
    EmptyComponentName,
    /// A wire endpoint referenced a component id the builder never created.
    UnknownComponent {
        /// The offending id.
        component: ComponentId,
    },
    /// A wire connected two external endpoints.
    ExternalToExternal,
    /// The application has no components.
    NoComponents,
    /// The application has no external producer (§II.A requires at least
    /// one).
    MissingExternalInput,
    /// The application has no external consumer (§II.A requires at least
    /// one).
    MissingExternalOutput,
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::DuplicateComponentName { name } => {
                write!(f, "duplicate component name {name:?}")
            }
            TopologyError::EmptyComponentName => write!(f, "component name is empty"),
            TopologyError::UnknownComponent { component } => {
                write!(f, "wire references unknown component {component}")
            }
            TopologyError::ExternalToExternal => {
                write!(f, "wire connects two external endpoints")
            }
            TopologyError::NoComponents => write!(f, "application has no components"),
            TopologyError::MissingExternalInput => {
                write!(f, "application has no external producer")
            }
            TopologyError::MissingExternalOutput => {
                write!(f, "application has no external consumer")
            }
        }
    }
}

impl std::error::Error for TopologyError {}

/// A validated, immutable application topology.
///
/// Produced by [`AppSpecBuilder`]; consumed by placement and by the engines.
/// Per §II.B "the code and wiring of the components are known prior to
/// deployment": there is no dynamic rewiring.
#[derive(Clone, Debug)]
pub struct AppSpec {
    components: Vec<ComponentSpec>,
    wires: Vec<WireSpec>,
}

impl AppSpec {
    /// Starts building a topology.
    pub fn builder() -> AppSpecBuilder {
        AppSpecBuilder::default()
    }

    /// All components, in declaration order (index == raw id).
    pub fn components(&self) -> &[ComponentSpec] {
        &self.components
    }

    /// All wires, in declaration order (index == raw id).
    pub fn wires(&self) -> &[WireSpec] {
        &self.wires
    }

    /// Looks up a component by id.
    pub fn component(&self, id: ComponentId) -> Option<&ComponentSpec> {
        self.components.get(id.raw() as usize)
    }

    /// Looks up a component by name.
    pub fn component_by_name(&self, name: &str) -> Option<&ComponentSpec> {
        self.components.iter().find(|c| c.name == name)
    }

    /// Looks up a wire by id.
    pub fn wire(&self, id: WireId) -> Option<&WireSpec> {
        self.wires.get(id.raw() as usize)
    }

    /// The wires delivering messages *to* `component`, in id order.
    pub fn input_wires_of(&self, component: ComponentId) -> Vec<&WireSpec> {
        self.wires
            .iter()
            .filter(|w| w.to.component() == Some(component))
            .collect()
    }

    /// The wires carrying messages *from* `component`, in id order.
    pub fn output_wires_of(&self, component: ComponentId) -> Vec<&WireSpec> {
        self.wires
            .iter()
            .filter(|w| w.from.component() == Some(component))
            .collect()
    }

    /// The wires leaving `component` from a specific output `port`
    /// (more than one means broadcast).
    pub fn wires_from_port(&self, component: ComponentId, port: PortId) -> Vec<&WireSpec> {
        self.wires
            .iter()
            .filter(|w| w.from.component() == Some(component) && w.from.port() == Some(port))
            .collect()
    }

    /// All external-input wires.
    pub fn external_inputs(&self) -> Vec<&WireSpec> {
        self.wires
            .iter()
            .filter(|w| w.is_external_input())
            .collect()
    }

    /// All external-output wires.
    pub fn external_outputs(&self) -> Vec<&WireSpec> {
        self.wires
            .iter()
            .filter(|w| w.is_external_output())
            .collect()
    }
}

/// Incremental builder for [`AppSpec`].
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use tart_model::reference::WordCountSender;
/// use tart_model::AppSpec;
/// use tart_vtime::PortId;
///
/// let mut b = AppSpec::builder();
/// let sender = b.component("Sender1", Arc::new(|| Box::new(WordCountSender::new())));
/// b.wire_in("client", sender, PortId::new(0));
/// b.wire_out(sender, PortId::new(1), "sink");
/// let spec = b.build()?;
/// assert_eq!(spec.components().len(), 1);
/// # Ok::<(), tart_model::TopologyError>(())
/// ```
#[derive(Default)]
pub struct AppSpecBuilder {
    components: Vec<ComponentSpec>,
    wires: Vec<WireSpec>,
}

impl AppSpecBuilder {
    /// Declares a component; returns its id.
    pub fn component(&mut self, name: &str, factory: ComponentFactory) -> ComponentId {
        let id = ComponentId::new(self.components.len() as u32);
        self.components.push(ComponentSpec {
            id,
            name: name.to_owned(),
            factory,
        });
        id
    }

    /// Declares an internal wire from `(from, from_port)` to `(to, to_port)`;
    /// returns its id.
    pub fn wire(
        &mut self,
        from: ComponentId,
        from_port: PortId,
        to: ComponentId,
        to_port: PortId,
    ) -> WireId {
        self.push_wire(
            Endpoint::Component {
                component: from,
                port: from_port,
            },
            Endpoint::Component {
                component: to,
                port: to_port,
            },
        )
    }

    /// Declares an external-input wire from producer `name` into
    /// `(to, to_port)`; returns its id.
    pub fn wire_in(&mut self, name: &str, to: ComponentId, to_port: PortId) -> WireId {
        self.push_wire(
            Endpoint::External {
                name: name.to_owned(),
            },
            Endpoint::Component {
                component: to,
                port: to_port,
            },
        )
    }

    /// Declares an external-output wire from `(from, from_port)` to consumer
    /// `name`; returns its id.
    pub fn wire_out(&mut self, from: ComponentId, from_port: PortId, name: &str) -> WireId {
        self.push_wire(
            Endpoint::Component {
                component: from,
                port: from_port,
            },
            Endpoint::External {
                name: name.to_owned(),
            },
        )
    }

    fn push_wire(&mut self, from: Endpoint, to: Endpoint) -> WireId {
        let id = WireId::new(self.wires.len() as u32);
        self.wires.push(WireSpec { id, from, to });
        id
    }

    /// Validates and freezes the topology.
    ///
    /// # Errors
    ///
    /// Returns a [`TopologyError`] describing the first violation found:
    /// duplicate or empty names, dangling component references,
    /// external-to-external wires, or a missing external producer/consumer.
    pub fn build(self) -> Result<AppSpec, TopologyError> {
        if self.components.is_empty() {
            return Err(TopologyError::NoComponents);
        }
        let mut seen = std::collections::BTreeSet::new();
        for c in &self.components {
            if c.name.is_empty() {
                return Err(TopologyError::EmptyComponentName);
            }
            if !seen.insert(c.name.clone()) {
                return Err(TopologyError::DuplicateComponentName {
                    name: c.name.clone(),
                });
            }
        }
        let known = |id: ComponentId| (id.raw() as usize) < self.components.len();
        let mut has_in = false;
        let mut has_out = false;
        for w in &self.wires {
            match (&w.from, &w.to) {
                (Endpoint::External { .. }, Endpoint::External { .. }) => {
                    return Err(TopologyError::ExternalToExternal)
                }
                (Endpoint::External { .. }, _) => has_in = true,
                (_, Endpoint::External { .. }) => has_out = true,
                _ => {}
            }
            for ep in [&w.from, &w.to] {
                if let Some(c) = ep.component() {
                    if !known(c) {
                        return Err(TopologyError::UnknownComponent { component: c });
                    }
                }
            }
        }
        if !has_in {
            return Err(TopologyError::MissingExternalInput);
        }
        if !has_out {
            return Err(TopologyError::MissingExternalOutput);
        }
        Ok(AppSpec {
            components: self.components,
            wires: self.wires,
        })
    }
}

impl fmt::Debug for AppSpecBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AppSpecBuilder")
            .field("components", &self.components.len())
            .field("wires", &self.wires.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::WordCountSender;

    fn sender_factory() -> ComponentFactory {
        Arc::new(|| Box::new(WordCountSender::new()))
    }

    fn p(n: u16) -> PortId {
        PortId::new(n)
    }

    #[test]
    fn fig1_topology_builds_and_queries() {
        let mut b = AppSpec::builder();
        let s1 = b.component("Sender1", sender_factory());
        let s2 = b.component("Sender2", sender_factory());
        let merger = b.component("Merger", sender_factory());
        let w_in1 = b.wire_in("client1", s1, p(0));
        let w_in2 = b.wire_in("client2", s2, p(0));
        let w1 = b.wire(s1, p(1), merger, p(0));
        let w2 = b.wire(s2, p(1), merger, p(0));
        let w_out = b.wire_out(merger, p(1), "consumer");
        let spec = b.build().unwrap();

        assert_eq!(spec.components().len(), 3);
        assert_eq!(spec.wires().len(), 5);
        assert_eq!(spec.component_by_name("Merger").unwrap().id(), merger);
        assert!(spec.component_by_name("Nope").is_none());
        assert_eq!(spec.component(s1).unwrap().name(), "Sender1");
        assert!(spec.component(ComponentId::new(99)).is_none());
        assert_eq!(spec.wire(w1).unwrap().id(), w1);
        assert!(spec.wire(WireId::new(99)).is_none());

        let merger_in: Vec<WireId> = spec.input_wires_of(merger).iter().map(|w| w.id()).collect();
        assert_eq!(merger_in, vec![w1, w2]);
        let s1_out: Vec<WireId> = spec.output_wires_of(s1).iter().map(|w| w.id()).collect();
        assert_eq!(s1_out, vec![w1]);
        assert_eq!(spec.wires_from_port(merger, p(1))[0].id(), w_out);
        assert!(spec.wires_from_port(merger, p(9)).is_empty());

        let ins: Vec<WireId> = spec.external_inputs().iter().map(|w| w.id()).collect();
        assert_eq!(ins, vec![w_in1, w_in2]);
        assert_eq!(spec.external_outputs()[0].id(), w_out);
        assert!(spec.wire(w_in1).unwrap().is_external_input());
        assert!(!spec.wire(w_in1).unwrap().is_external_output());
        assert!(spec.wire(w_out).unwrap().is_external_output());
    }

    #[test]
    fn wire_ids_follow_declaration_order() {
        let mut b = AppSpec::builder();
        let c = b.component("C", sender_factory());
        let w0 = b.wire_in("in", c, p(0));
        let w1 = b.wire_out(c, p(1), "out");
        assert_eq!(w0, WireId::new(0));
        assert_eq!(w1, WireId::new(1));
    }

    #[test]
    fn instantiate_produces_fresh_components() {
        let mut b = AppSpec::builder();
        let c = b.component("C", sender_factory());
        b.wire_in("in", c, p(0));
        b.wire_out(c, p(1), "out");
        let spec = b.build().unwrap();
        let _a = spec.component(c).unwrap().instantiate();
        let _b = spec.component(c).unwrap().instantiate();
    }

    #[test]
    fn validation_rejects_bad_topologies() {
        assert_eq!(
            AppSpec::builder().build().unwrap_err(),
            TopologyError::NoComponents
        );

        let mut b = AppSpec::builder();
        b.component("X", sender_factory());
        b.component("X", sender_factory());
        assert!(matches!(
            b.build().unwrap_err(),
            TopologyError::DuplicateComponentName { .. }
        ));

        let mut b = AppSpec::builder();
        b.component("", sender_factory());
        assert_eq!(b.build().unwrap_err(), TopologyError::EmptyComponentName);

        let mut b = AppSpec::builder();
        let c = b.component("C", sender_factory());
        b.wire_in("in", ComponentId::new(9), p(0));
        b.wire_out(c, p(1), "out");
        assert!(matches!(
            b.build().unwrap_err(),
            TopologyError::UnknownComponent { .. }
        ));

        let mut b = AppSpec::builder();
        let c = b.component("C", sender_factory());
        b.wire_out(c, p(1), "out");
        assert_eq!(b.build().unwrap_err(), TopologyError::MissingExternalInput);

        let mut b = AppSpec::builder();
        let c = b.component("C", sender_factory());
        b.wire_in("in", c, p(0));
        assert_eq!(b.build().unwrap_err(), TopologyError::MissingExternalOutput);

        let mut b = AppSpec::builder();
        let c = b.component("C", sender_factory());
        b.wire_in("in", c, p(0));
        b.wire_out(c, p(1), "out");
        b.push_wire(
            Endpoint::External { name: "a".into() },
            Endpoint::External { name: "b".into() },
        );
        assert_eq!(b.build().unwrap_err(), TopologyError::ExternalToExternal);
    }

    #[test]
    fn error_display_messages() {
        for (err, needle) in [
            (
                TopologyError::DuplicateComponentName { name: "X".into() },
                "duplicate",
            ),
            (TopologyError::EmptyComponentName, "empty"),
            (
                TopologyError::UnknownComponent {
                    component: ComponentId::new(3),
                },
                "c3",
            ),
            (TopologyError::ExternalToExternal, "external"),
            (TopologyError::NoComponents, "no components"),
            (TopologyError::MissingExternalInput, "producer"),
            (TopologyError::MissingExternalOutput, "consumer"),
        ] {
            assert!(err.to_string().contains(needle), "{err}");
        }
    }

    #[test]
    fn endpoint_accessors() {
        let e = Endpoint::Component {
            component: ComponentId::new(1),
            port: p(2),
        };
        assert_eq!(e.component(), Some(ComponentId::new(1)));
        assert_eq!(e.port(), Some(p(2)));
        assert!(!e.is_external());
        let x = Endpoint::External { name: "n".into() };
        assert_eq!(x.component(), None);
        assert_eq!(x.port(), None);
        assert!(x.is_external());
    }

    #[test]
    fn specs_are_debuggable() {
        let mut b = AppSpec::builder();
        let c = b.component("C", sender_factory());
        b.wire_in("in", c, p(0));
        b.wire_out(c, p(1), "out");
        assert!(format!("{b:?}").contains("AppSpecBuilder"));
        let spec = b.build().unwrap();
        assert!(format!("{spec:?}").contains("AppSpec"));
    }
}
