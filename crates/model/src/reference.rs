//! Reference components: the paper's running example.
//!
//! Code Body 1 of the paper is a word-count sender: it receives sentences,
//! maintains per-word counts in a hash map, and emits the total prior count
//! of the sentence's words. Two such senders fan into a merger (Fig 1).
//! These components are used throughout the workspace — by examples,
//! integration tests, the calibration harness (Fig 2) and the distributed
//! measurement (Fig 5).

use std::sync::Arc;

use tart_vtime::{PortId, VirtualTime};

use crate::{
    AppSpec, BlockId, CheckpointMode, CkptCell, CkptMap, Component, Ctx, RestoreError, Snapshot,
    StateHash, StateHasher, TopologyError, Value,
};

/// Conventional input port (0) used by the reference components.
pub const IN_PORT: PortId = PortId::new(0);
/// Conventional output port (1) used by the reference components.
pub const OUT_PORT: PortId = PortId::new(1);

/// The basic block representing the word-count loop body (ξ₁ in Eq. 1/2).
pub const SENDER_LOOP_BLOCK: BlockId = BlockId(0);
/// The basic block representing the merger's fixed work.
pub const MERGER_BLOCK: BlockId = BlockId(0);

/// The paper's Code Body 1: a stateful word-count sender.
///
/// ```java
/// public void processSentence(String[] sent) {
///     int count = 0;
///     for (int i = 0; i < sent.length; i++) { ... }
///     port1.send(count);
/// }
/// ```
///
/// State lives in an incremental-checkpointable [`CkptMap`], exactly the
/// "large structure like a hash table" of §II.F.2. The loop body ticks
/// [`SENDER_LOOP_BLOCK`] once per word so estimators see ξ₁ = sentence
/// length.
///
/// # Example
///
/// ```
/// use tart_model::reference::{WordCountSender, IN_PORT, SENDER_LOOP_BLOCK};
/// use tart_model::{Component, RecordingCtx, Value};
/// use tart_vtime::VirtualTime;
///
/// let mut sender = WordCountSender::new();
/// let mut ctx = RecordingCtx::at(VirtualTime::ZERO);
/// let sentence = Value::from("the cat saw the dog");
/// sender.on_message(IN_PORT, &sentence, &mut ctx);
/// // First sighting of every word: prior counts are all zero except the
/// // second "the", which was seen once before within this sentence.
/// assert_eq!(ctx.sends()[0].1, Value::I64(1));
/// assert_eq!(ctx.features().count(SENDER_LOOP_BLOCK), 5);
/// ```
#[derive(Debug, Default)]
pub struct WordCountSender {
    counts: CkptMap<String, u64>,
}

impl WordCountSender {
    /// Creates a sender with an empty word-count table.
    pub fn new() -> Self {
        WordCountSender {
            counts: CkptMap::new(),
        }
    }

    /// The number of distinct words seen so far.
    pub fn distinct_words(&self) -> usize {
        self.counts.len()
    }

    /// The count recorded for `word`.
    pub fn count_of(&self, word: &str) -> u64 {
        self.counts.get(word).copied().unwrap_or(0)
    }

    fn words_of(msg: &Value) -> Vec<String> {
        match msg {
            Value::Str(s) => s.split_whitespace().map(str::to_owned).collect(),
            Value::List(items) => items
                .iter()
                .filter_map(|v| v.as_str().map(str::to_owned))
                .collect(),
            _ => Vec::new(),
        }
    }
}

impl Component for WordCountSender {
    fn on_message(&mut self, _port: PortId, msg: &Value, ctx: &mut dyn Ctx) {
        let words = Self::words_of(msg);
        let mut count: i64 = 0;
        for word in words {
            ctx.tick_block(SENDER_LOOP_BLOCK, 1);
            let word_count = self.counts.get(&word).copied().unwrap_or(0);
            self.counts.insert(word, word_count + 1);
            count += word_count as i64;
        }
        ctx.send(OUT_PORT, Value::I64(count));
    }

    fn checkpoint(&mut self, mode: CheckpointMode, vt: VirtualTime) -> Snapshot {
        let mut snap = Snapshot::new(vt);
        if let Some(chunk) = self.counts.take_chunk(mode) {
            snap.put("counts", chunk);
        }
        snap
    }

    fn restore(&mut self, snapshot: &Snapshot) -> Result<(), RestoreError> {
        for (field, chunk) in snapshot.iter() {
            match field {
                "counts" => {
                    self.counts
                        .apply_chunk(chunk)
                        .map_err(|source| RestoreError::Corrupt {
                            field: field.to_owned(),
                            source,
                        })?
                }
                other => {
                    return Err(RestoreError::UnknownField {
                        field: other.to_owned(),
                    })
                }
            }
        }
        Ok(())
    }

    /// The word-count table grows with the message history, so the default
    /// full-image hash would make every checkpoint O(all words ever seen).
    /// The incremental [`CkptMap::digest`] keeps verified replay O(words
    /// touched since the last checkpoint) — a pure function of logical
    /// state and `vt`, as the contract requires.
    fn state_hash(&mut self, vt: VirtualTime) -> StateHash {
        let mut h = StateHasher::new();
        h.update(&self.counts.digest().to_le_bytes());
        h.update(&vt.as_ticks().to_le_bytes());
        h.finish()
    }
}

/// The Fig 1 merger: accumulates the counts it receives and emits a
/// sequence-numbered running total to the external consumer.
///
/// The sequence number makes the output *monotonic*, so output stutter after
/// recovery is observable and discardable by the consumer (§II.A).
#[derive(Debug, Default)]
pub struct Merger {
    total: CkptCell<i64>,
    seq: CkptCell<u64>,
}

impl Merger {
    /// Creates a merger with zeroed accumulators.
    pub fn new() -> Self {
        Merger {
            total: CkptCell::new(0),
            seq: CkptCell::new(0),
        }
    }

    /// The running total of all counts received.
    pub fn total(&self) -> i64 {
        *self.total.get()
    }

    /// The number of messages merged so far.
    pub fn merged(&self) -> u64 {
        *self.seq.get()
    }
}

impl Component for Merger {
    fn on_message(&mut self, _port: PortId, msg: &Value, ctx: &mut dyn Ctx) {
        ctx.tick_block(MERGER_BLOCK, 1);
        let count = msg.as_i64().unwrap_or(0);
        self.total.update(|t| *t += count);
        self.seq.update(|s| *s += 1);
        ctx.send(
            OUT_PORT,
            Value::map([
                ("seq", Value::I64(*self.seq.get() as i64)),
                ("total", Value::I64(*self.total.get())),
            ]),
        );
    }

    fn checkpoint(&mut self, mode: CheckpointMode, vt: VirtualTime) -> Snapshot {
        let mut snap = Snapshot::new(vt);
        if let Some(chunk) = self.total.take_chunk(mode) {
            snap.put("total", chunk);
        }
        if let Some(chunk) = self.seq.take_chunk(mode) {
            snap.put("seq", chunk);
        }
        snap
    }

    fn restore(&mut self, snapshot: &Snapshot) -> Result<(), RestoreError> {
        for (field, chunk) in snapshot.iter() {
            let result = match field {
                "total" => self.total.apply_chunk(chunk),
                "seq" => self.seq.apply_chunk(chunk),
                other => {
                    return Err(RestoreError::UnknownField {
                        field: other.to_owned(),
                    })
                }
            };
            result.map_err(|source| RestoreError::Corrupt {
                field: field.to_owned(),
                source,
            })?;
        }
        Ok(())
    }
}

/// A stateless constant-work relay, as used by the Fig 5 distributed
/// experiment ("constant-time services and ad-hoc estimators", §III.C).
///
/// Forwards every message unchanged after ticking its block once.
#[derive(Debug, Default)]
pub struct ConstantService;

impl ConstantService {
    /// Creates the service.
    pub fn new() -> Self {
        ConstantService
    }
}

impl Component for ConstantService {
    fn on_message(&mut self, _port: PortId, msg: &Value, ctx: &mut dyn Ctx) {
        ctx.tick_block(BlockId(0), 1);
        ctx.send(OUT_PORT, msg.clone());
    }

    fn checkpoint(&mut self, _mode: CheckpointMode, vt: VirtualTime) -> Snapshot {
        Snapshot::new(vt)
    }

    fn restore(&mut self, _snapshot: &Snapshot) -> Result<(), RestoreError> {
        Ok(())
    }
}

/// Builds the Fig 1 topology generalized to `n` senders: each sender has an
/// external producer, all senders feed the merger's input port, and the
/// merger emits to one external consumer.
///
/// # Errors
///
/// Returns a [`TopologyError`] if `n` produces an invalid topology (only
/// possible for `n == 0`, which has no external input).
///
/// # Example
///
/// ```
/// use tart_model::reference::fan_in_app;
///
/// let spec = fan_in_app(2)?;
/// let merger = spec.component_by_name("Merger").unwrap().id();
/// assert_eq!(spec.input_wires_of(merger).len(), 2);
/// # Ok::<(), tart_model::TopologyError>(())
/// ```
pub fn fan_in_app(n: usize) -> Result<AppSpec, TopologyError> {
    let mut b = AppSpec::builder();
    let merger = b.component(
        "Merger",
        Arc::new(|| Box::new(Merger::new()) as Box<dyn Component>),
    );
    let mut senders = Vec::new();
    for i in 0..n {
        let s = b.component(
            &format!("Sender{}", i + 1),
            Arc::new(|| Box::new(WordCountSender::new()) as Box<dyn Component>),
        );
        senders.push(s);
    }
    for (i, s) in senders.iter().enumerate() {
        b.wire_in(&format!("client{}", i + 1), *s, IN_PORT);
    }
    for s in &senders {
        b.wire(*s, OUT_PORT, merger, IN_PORT);
    }
    b.wire_out(merger, OUT_PORT, "consumer");
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RecordingCtx;

    fn run_sentence(sender: &mut WordCountSender, sentence: &str) -> (i64, u64) {
        let mut ctx = RecordingCtx::at(VirtualTime::ZERO);
        sender.on_message(IN_PORT, &Value::from(sentence), &mut ctx);
        let count = ctx.sends()[0].1.as_i64().unwrap();
        let iters = ctx.features().count(SENDER_LOOP_BLOCK);
        (count, iters)
    }

    #[test]
    fn word_count_semantics_match_code_body_1() {
        let mut s = WordCountSender::new();
        // First sentence: no word seen before.
        let (count, iters) = run_sentence(&mut s, "a b c");
        assert_eq!(count, 0);
        assert_eq!(iters, 3);
        // Second sentence: "a" and "b" each seen once before.
        let (count, iters) = run_sentence(&mut s, "a b d");
        assert_eq!(count, 2);
        assert_eq!(iters, 3);
        // Third: a=2, d=1 prior.
        let (count, _) = run_sentence(&mut s, "a d");
        assert_eq!(count, 3);
        assert_eq!(s.distinct_words(), 4);
        assert_eq!(s.count_of("a"), 3);
        assert_eq!(s.count_of("never"), 0);
    }

    #[test]
    fn repeated_word_within_sentence_counts_increment() {
        let mut s = WordCountSender::new();
        let (count, iters) = run_sentence(&mut s, "the the the");
        // Prior counts at each step: 0, 1, 2.
        assert_eq!(count, 3);
        assert_eq!(iters, 3);
    }

    #[test]
    fn sender_accepts_list_payloads() {
        let mut s = WordCountSender::new();
        let mut ctx = RecordingCtx::at(VirtualTime::ZERO);
        let msg = Value::List(vec![Value::from("x"), Value::from("y")]);
        s.on_message(IN_PORT, &msg, &mut ctx);
        assert_eq!(ctx.features().count(SENDER_LOOP_BLOCK), 2);
        // Non-string payloads produce an empty sentence, not a panic.
        let mut ctx = RecordingCtx::at(VirtualTime::ZERO);
        s.on_message(IN_PORT, &Value::I64(5), &mut ctx);
        assert_eq!(ctx.sends()[0].1, Value::I64(0));
    }

    #[test]
    fn sender_checkpoint_restore_round_trip() {
        let mut live = WordCountSender::new();
        let _ = run_sentence(&mut live, "a b a");
        let full = live.checkpoint(CheckpointMode::Full, VirtualTime::from_ticks(10));
        let _ = run_sentence(&mut live, "c a");
        let delta = live.checkpoint(CheckpointMode::Incremental, VirtualTime::from_ticks(20));

        let mut replica = WordCountSender::new();
        replica.restore(&full).unwrap();
        replica.restore(&delta).unwrap();
        assert_eq!(replica.count_of("a"), 3);
        assert_eq!(replica.count_of("c"), 1);
        assert_eq!(replica.distinct_words(), 3);

        // Replica now behaves identically to live.
        let (lc, _) = run_sentence(&mut live, "a b c");
        let (rc, _) = run_sentence(&mut replica, "a b c");
        assert_eq!(lc, rc);
    }

    #[test]
    fn sender_restore_rejects_unknown_field() {
        let mut snap = Snapshot::new(VirtualTime::ZERO);
        snap.put("bogus", crate::StateChunk::Full(vec![]));
        let mut s = WordCountSender::new();
        assert!(matches!(
            s.restore(&snap),
            Err(RestoreError::UnknownField { .. })
        ));
    }

    #[test]
    fn sender_restore_rejects_corrupt_chunk() {
        let mut snap = Snapshot::new(VirtualTime::ZERO);
        snap.put("counts", crate::StateChunk::Full(vec![0xff, 0xff, 0xff]));
        let mut s = WordCountSender::new();
        assert!(matches!(
            s.restore(&snap),
            Err(RestoreError::Corrupt { .. })
        ));
    }

    #[test]
    fn merger_accumulates_and_sequences() {
        let mut m = Merger::new();
        let mut ctx = RecordingCtx::at(VirtualTime::ZERO);
        m.on_message(IN_PORT, &Value::I64(3), &mut ctx);
        m.on_message(IN_PORT, &Value::I64(4), &mut ctx);
        assert_eq!(m.total(), 7);
        assert_eq!(m.merged(), 2);
        let out = &ctx.sends()[1].1;
        assert_eq!(out.get("seq").and_then(Value::as_i64), Some(2));
        assert_eq!(out.get("total").and_then(Value::as_i64), Some(7));
        // Junk payloads count as zero.
        m.on_message(IN_PORT, &Value::from("junk"), &mut ctx);
        assert_eq!(m.total(), 7);
        assert_eq!(m.merged(), 3);
    }

    #[test]
    fn merger_checkpoint_restore_round_trip() {
        let mut live = Merger::new();
        let mut ctx = RecordingCtx::at(VirtualTime::ZERO);
        live.on_message(IN_PORT, &Value::I64(10), &mut ctx);
        let full = live.checkpoint(CheckpointMode::Full, VirtualTime::from_ticks(5));
        live.on_message(IN_PORT, &Value::I64(20), &mut ctx);
        let delta = live.checkpoint(CheckpointMode::Incremental, VirtualTime::from_ticks(6));

        let mut replica = Merger::new();
        replica.restore(&full).unwrap();
        assert_eq!(replica.total(), 10);
        replica.restore(&delta).unwrap();
        assert_eq!(replica.total(), 30);
        assert_eq!(replica.merged(), 2);
    }

    #[test]
    fn merger_clean_incremental_checkpoint_is_empty() {
        let mut m = Merger::new();
        let _ = m.checkpoint(CheckpointMode::Full, VirtualTime::ZERO);
        let snap = m.checkpoint(CheckpointMode::Incremental, VirtualTime::from_ticks(1));
        assert!(snap.is_empty());
    }

    #[test]
    fn constant_service_forwards() {
        let mut c = ConstantService::new();
        let mut ctx = RecordingCtx::at(VirtualTime::ZERO);
        c.on_message(IN_PORT, &Value::from("payload"), &mut ctx);
        assert_eq!(ctx.sends(), &[(OUT_PORT, Value::from("payload"))]);
        let snap = c.checkpoint(CheckpointMode::Full, VirtualTime::ZERO);
        assert!(snap.is_empty());
        assert!(c.restore(&snap).is_ok());
    }

    #[test]
    fn fan_in_app_shapes() {
        let spec = fan_in_app(2).unwrap();
        assert_eq!(spec.components().len(), 3);
        assert_eq!(spec.wires().len(), 5);
        let merger = spec.component_by_name("Merger").unwrap().id();
        assert_eq!(spec.input_wires_of(merger).len(), 2);
        assert_eq!(spec.external_inputs().len(), 2);
        assert_eq!(spec.external_outputs().len(), 1);

        let big = fan_in_app(8).unwrap();
        assert_eq!(big.components().len(), 9);
        let merger = big.component_by_name("Merger").unwrap().id();
        assert_eq!(big.input_wires_of(merger).len(), 8);

        assert!(fan_in_app(0).is_err());
    }

    #[test]
    fn determinism_same_input_same_behaviour() {
        // The determinism contract: two instances fed identical inputs
        // produce identical sends, features and checkpoints.
        let sentences = ["the cat", "sat on the mat", "the cat sat"];
        let mut a = WordCountSender::new();
        let mut b = WordCountSender::new();
        for s in sentences {
            let (ca, ia) = run_sentence(&mut a, s);
            let (cb, ib) = run_sentence(&mut b, s);
            assert_eq!(ca, cb);
            assert_eq!(ia, ib);
        }
        let snap_a = a.checkpoint(CheckpointMode::Full, VirtualTime::ZERO);
        let snap_b = b.checkpoint(CheckpointMode::Full, VirtualTime::ZERO);
        assert_eq!(
            tart_codec::Encode::to_bytes(&snap_a),
            tart_codec::Encode::to_bytes(&snap_b),
            "checkpoints are byte-identical"
        );
    }
}
