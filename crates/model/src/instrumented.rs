//! Automatic (semi-transparent) instrumentation.

use tart_vtime::{PortId, VirtualTime};

use crate::{BlockId, CheckpointMode, Component, Ctx, RestoreError, Snapshot, Value};

/// Wraps a component with automatic per-port feature counting, so
/// estimators can be calibrated without touching the component's code.
///
/// The paper's deployment step rewrites bytecode to count basic-block
/// executions (§II.C); a component written without any
/// [`Ctx::tick_block`] calls would otherwise present an empty feature
/// vector and only constant estimators could fit it. `Instrumented` supplies
/// the coarsest useful feature set transparently:
///
/// * block `PORT_BLOCK_BASE + port` counts messages per input port;
/// * block [`PAYLOAD_SIZE_BLOCK`] counts the message's payload weight
///   (list/map length, string length in 16-byte units) — a serviceable
///   stand-in for loop trip counts that scale with input size, exactly the
///   ξ of Code Body 1, where the loop runs once per word.
///
/// Components that *do* self-instrument compose fine too: wrapped and inner
/// block ids share one [`crate::Features`] space, so keep component-private
/// blocks below [`PORT_BLOCK_BASE`].
///
/// # Example
///
/// ```
/// use tart_model::{Component, Ctx, Instrumented, RecordingCtx, Value};
/// use tart_model::{CheckpointMode, RestoreError, Snapshot};
/// use tart_model::{PAYLOAD_SIZE_BLOCK, PORT_BLOCK_BASE, BlockId};
/// use tart_vtime::{PortId, VirtualTime};
///
/// // A component with no instrumentation of its own.
/// struct Plain;
/// impl Component for Plain {
///     fn on_message(&mut self, _p: PortId, _m: &Value, _c: &mut dyn Ctx) {}
///     fn checkpoint(&mut self, _m: CheckpointMode, vt: VirtualTime) -> Snapshot {
///         Snapshot::new(vt)
///     }
///     fn restore(&mut self, _s: &Snapshot) -> Result<(), RestoreError> { Ok(()) }
/// }
///
/// let mut wrapped = Instrumented::new(Plain);
/// let mut ctx = RecordingCtx::at(VirtualTime::ZERO);
/// let sentence = Value::List(vec![Value::from("the"), Value::from("cat")]);
/// wrapped.on_message(PortId::new(0), &sentence, &mut ctx);
/// assert_eq!(ctx.features().count(BlockId(PORT_BLOCK_BASE)), 1);
/// assert_eq!(ctx.features().count(PAYLOAD_SIZE_BLOCK), 2);
/// ```
#[derive(Debug, Default)]
pub struct Instrumented<C> {
    inner: C,
}

/// First block id used for per-port message counting: port `p` ticks block
/// `PORT_BLOCK_BASE + p`.
pub const PORT_BLOCK_BASE: u16 = 0x8000;

/// Block id carrying the payload-weight feature.
pub const PAYLOAD_SIZE_BLOCK: BlockId = BlockId(0xFFFF);

/// The payload-weight feature: how much input a handler has to walk.
fn payload_weight(v: &Value) -> u64 {
    match v {
        Value::Unit | Value::Bool(_) | Value::I64(_) | Value::F64(_) => 1,
        Value::Str(s) => (s.len() as u64 / 16).max(1),
        Value::Bytes(b) => (b.len() as u64 / 16).max(1),
        Value::List(items) => items.len() as u64,
        Value::Map(m) => m.len() as u64,
    }
}

impl<C: Component> Instrumented<C> {
    /// Wraps `inner`.
    pub fn new(inner: C) -> Self {
        Instrumented { inner }
    }

    /// Borrows the wrapped component.
    pub fn inner(&self) -> &C {
        &self.inner
    }

    /// Unwraps.
    pub fn into_inner(self) -> C {
        self.inner
    }
}

impl<C: Component> Component for Instrumented<C> {
    fn on_message(&mut self, port: PortId, msg: &Value, ctx: &mut dyn Ctx) {
        ctx.tick_block(BlockId(PORT_BLOCK_BASE.saturating_add(port.raw())), 1);
        ctx.tick_block(PAYLOAD_SIZE_BLOCK, payload_weight(msg));
        self.inner.on_message(port, msg, ctx);
    }

    fn on_call(&mut self, port: PortId, req: &Value, ctx: &mut dyn Ctx) -> Value {
        ctx.tick_block(BlockId(PORT_BLOCK_BASE.saturating_add(port.raw())), 1);
        ctx.tick_block(PAYLOAD_SIZE_BLOCK, payload_weight(req));
        self.inner.on_call(port, req, ctx)
    }

    fn checkpoint(&mut self, mode: CheckpointMode, vt: VirtualTime) -> Snapshot {
        self.inner.checkpoint(mode, vt)
    }

    fn restore(&mut self, snapshot: &Snapshot) -> Result<(), RestoreError> {
        self.inner.restore(snapshot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{WordCountSender, IN_PORT, SENDER_LOOP_BLOCK};
    use crate::RecordingCtx;

    #[test]
    fn counts_ports_and_payload_weight() {
        let mut c = Instrumented::new(WordCountSender::new());
        let mut ctx = RecordingCtx::at(VirtualTime::ZERO);
        let msg = Value::List(vec![Value::from("a"), Value::from("b"), Value::from("c")]);
        c.on_message(IN_PORT, &msg, &mut ctx);
        // The wrapper's features…
        assert_eq!(ctx.features().count(BlockId(PORT_BLOCK_BASE)), 1);
        assert_eq!(ctx.features().count(PAYLOAD_SIZE_BLOCK), 3);
        // …compose with the component's own instrumentation.
        assert_eq!(ctx.features().count(SENDER_LOOP_BLOCK), 3);
        // And the inner behaviour is untouched.
        assert_eq!(ctx.sends().len(), 1);
        assert_eq!(c.inner().distinct_words(), 3);
    }

    #[test]
    fn payload_weights() {
        assert_eq!(payload_weight(&Value::Unit), 1);
        assert_eq!(payload_weight(&Value::I64(9)), 1);
        assert_eq!(payload_weight(&Value::from("x")), 1);
        assert_eq!(payload_weight(&Value::from("x".repeat(64).as_str())), 4);
        assert_eq!(payload_weight(&Value::Bytes(vec![0; 48])), 3);
        assert_eq!(payload_weight(&Value::List(vec![Value::Unit; 5])), 5);
        assert_eq!(payload_weight(&Value::map([("a", Value::Unit)])), 1);
    }

    #[test]
    fn checkpoint_and_restore_delegate() {
        let mut c = Instrumented::new(WordCountSender::new());
        let mut ctx = RecordingCtx::at(VirtualTime::ZERO);
        c.on_message(IN_PORT, &Value::from("w1 w2"), &mut ctx);
        let snap = c.checkpoint(CheckpointMode::Full, VirtualTime::from_ticks(9));
        let mut fresh = Instrumented::new(WordCountSender::new());
        fresh.restore(&snap).unwrap();
        assert_eq!(fresh.inner().count_of("w1"), 1);
        let unwrapped = fresh.into_inner();
        assert_eq!(unwrapped.count_of("w2"), 1);
    }
}
