//! The component trait and handler context.

use std::fmt;

use tart_vtime::{PortId, VirtualTime};

use crate::{CheckpointMode, RestoreError, Snapshot, Value};

/// Identifies a basic block inside a component's handler code for estimator
/// feature counting.
///
/// The paper's deployment-time transformation instruments each basic block
/// and models compute time as a linear function of block execution counts
/// (Eq. 1: τ = β₀ + β₁ξ₁ + β₂ξ₂, §II.H). In this Rust rendering the
/// component reports counts explicitly through [`Ctx::tick_block`]; see
/// DESIGN.md §3 for why this substitution preserves the evaluated behaviour.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u16);

/// Basic-block execution counts for one handler invocation — the regressors
/// (ξ₁, ξ₂, …) an estimator maps to predicted compute time.
///
/// # Example
///
/// ```
/// use tart_model::{BlockId, Features};
///
/// let mut f = Features::new();
/// f.add(BlockId(0), 3); // loop ran three times
/// f.add(BlockId(0), 1);
/// assert_eq!(f.count(BlockId(0)), 4);
/// assert_eq!(f.count(BlockId(9)), 0);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Features {
    /// Sparse `(block, count)` pairs, kept sorted by block id.
    counts: Vec<(BlockId, u64)>,
}

impl Features {
    /// Creates an empty feature vector.
    pub fn new() -> Self {
        Features { counts: Vec::new() }
    }

    /// Creates a feature vector with a single block count — the common case
    /// of a handler dominated by one loop.
    pub fn single(block: BlockId, count: u64) -> Self {
        Features {
            counts: vec![(block, count)],
        }
    }

    /// Adds `count` executions of `block`.
    pub fn add(&mut self, block: BlockId, count: u64) {
        match self.counts.binary_search_by_key(&block, |&(b, _)| b) {
            Ok(i) => self.counts[i].1 += count,
            Err(i) => self.counts.insert(i, (block, count)),
        }
    }

    /// The accumulated count for `block` (zero if never ticked).
    pub fn count(&self, block: BlockId) -> u64 {
        self.counts
            .binary_search_by_key(&block, |&(b, _)| b)
            .map(|i| self.counts[i].1)
            .unwrap_or(0)
    }

    /// Iterates over `(block, count)` pairs in block order.
    pub fn iter(&self) -> impl Iterator<Item = (BlockId, u64)> + '_ {
        self.counts.iter().copied()
    }

    /// Returns `true` if no blocks were ticked.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Resets all counts.
    pub fn clear(&mut self) {
        self.counts.clear();
    }
}

/// The handler's window on the runtime.
///
/// A `Ctx` is passed to every [`Component`] handler invocation. All
/// interaction with the outside world flows through it, which is what lets
/// the runtime keep execution deterministic:
///
/// * [`now`](Ctx::now) is **virtual** time — the paper's deterministic
///   timing service ("a component may request the current time, because this
///   call is implemented by retrieving the current deterministic virtual
///   time", §II.B);
/// * [`send`](Ctx::send) / [`call`](Ctx::call) are the only communication
///   primitives (no shared memory, §II.B);
/// * [`tick_block`](Ctx::tick_block) reports basic-block counts so the
///   runtime can compute output virtual times with the component's
///   estimator.
pub trait Ctx {
    /// The current deterministic virtual time.
    fn now(&self) -> VirtualTime;

    /// Sends a one-way message out of `port`.
    fn send(&mut self, port: PortId, msg: Value);

    /// Makes a two-way call out of `port`, blocking this component (and only
    /// this component) until the reply arrives.
    fn call(&mut self, port: PortId, req: Value) -> Value;

    /// Records `count` executions of basic block `block` for estimator
    /// feature accounting.
    fn tick_block(&mut self, block: BlockId, count: u64);
}

/// A stateful TART component.
///
/// Components are ordinary Rust structs holding ordinary state (ideally in
/// the checkpointable containers of [`crate::CkptMap`] and friends). The
/// restrictions of §II.B apply: no internal concurrency, no
/// non-deterministic operations (use [`Ctx::now`] for time), interaction
/// only through the context.
///
/// The paper relies on the Guava dialect of Java to statically enforce that
/// "components don't inadvertently share state" (§I.B); in this Rust
/// rendering the ownership system plays that role for free — a `Component`
/// owns its state, handlers take `&mut self`, and nothing hands out shared
/// mutable aliases.
///
/// # Determinism contract
///
/// Given the same state and the same `(port, msg, ctx.now())`, a handler
/// must perform the same computation: same state updates, same sends with
/// the same payloads, same block ticks. The runtime guarantees in exchange
/// that handlers are invoked in the same order with the same virtual times
/// on every replay.
pub trait Component: Send {
    /// Handles a one-way message arriving on `port`.
    fn on_message(&mut self, port: PortId, msg: &Value, ctx: &mut dyn Ctx);

    /// Handles a two-way call arriving on `port` and produces the reply.
    ///
    /// The default implementation panics: components that never receive
    /// calls need not implement it.
    ///
    /// # Panics
    ///
    /// The default implementation always panics.
    fn on_call(&mut self, port: PortId, req: &Value, ctx: &mut dyn Ctx) -> Value {
        let _ = (req, ctx);
        panic!("component received a call on {port} but does not implement on_call");
    }

    /// Captures a checkpoint of the component's state.
    ///
    /// In [`CheckpointMode::Incremental`] mode, only state changed since the
    /// previous `checkpoint` call need be captured. `vt` records the virtual
    /// time through which the state is current.
    fn checkpoint(&mut self, mode: CheckpointMode, vt: VirtualTime) -> Snapshot;

    /// Applies one snapshot from a restore chain (one full snapshot followed
    /// by incremental ones, in order).
    ///
    /// # Errors
    ///
    /// Returns a [`RestoreError`] if a chunk is corrupt or inconsistent.
    fn restore(&mut self, snapshot: &Snapshot) -> Result<(), RestoreError>;

    /// A deterministic 32-byte digest of the component's complete state as
    /// of `vt` — the basis of verified replay (DESIGN.md §15).
    ///
    /// The default derives it from a full-mode [`Component::checkpoint`],
    /// whose canonical encoding is a pure function of logical state for
    /// components built on the checkpointable containers. The capture
    /// resets incremental-journal bookkeeping (journals are drained into
    /// the discarded full image), which is harmless at the two call sites —
    /// immediately after a recorded checkpoint, and immediately after a
    /// restore — where the journals are already empty.
    ///
    /// Components with cheap state may override this with a side-effect-free
    /// [`crate::FoldState`] walk of their fields; the override must remain a
    /// pure function of logical state and `vt`.
    fn state_hash(&mut self, vt: VirtualTime) -> crate::StateHash {
        self.checkpoint(CheckpointMode::Full, vt).state_hash()
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// A recording [`Ctx`] for driving components outside a runtime: unit
/// tests, calibration harnesses, and the engine's internal execution all
/// use it to capture what a handler did.
///
/// # Example
///
/// ```
/// use tart_model::{BlockId, Ctx, RecordingCtx, Value};
/// use tart_vtime::{PortId, VirtualTime};
///
/// let mut ctx = RecordingCtx::at(VirtualTime::from_ticks(50_000));
/// ctx.tick_block(BlockId(0), 3);
/// ctx.send(PortId::new(1), Value::from(7i64));
/// assert_eq!(ctx.sends().len(), 1);
/// assert_eq!(ctx.features().count(BlockId(0)), 3);
/// ```
#[derive(Debug, Default)]
pub struct RecordingCtx {
    now: VirtualTime,
    sends: Vec<(PortId, Value)>,
    features: Features,
    /// Scripted replies for `call`; popped front-first.
    call_replies: Vec<Value>,
    calls: Vec<(PortId, Value)>,
}

impl RecordingCtx {
    /// Creates a context whose `now()` reports `vt`.
    pub fn at(vt: VirtualTime) -> Self {
        RecordingCtx {
            now: vt,
            ..RecordingCtx::default()
        }
    }

    /// Queues a reply for the next [`Ctx::call`] the component makes.
    pub fn expect_call_reply(&mut self, reply: Value) {
        self.call_replies.push(reply);
    }

    /// The messages sent so far, in order.
    pub fn sends(&self) -> &[(PortId, Value)] {
        &self.sends
    }

    /// The calls made so far, in order.
    pub fn calls(&self) -> &[(PortId, Value)] {
        &self.calls
    }

    /// The accumulated feature counts.
    pub fn features(&self) -> &Features {
        &self.features
    }

    /// Drains and returns the recorded sends.
    pub fn take_sends(&mut self) -> Vec<(PortId, Value)> {
        std::mem::take(&mut self.sends)
    }

    /// Drains and returns the accumulated features.
    pub fn take_features(&mut self) -> Features {
        std::mem::take(&mut self.features)
    }
}

impl Ctx for RecordingCtx {
    fn now(&self) -> VirtualTime {
        self.now
    }

    fn send(&mut self, port: PortId, msg: Value) {
        self.sends.push((port, msg));
    }

    fn call(&mut self, port: PortId, req: Value) -> Value {
        self.calls.push((port, req));
        if self.call_replies.is_empty() {
            panic!("component called {port} but no reply was scripted");
        }
        self.call_replies.remove(0)
    }

    fn tick_block(&mut self, block: BlockId, count: u64) {
        self.features.add(block, count);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn features_accumulate_and_sort() {
        let mut f = Features::new();
        f.add(BlockId(2), 5);
        f.add(BlockId(0), 1);
        f.add(BlockId(2), 5);
        assert_eq!(f.count(BlockId(2)), 10);
        assert_eq!(f.count(BlockId(0)), 1);
        assert_eq!(f.count(BlockId(1)), 0);
        let order: Vec<BlockId> = f.iter().map(|(b, _)| b).collect();
        assert_eq!(order, vec![BlockId(0), BlockId(2)]);
        assert!(!f.is_empty());
        f.clear();
        assert!(f.is_empty());
    }

    #[test]
    fn features_single() {
        let f = Features::single(BlockId(0), 3);
        assert_eq!(f.count(BlockId(0)), 3);
        assert_eq!(f.iter().count(), 1);
    }

    #[test]
    fn recording_ctx_captures_everything() {
        let mut ctx = RecordingCtx::at(VirtualTime::from_ticks(100));
        assert_eq!(ctx.now(), VirtualTime::from_ticks(100));
        ctx.send(PortId::new(1), Value::I64(7));
        ctx.tick_block(BlockId(0), 2);
        ctx.expect_call_reply(Value::from("pong"));
        let reply = ctx.call(PortId::new(2), Value::from("ping"));
        assert_eq!(reply, Value::from("pong"));
        assert_eq!(ctx.sends(), &[(PortId::new(1), Value::I64(7))]);
        assert_eq!(ctx.calls(), &[(PortId::new(2), Value::from("ping"))]);
        assert_eq!(ctx.features().count(BlockId(0)), 2);
        let sends = ctx.take_sends();
        assert_eq!(sends.len(), 1);
        assert!(ctx.sends().is_empty());
        let f = ctx.take_features();
        assert_eq!(f.count(BlockId(0)), 2);
        assert!(ctx.features().is_empty());
    }

    #[test]
    #[should_panic(expected = "no reply was scripted")]
    fn unscripted_call_panics() {
        let mut ctx = RecordingCtx::default();
        let _ = ctx.call(PortId::new(0), Value::Unit);
    }

    struct MessageOnly;
    impl Component for MessageOnly {
        fn on_message(&mut self, _p: PortId, _m: &Value, _c: &mut dyn Ctx) {}
        fn checkpoint(&mut self, _m: CheckpointMode, vt: VirtualTime) -> Snapshot {
            Snapshot::new(vt)
        }
        fn restore(&mut self, _s: &Snapshot) -> Result<(), RestoreError> {
            Ok(())
        }
    }

    #[test]
    #[should_panic(expected = "does not implement on_call")]
    fn default_on_call_panics() {
        let mut c = MessageOnly;
        let mut ctx = RecordingCtx::default();
        let _ = c.on_call(PortId::new(0), &Value::Unit, &mut ctx);
    }

    #[test]
    fn block_id_display() {
        assert_eq!(BlockId(3).to_string(), "b3");
    }
}
