//! Serialized checkpoint state.

use std::collections::BTreeMap;
use std::fmt;

use bytes::{BufMut, BytesMut};
use tart_codec::{Decode, DecodeError, Encode, Reader};
use tart_vtime::VirtualTime;

/// Whether a checkpoint captures all state or only changes since the last
/// checkpoint.
///
/// §II.F.2: "For large structures like hash tables needing incremental
/// checkpointing, updates since the last checkpoint are stored in an
/// auxiliary structure."
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CheckpointMode {
    /// Capture the complete state of every field.
    Full,
    /// Capture only fields (or parts of fields) modified since the previous
    /// checkpoint; unchanged fields are omitted.
    Incremental,
}

/// One field's contribution to a snapshot.
#[derive(Clone, PartialEq, Eq)]
pub enum StateChunk {
    /// The complete canonical encoding of the field.
    Full(Vec<u8>),
    /// A journal of updates to apply on top of previously restored state.
    Delta(Vec<u8>),
}

impl StateChunk {
    /// The payload bytes, regardless of kind.
    pub fn bytes(&self) -> &[u8] {
        match self {
            StateChunk::Full(b) | StateChunk::Delta(b) => b,
        }
    }

    /// Returns `true` for a full (self-contained) chunk.
    pub fn is_full(&self) -> bool {
        matches!(self, StateChunk::Full(_))
    }
}

impl fmt::Debug for StateChunk {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StateChunk::Full(b) => write!(f, "Full({} bytes)", b.len()),
            StateChunk::Delta(b) => write!(f, "Delta({} bytes)", b.len()),
        }
    }
}

impl Encode for StateChunk {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            StateChunk::Full(b) => {
                buf.put_u8(0);
                b.encode(buf);
            }
            StateChunk::Delta(b) => {
                buf.put_u8(1);
                b.encode(buf);
            }
        }
    }
}

impl Decode for StateChunk {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.read_u8()? {
            0 => Ok(StateChunk::Full(Vec::decode(r)?)),
            1 => Ok(StateChunk::Delta(Vec::decode(r)?)),
            tag => Err(DecodeError::InvalidTag {
                tag,
                type_name: "StateChunk",
            }),
        }
    }
}

/// A checkpoint of one component's state at a virtual time.
///
/// Snapshots are produced by [`Component::checkpoint`](crate::Component::checkpoint)
/// and shipped (asynchronously, as "soft checkpoints") to the passive
/// replica. A replica reconstructs state by applying a full snapshot
/// followed by any number of incremental ones, in virtual-time order.
///
/// # Example
///
/// ```
/// use tart_model::{Snapshot, StateChunk};
/// use tart_vtime::VirtualTime;
///
/// let mut snap = Snapshot::new(VirtualTime::from_ticks(1000));
/// snap.put("counts", StateChunk::Full(vec![1, 2, 3]));
/// assert!(snap.get("counts").is_some());
/// assert_eq!(snap.vt(), VirtualTime::from_ticks(1000));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Snapshot {
    vt: VirtualTime,
    chunks: BTreeMap<String, StateChunk>,
}

impl Snapshot {
    /// Creates an empty snapshot taken at virtual time `vt`.
    pub fn new(vt: VirtualTime) -> Self {
        Snapshot {
            vt,
            chunks: BTreeMap::new(),
        }
    }

    /// The virtual time at which the state was captured: all messages with
    /// dequeue time ≤ `vt` are reflected, none after.
    pub fn vt(&self) -> VirtualTime {
        self.vt
    }

    /// Adds (or replaces) a field's chunk.
    pub fn put(&mut self, field: &str, chunk: StateChunk) {
        self.chunks.insert(field.to_owned(), chunk);
    }

    /// Looks up a field's chunk.
    pub fn get(&self, field: &str) -> Option<&StateChunk> {
        self.chunks.get(field)
    }

    /// Iterates over `(field, chunk)` pairs in field order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &StateChunk)> {
        self.chunks.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of fields captured.
    pub fn len(&self) -> usize {
        self.chunks.len()
    }

    /// Returns `true` if no fields were captured (a legal incremental
    /// snapshot when nothing changed).
    pub fn is_empty(&self) -> bool {
        self.chunks.is_empty()
    }

    /// Total payload bytes across chunks (for overhead accounting).
    pub fn payload_bytes(&self) -> usize {
        self.chunks.values().map(|c| c.bytes().len()).sum()
    }

    /// Returns `true` if every chunk is full (the snapshot is
    /// self-contained and can seed a restore chain).
    pub fn is_self_contained(&self) -> bool {
        self.chunks.values().all(StateChunk::is_full)
    }

    /// The deterministic digest of this snapshot's canonical encoding
    /// (capture time, then chunks in field order).
    ///
    /// For a **full** snapshot this is a pure function of the component's
    /// logical state at `vt` — the basis of verified replay: the engine
    /// records it at checkpoint time and recomputes it at every replay
    /// horizon, so a replica or restore chain that diverged (bit rot, torn
    /// state, nondeterministic re-execution) is caught before it speaks.
    pub fn state_hash(&self) -> crate::StateHash {
        crate::hash_of(self)
    }
}

impl Encode for Snapshot {
    fn encode(&self, buf: &mut BytesMut) {
        self.vt.encode(buf);
        self.chunks.encode(buf);
    }
}

impl Decode for Snapshot {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Snapshot {
            vt: VirtualTime::decode(r)?,
            chunks: BTreeMap::decode(r)?,
        })
    }
}

/// An error restoring component state from snapshots.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RestoreError {
    /// A chunk failed to decode.
    Corrupt {
        /// Field whose chunk was corrupt.
        field: String,
        /// Underlying decode error.
        source: DecodeError,
    },
    /// A delta chunk arrived for a field that has not seen a full chunk.
    DeltaWithoutBase {
        /// The offending field.
        field: String,
    },
    /// The snapshot named a field the component does not declare.
    UnknownField {
        /// The offending field.
        field: String,
    },
}

impl fmt::Display for RestoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RestoreError::Corrupt { field, source } => {
                write!(f, "field {field:?} failed to decode: {source}")
            }
            RestoreError::DeltaWithoutBase { field } => {
                write!(f, "delta chunk for field {field:?} before any full chunk")
            }
            RestoreError::UnknownField { field } => {
                write!(f, "snapshot names unknown field {field:?}")
            }
        }
    }
}

impl std::error::Error for RestoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RestoreError::Corrupt { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vt(t: u64) -> VirtualTime {
        VirtualTime::from_ticks(t)
    }

    #[test]
    fn snapshot_round_trips() {
        let mut s = Snapshot::new(vt(500));
        s.put("a", StateChunk::Full(vec![1, 2]));
        s.put("b", StateChunk::Delta(vec![3]));
        let bytes = s.to_bytes();
        let back = Snapshot::from_bytes(&bytes).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.vt(), vt(500));
        assert_eq!(back.len(), 2);
        assert_eq!(back.payload_bytes(), 3);
        assert!(!back.is_self_contained());
        assert!(!back.is_empty());
    }

    #[test]
    fn empty_snapshot_is_legal() {
        let s = Snapshot::new(vt(0));
        assert!(s.is_empty());
        assert!(s.is_self_contained());
        let back = Snapshot::from_bytes(&s.to_bytes()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn put_replaces() {
        let mut s = Snapshot::new(vt(1));
        s.put("x", StateChunk::Full(vec![1]));
        s.put("x", StateChunk::Full(vec![2]));
        assert_eq!(s.len(), 1);
        assert_eq!(s.get("x").unwrap().bytes(), &[2]);
    }

    #[test]
    fn iter_is_field_ordered() {
        let mut s = Snapshot::new(vt(1));
        s.put("zeta", StateChunk::Full(vec![]));
        s.put("alpha", StateChunk::Full(vec![]));
        let fields: Vec<&str> = s.iter().map(|(f, _)| f).collect();
        assert_eq!(fields, vec!["alpha", "zeta"]);
    }

    #[test]
    fn chunk_debug_and_kind() {
        let full = StateChunk::Full(vec![0; 4]);
        let delta = StateChunk::Delta(vec![0; 2]);
        assert!(full.is_full());
        assert!(!delta.is_full());
        assert_eq!(format!("{full:?}"), "Full(4 bytes)");
        assert_eq!(format!("{delta:?}"), "Delta(2 bytes)");
    }

    #[test]
    fn chunk_invalid_tag() {
        assert!(matches!(
            StateChunk::from_bytes(&[9]),
            Err(DecodeError::InvalidTag { tag: 9, .. })
        ));
    }

    #[test]
    fn restore_error_display() {
        let e = RestoreError::DeltaWithoutBase { field: "m".into() };
        assert!(e.to_string().contains("\"m\""));
        let e = RestoreError::UnknownField { field: "q".into() };
        assert!(e.to_string().contains("unknown"));
        let e = RestoreError::Corrupt {
            field: "c".into(),
            source: DecodeError::InvalidUtf8,
        };
        assert!(e.to_string().contains("failed to decode"));
        use std::error::Error;
        assert!(e.source().is_some());
    }
}
