//! Self-describing message payloads.

use std::collections::BTreeMap;
use std::fmt;

use bytes::{BufMut, BytesMut};
use tart_codec::{Decode, DecodeError, Encode, Reader};

/// A self-describing payload carried by TART messages.
///
/// Components exchange `Value`s rather than arbitrary Rust types so that the
/// runtime can serialize any in-flight message into the external-input log
/// and into replay buffers without knowing component-specific types, and so
/// that payload bytes are canonical (equal values ⇒ equal encodings).
///
/// # Example
///
/// ```
/// use tart_model::Value;
///
/// let sentence = Value::from(vec![Value::from("the"), Value::from("cat")]);
/// assert_eq!(sentence.as_list().unwrap().len(), 2);
/// assert_eq!(Value::from(7i64).as_i64(), Some(7));
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub enum Value {
    /// The empty payload.
    #[default]
    Unit,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A UTF-8 string.
    Str(String),
    /// Raw bytes.
    Bytes(Vec<u8>),
    /// An ordered list of values.
    List(Vec<Value>),
    /// A string-keyed map of values (ordered, for canonical encoding).
    Map(BTreeMap<String, Value>),
}

impl Value {
    /// Returns the boolean if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the integer if this is an `I64`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the float if this is an `F64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the string if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the bytes if this is a `Bytes`.
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            Value::Bytes(b) => Some(b),
            _ => None,
        }
    }

    /// Returns the list if this is a `List`.
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(l) => Some(l),
            _ => None,
        }
    }

    /// Returns the map if this is a `Map`.
    pub fn as_map(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Looks up a key if this is a `Map`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map().and_then(|m| m.get(key))
    }

    /// Returns `true` for [`Value::Unit`].
    pub fn is_unit(&self) -> bool {
        matches!(self, Value::Unit)
    }

    /// Convenience constructor for a map payload.
    ///
    /// # Example
    ///
    /// ```
    /// use tart_model::Value;
    ///
    /// let v = Value::map([("count", Value::from(3i64))]);
    /// assert_eq!(v.get("count").and_then(Value::as_i64), Some(3));
    /// ```
    pub fn map<'a>(entries: impl IntoIterator<Item = (&'a str, Value)>) -> Value {
        Value::Map(
            entries
                .into_iter()
                .map(|(k, v)| (k.to_owned(), v))
                .collect(),
        )
    }
}

impl From<()> for Value {
    fn from((): ()) -> Self {
        Value::Unit
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::I64(i64::from(v))
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<Vec<u8>> for Value {
    fn from(v: Vec<u8>) -> Self {
        Value::Bytes(v)
    }
}

impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Self {
        Value::List(v)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Unit => write!(f, "()"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Bytes(b) => write!(f, "{} bytes", b.len()),
            Value::List(l) => {
                write!(f, "[")?;
                for (i, v) in l.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::Map(m) => {
                write!(f, "{{")?;
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{k}: {v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

const TAG_UNIT: u8 = 0;
const TAG_BOOL: u8 = 1;
const TAG_I64: u8 = 2;
const TAG_F64: u8 = 3;
const TAG_STR: u8 = 4;
const TAG_BYTES: u8 = 5;
const TAG_LIST: u8 = 6;
const TAG_MAP: u8 = 7;

impl Encode for Value {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            Value::Unit => buf.put_u8(TAG_UNIT),
            Value::Bool(b) => {
                buf.put_u8(TAG_BOOL);
                b.encode(buf);
            }
            Value::I64(v) => {
                buf.put_u8(TAG_I64);
                v.encode(buf);
            }
            Value::F64(v) => {
                buf.put_u8(TAG_F64);
                v.encode(buf);
            }
            Value::Str(s) => {
                buf.put_u8(TAG_STR);
                s.encode(buf);
            }
            Value::Bytes(b) => {
                buf.put_u8(TAG_BYTES);
                b.encode(buf);
            }
            Value::List(l) => {
                buf.put_u8(TAG_LIST);
                l.encode(buf);
            }
            Value::Map(m) => {
                buf.put_u8(TAG_MAP);
                m.encode(buf);
            }
        }
    }
}

impl Decode for Value {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.read_u8()? {
            TAG_UNIT => Ok(Value::Unit),
            TAG_BOOL => Ok(Value::Bool(bool::decode(r)?)),
            TAG_I64 => Ok(Value::I64(i64::decode(r)?)),
            TAG_F64 => Ok(Value::F64(f64::decode(r)?)),
            TAG_STR => Ok(Value::Str(String::decode(r)?)),
            TAG_BYTES => Ok(Value::Bytes(Vec::decode(r)?)),
            TAG_LIST => Ok(Value::List(Vec::decode(r)?)),
            TAG_MAP => Ok(Value::Map(BTreeMap::decode(r)?)),
            tag => Err(DecodeError::InvalidTag {
                tag,
                type_name: "Value",
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: &Value) {
        let bytes = v.to_bytes();
        assert_eq!(&Value::from_bytes(&bytes).unwrap(), v);
    }

    #[test]
    fn all_variants_round_trip() {
        round_trip(&Value::Unit);
        round_trip(&Value::Bool(true));
        round_trip(&Value::I64(-42));
        round_trip(&Value::F64(61.827));
        round_trip(&Value::from("hello"));
        round_trip(&Value::Bytes(vec![0, 255, 128]));
        round_trip(&Value::List(vec![Value::I64(1), Value::from("x")]));
        round_trip(&Value::map([
            ("count", Value::I64(3)),
            ("word", Value::from("cat")),
            ("nested", Value::List(vec![Value::Unit])),
        ]));
    }

    #[test]
    fn accessors_match_variants() {
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::I64(5).as_i64(), Some(5));
        assert_eq!(Value::F64(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::from("s").as_str(), Some("s"));
        assert_eq!(Value::Bytes(vec![1]).as_bytes(), Some(&[1u8][..]));
        assert_eq!(Value::List(vec![]).as_list(), Some(&[][..]));
        assert!(Value::Unit.is_unit());
        // Cross-variant access is None.
        assert_eq!(Value::I64(1).as_str(), None);
        assert_eq!(Value::Unit.as_i64(), None);
        assert_eq!(Value::from("x").as_map(), None);
        assert_eq!(Value::Unit.get("k"), None);
    }

    #[test]
    fn map_lookup() {
        let v = Value::map([("a", Value::I64(1)), ("b", Value::from("two"))]);
        assert_eq!(v.get("a").and_then(Value::as_i64), Some(1));
        assert_eq!(v.get("b").and_then(Value::as_str), Some("two"));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn canonical_encoding_of_maps() {
        let a = Value::map([("x", Value::I64(1)), ("y", Value::I64(2))]);
        let b = Value::map([("y", Value::I64(2)), ("x", Value::I64(1))]);
        assert_eq!(a.to_bytes(), b.to_bytes());
    }

    #[test]
    fn invalid_tag_is_error() {
        assert!(matches!(
            Value::from_bytes(&[99]),
            Err(DecodeError::InvalidTag { tag: 99, .. })
        ));
    }

    #[test]
    fn display_is_readable() {
        let v = Value::map([("n", Value::I64(1))]);
        assert_eq!(v.to_string(), "{n: 1}");
        assert_eq!(Value::Unit.to_string(), "()");
        assert_eq!(
            Value::List(vec![Value::I64(1), Value::I64(2)]).to_string(),
            "[1, 2]"
        );
        assert_eq!(Value::Bytes(vec![1, 2, 3]).to_string(), "3 bytes");
        assert_eq!(Value::from("hi").to_string(), "\"hi\"");
        assert_eq!(Value::Bool(false).to_string(), "false");
        assert_eq!(Value::F64(1.5).to_string(), "1.5");
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from(()), Value::Unit);
        assert_eq!(Value::from(3u32), Value::I64(3));
        assert_eq!(Value::from(String::from("s")), Value::Str("s".into()));
        assert_eq!(Value::from(vec![1u8, 2]), Value::Bytes(vec![1, 2]));
        assert_eq!(Value::default(), Value::Unit);
    }

    #[test]
    fn deeply_nested_round_trip() {
        let mut v = Value::I64(0);
        for _ in 0..50 {
            v = Value::List(vec![v]);
        }
        round_trip(&v);
    }
}
