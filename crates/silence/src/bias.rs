//! The hyper-aggressive bias floor.

use tart_vtime::{VirtualDuration, VirtualTime};

/// Sender-side state for hyper-aggressive silence propagation (the "bias
/// algorithm", §II.G.1/§II.G.3).
///
/// When a slow sender goes idle it promises silence `bias` ticks *beyond*
/// what its oracle can actually guarantee, eagerly marking "certain ticks as
/// silent before knowing whether they normally would be silent or not". The
/// price is a **floor**: every later message must carry a virtual time past
/// the promised range, so the sender's estimates are clamped upward. Because
/// the floor changes virtual-time arithmetic, enabling/disabling or resizing
/// the bias at runtime requires a determinism fault (§II.G.4).
///
/// # Example
///
/// ```
/// use tart_silence::BiasFloor;
/// use tart_vtime::{VirtualDuration, VirtualTime};
///
/// let vt = VirtualTime::from_ticks;
/// let mut bias = BiasFloor::new(VirtualDuration::from_ticks(500));
/// // Oracle says silent through 1000; the bias promises through 1500.
/// let promised = bias.promise_on_idle(vt(1000));
/// assert_eq!(promised, vt(1500));
/// // A message the estimator placed at 1200 must now move past the floor.
/// assert_eq!(bias.clamp_send_vt(vt(1200)), vt(1501));
/// // Estimates already beyond the floor pass through unchanged.
/// assert_eq!(bias.clamp_send_vt(vt(9000)), vt(9000));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BiasFloor {
    bias: VirtualDuration,
    /// Every tick `<= floor` has been promised silent; data must be later.
    floor: VirtualTime,
    active: bool,
}

impl BiasFloor {
    /// Creates a floor that promises `bias` extra ticks on each idle.
    pub fn new(bias: VirtualDuration) -> Self {
        BiasFloor {
            bias,
            floor: VirtualTime::ZERO,
            active: false,
        }
    }

    /// The configured bias.
    pub fn bias(&self) -> VirtualDuration {
        self.bias
    }

    /// The current floor: all ticks through it are promised silent.
    pub fn floor(&self) -> Option<VirtualTime> {
        self.active.then_some(self.floor)
    }

    /// Called when the sender goes idle and its oracle guarantees silence
    /// through `oracle_bound`. Extends the promise by the bias and returns
    /// the new bound to advertise.
    pub fn promise_on_idle(&mut self, oracle_bound: VirtualTime) -> VirtualTime {
        let promised = oracle_bound.saturating_add(self.bias);
        if !self.active || promised > self.floor {
            self.floor = promised;
            self.active = true;
        }
        self.floor
    }

    /// Clamps an estimator-produced send time so it never lands inside the
    /// promised-silent range.
    pub fn clamp_send_vt(&self, estimated: VirtualTime) -> VirtualTime {
        if self.active && estimated <= self.floor {
            self.floor.next()
        } else {
            estimated
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vt(t: u64) -> VirtualTime {
        VirtualTime::from_ticks(t)
    }

    fn d(t: u64) -> VirtualDuration {
        VirtualDuration::from_ticks(t)
    }

    #[test]
    fn inactive_floor_is_transparent() {
        let bias = BiasFloor::new(d(100));
        assert_eq!(bias.floor(), None);
        assert_eq!(bias.clamp_send_vt(vt(5)), vt(5));
        assert_eq!(bias.bias(), d(100));
    }

    #[test]
    fn idle_promise_extends_by_bias() {
        let mut bias = BiasFloor::new(d(100));
        assert_eq!(bias.promise_on_idle(vt(1_000)), vt(1_100));
        assert_eq!(bias.floor(), Some(vt(1_100)));
        // Messages inside the promised range are pushed just past it.
        assert_eq!(bias.clamp_send_vt(vt(1_100)), vt(1_101));
        assert_eq!(bias.clamp_send_vt(vt(1_050)), vt(1_101));
        assert_eq!(bias.clamp_send_vt(vt(1_101)), vt(1_101));
    }

    #[test]
    fn floor_never_retracts() {
        let mut bias = BiasFloor::new(d(10));
        bias.promise_on_idle(vt(1_000));
        bias.promise_on_idle(vt(500)); // stale oracle bound
        assert_eq!(bias.floor(), Some(vt(1_010)));
        bias.promise_on_idle(vt(2_000));
        assert_eq!(bias.floor(), Some(vt(2_010)));
    }

    #[test]
    fn zero_bias_degenerates_to_plain_promises() {
        let mut bias = BiasFloor::new(VirtualDuration::ZERO);
        assert_eq!(bias.promise_on_idle(vt(700)), vt(700));
        assert_eq!(
            bias.clamp_send_vt(vt(700)),
            vt(701),
            "floor tick itself is promised"
        );
        assert_eq!(bias.clamp_send_vt(vt(701)), vt(701));
    }
}
