//! Sender-side bookkeeping of advertised silence.

use tart_vtime::{VirtualTime, WireId};

/// Tracks, per output wire, how far silence has already been advertised,
/// so the sender never transmits redundant or retracting advances.
///
/// The advertiser does not decide *what is* silent — that comes from the
/// sender's silence oracle (idle/busy/prescient reasoning, §II.H) — only
/// whether a freshly computed bound is worth transmitting.
///
/// # Example
///
/// ```
/// use tart_silence::SilenceAdvertiser;
/// use tart_vtime::{VirtualTime, WireId};
///
/// let vt = VirtualTime::from_ticks;
/// let mut adv = SilenceAdvertiser::new(WireId::new(3));
/// // Sending data at t implicitly advertises everything through t.
/// adv.record_data(vt(232_999));
/// // A silence bound at or below the watermark is not worth sending…
/// assert_eq!(adv.advance_to(vt(100_000)), None);
/// // …a later one is.
/// assert_eq!(adv.advance_to(vt(300_000)), Some(vt(300_000)));
/// // And it is never re-sent.
/// assert_eq!(adv.advance_to(vt(300_000)), None);
/// ```
#[derive(Clone, Debug)]
pub struct SilenceAdvertiser {
    wire: WireId,
    advertised_through: VirtualTime,
    advertised_anything: bool,
    /// Count of explicit silence advances emitted (overhead metric).
    advances_sent: u64,
}

impl SilenceAdvertiser {
    /// Creates an advertiser for one output wire with nothing advertised.
    pub fn new(wire: WireId) -> Self {
        SilenceAdvertiser {
            wire,
            advertised_through: VirtualTime::ZERO,
            advertised_anything: false,
            advances_sent: 0,
        }
    }

    /// The wire this advertiser covers.
    pub fn wire(&self) -> WireId {
        self.wire
    }

    /// The watermark through which the receiver already knows this wire's
    /// ticks (via data or explicit silence).
    pub fn advertised_through(&self) -> VirtualTime {
        self.advertised_through
    }

    /// Records that a data message stamped `vt` was sent: the receiver now
    /// knows every tick through `vt`.
    pub fn record_data(&mut self, vt: VirtualTime) {
        if !self.advertised_anything || vt > self.advertised_through {
            self.advertised_through = vt;
            self.advertised_anything = true;
        }
    }

    /// Offers a freshly computed silence bound. Returns `Some(bound)` if an
    /// explicit silence advance should be transmitted (and records it as
    /// sent), or `None` if the receiver already knows at least this much.
    pub fn advance_to(&mut self, silent_through: VirtualTime) -> Option<VirtualTime> {
        if self.advertised_anything && silent_through <= self.advertised_through {
            return None;
        }
        self.advertised_through = silent_through;
        self.advertised_anything = true;
        self.advances_sent += 1;
        Some(silent_through)
    }

    /// Number of explicit silence advances emitted so far (an overhead
    /// metric: lazy propagation keeps this at zero).
    pub fn advances_sent(&self) -> u64 {
        self.advances_sent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vt(t: u64) -> VirtualTime {
        VirtualTime::from_ticks(t)
    }

    #[test]
    fn fresh_advertiser_sends_first_bound() {
        let mut adv = SilenceAdvertiser::new(WireId::new(1));
        assert_eq!(adv.wire(), WireId::new(1));
        // Even a bound of tick 0 is news when nothing was advertised.
        assert_eq!(adv.advance_to(vt(0)), Some(vt(0)));
        assert_eq!(adv.advances_sent(), 1);
    }

    #[test]
    fn data_supersedes_explicit_silence() {
        let mut adv = SilenceAdvertiser::new(WireId::new(1));
        adv.record_data(vt(500));
        assert_eq!(adv.advertised_through(), vt(500));
        assert_eq!(adv.advance_to(vt(400)), None, "already implied by data");
        assert_eq!(adv.advance_to(vt(500)), None, "exactly the watermark");
        assert_eq!(adv.advance_to(vt(501)), Some(vt(501)));
    }

    #[test]
    fn data_never_moves_watermark_backward() {
        let mut adv = SilenceAdvertiser::new(WireId::new(1));
        adv.advance_to(vt(1_000));
        adv.record_data(vt(900)); // late-arriving bookkeeping; ignored
        assert_eq!(adv.advertised_through(), vt(1_000));
    }

    #[test]
    fn advances_are_monotone_and_counted() {
        let mut adv = SilenceAdvertiser::new(WireId::new(2));
        assert!(adv.advance_to(vt(10)).is_some());
        assert!(adv.advance_to(vt(20)).is_some());
        assert!(adv.advance_to(vt(20)).is_none());
        assert!(adv.advance_to(vt(15)).is_none());
        assert_eq!(adv.advances_sent(), 2);
        assert_eq!(adv.advertised_through(), vt(20));
    }

    #[test]
    fn lazy_usage_sends_no_advances() {
        // Lazy propagation only ever calls record_data.
        let mut adv = SilenceAdvertiser::new(WireId::new(3));
        for t in [100, 200, 300] {
            adv.record_data(vt(t));
        }
        assert_eq!(adv.advances_sent(), 0);
        assert_eq!(adv.advertised_through(), vt(300));
    }
}
