//! Curiosity probes: receiver-initiated silence requests.

use std::collections::BTreeMap;

use bytes::BytesMut;
use tart_codec::{Decode, DecodeError, Encode, Reader};
use tart_vtime::{VirtualTime, WireId};

/// A receiver's request that the sender of `wire` compute and transmit a
/// fresh silence bound, because the receiver is stuck in a pessimism delay
/// needing to know the wire's ticks through `needed_through` (§II.H).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ProbeRequest {
    /// The wire whose silence is needed.
    pub wire: WireId,
    /// The receiver can dequeue once this wire is accounted through here.
    pub needed_through: VirtualTime,
}

/// The sender's answer to a [`ProbeRequest`]: the wire is silent through
/// `silent_through` (no message with `vt <= silent_through` will ever be
/// sent beyond those already transmitted).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ProbeReply {
    /// The probed wire.
    pub wire: WireId,
    /// The freshly computed silence bound.
    pub silent_through: VirtualTime,
}

impl Encode for ProbeRequest {
    fn encode(&self, buf: &mut BytesMut) {
        self.wire.encode(buf);
        self.needed_through.encode(buf);
    }
}

impl Decode for ProbeRequest {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(ProbeRequest {
            wire: WireId::decode(r)?,
            needed_through: VirtualTime::decode(r)?,
        })
    }
}

impl Encode for ProbeReply {
    fn encode(&self, buf: &mut BytesMut) {
        self.wire.encode(buf);
        self.silent_through.encode(buf);
    }
}

impl Decode for ProbeReply {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(ProbeReply {
            wire: WireId::decode(r)?,
            silent_through: VirtualTime::decode(r)?,
        })
    }
}

/// Receiver-side probe duplicate suppression.
///
/// While a probe for a wire is outstanding, re-probing the same wire for the
/// same (or an earlier) need is wasted traffic; a *later* need justifies a
/// new probe. The tracker enforces exactly that.
///
/// # Example
///
/// ```
/// use tart_silence::ProbeTracker;
/// use tart_vtime::{VirtualTime, WireId};
///
/// let vt = VirtualTime::from_ticks;
/// let w = WireId::new(1);
/// let mut probes = ProbeTracker::new();
/// assert!(probes.should_probe(w, vt(100)), "first probe goes out");
/// assert!(!probes.should_probe(w, vt(100)), "duplicate suppressed");
/// assert!(probes.should_probe(w, vt(200)), "later need re-probes");
/// probes.on_reply(w);
/// assert!(probes.should_probe(w, vt(200)), "after a reply, probing resumes");
/// ```
#[derive(Clone, Debug, Default)]
pub struct ProbeTracker {
    /// Wire → highest `needed_through` already probed and not yet answered.
    outstanding: BTreeMap<WireId, VirtualTime>,
    probes_sent: u64,
}

impl ProbeTracker {
    /// Creates a tracker with no outstanding probes.
    pub fn new() -> Self {
        ProbeTracker::default()
    }

    /// Decides whether to issue a probe for `wire` needing silence through
    /// `needed_through`; records it as outstanding when so.
    pub fn should_probe(&mut self, wire: WireId, needed_through: VirtualTime) -> bool {
        match self.outstanding.get(&wire) {
            Some(&already) if needed_through <= already => false,
            _ => {
                self.outstanding.insert(wire, needed_through);
                self.probes_sent += 1;
                true
            }
        }
    }

    /// Notes that a reply (or any silence advance) arrived from `wire`,
    /// clearing its outstanding probe.
    pub fn on_reply(&mut self, wire: WireId) {
        self.outstanding.remove(&wire);
    }

    /// Total probes issued (the overhead metric of Fig 4: "average of 1.5
    /// per message" at the optimal estimator).
    pub fn probes_sent(&self) -> u64 {
        self.probes_sent
    }

    /// Number of wires with an unanswered probe.
    pub fn outstanding_count(&self) -> usize {
        self.outstanding.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vt(t: u64) -> VirtualTime {
        VirtualTime::from_ticks(t)
    }

    #[test]
    fn probe_types_round_trip_codec() {
        let req = ProbeRequest {
            wire: WireId::new(7),
            needed_through: vt(202_000),
        };
        assert_eq!(ProbeRequest::from_bytes(&req.to_bytes()).unwrap(), req);
        let rep = ProbeReply {
            wire: WireId::new(7),
            silent_through: vt(232_999),
        };
        assert_eq!(ProbeReply::from_bytes(&rep.to_bytes()).unwrap(), rep);
    }

    #[test]
    fn duplicate_probes_suppressed_per_wire() {
        let mut t = ProbeTracker::new();
        let w1 = WireId::new(1);
        let w2 = WireId::new(2);
        assert!(t.should_probe(w1, vt(100)));
        assert!(t.should_probe(w2, vt(100)), "other wires are independent");
        assert!(!t.should_probe(w1, vt(100)));
        assert!(
            !t.should_probe(w1, vt(50)),
            "earlier need is already covered"
        );
        assert_eq!(t.probes_sent(), 2);
        assert_eq!(t.outstanding_count(), 2);
    }

    #[test]
    fn later_need_escalates() {
        let mut t = ProbeTracker::new();
        let w = WireId::new(1);
        assert!(t.should_probe(w, vt(100)));
        assert!(t.should_probe(w, vt(101)));
        assert_eq!(t.probes_sent(), 2);
        assert_eq!(t.outstanding_count(), 1, "still one wire");
    }

    #[test]
    fn reply_reopens_probing() {
        let mut t = ProbeTracker::new();
        let w = WireId::new(1);
        assert!(t.should_probe(w, vt(100)));
        t.on_reply(w);
        assert_eq!(t.outstanding_count(), 0);
        assert!(
            t.should_probe(w, vt(100)),
            "same need re-probes after reply"
        );
        // Reply for an unknown wire is harmless.
        t.on_reply(WireId::new(99));
    }
}
