//! Silence propagation policy selection.

use std::fmt;

use bytes::{BufMut, BytesMut};
use tart_codec::{Decode, DecodeError, Encode, Reader};
use tart_vtime::VirtualDuration;

/// Which silence propagation strategy a deployment uses (§II.G.3).
///
/// Lazy, curiosity-driven and aggressive propagation "can be arbitrarily
/// mixed and/or dynamically changed without requiring a determinism fault",
/// because they change only how silence is *communicated*, not which ticks
/// are silent. Hyper-aggressive bias is different: it changes which future
/// ticks may carry data, so switching it requires a determinism fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SilencePolicy {
    /// Silence travels only implicitly with the next data message: a message
    /// at `t2` retroactively accounts ticks `t1+1 ..= t2-1` as silent. Can
    /// cause unbounded pessimism delay on idle wires.
    Lazy,
    /// Receivers in pessimism delay explicitly probe the lagging senders,
    /// which respond with a freshly computed silence bound. This is the
    /// paper's measured configuration (§II.H, §III).
    Curiosity,
    /// Senders volunteer a silence advance whenever they have been quiet for
    /// `max_quiet` of real time, without being asked.
    Aggressive {
        /// Quiet period after which silence is volunteered.
        max_quiet: VirtualDuration,
    },
    /// Curiosity plus a sender-side bias: a slow sender eagerly promises
    /// `bias` extra ticks of silence whenever it goes idle, at the cost of
    /// pushing its own future messages past the promised range (the "bias
    /// algorithm" of Aguilera & Strom, §II.G.1 item 3).
    HyperAggressive {
        /// Extra silence promised beyond the oracle bound.
        bias: VirtualDuration,
    },
}

impl SilencePolicy {
    /// Returns `true` if receivers should issue curiosity probes under this
    /// policy.
    pub fn probes(&self) -> bool {
        matches!(
            self,
            SilencePolicy::Curiosity | SilencePolicy::HyperAggressive { .. }
        )
    }

    /// Returns `true` if switching *to or from* this policy at runtime
    /// requires a determinism fault.
    pub fn switch_needs_determinism_fault(&self) -> bool {
        matches!(self, SilencePolicy::HyperAggressive { .. })
    }
}

impl fmt::Display for SilencePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SilencePolicy::Lazy => write!(f, "lazy"),
            SilencePolicy::Curiosity => write!(f, "curiosity"),
            SilencePolicy::Aggressive { max_quiet } => write!(f, "aggressive({max_quiet})"),
            SilencePolicy::HyperAggressive { bias } => write!(f, "hyper-aggressive({bias})"),
        }
    }
}

impl Encode for SilencePolicy {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            SilencePolicy::Lazy => buf.put_u8(0),
            SilencePolicy::Curiosity => buf.put_u8(1),
            SilencePolicy::Aggressive { max_quiet } => {
                buf.put_u8(2);
                max_quiet.encode(buf);
            }
            SilencePolicy::HyperAggressive { bias } => {
                buf.put_u8(3);
                bias.encode(buf);
            }
        }
    }
}

impl Decode for SilencePolicy {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.read_u8()? {
            0 => Ok(SilencePolicy::Lazy),
            1 => Ok(SilencePolicy::Curiosity),
            2 => Ok(SilencePolicy::Aggressive {
                max_quiet: VirtualDuration::decode(r)?,
            }),
            3 => Ok(SilencePolicy::HyperAggressive {
                bias: VirtualDuration::decode(r)?,
            }),
            tag => Err(DecodeError::InvalidTag {
                tag,
                type_name: "SilencePolicy",
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_behaviour_by_policy() {
        assert!(!SilencePolicy::Lazy.probes());
        assert!(SilencePolicy::Curiosity.probes());
        assert!(!SilencePolicy::Aggressive {
            max_quiet: VirtualDuration::from_micros(100)
        }
        .probes());
        assert!(SilencePolicy::HyperAggressive {
            bias: VirtualDuration::from_micros(50)
        }
        .probes());
    }

    #[test]
    fn only_bias_switches_need_faults() {
        assert!(!SilencePolicy::Lazy.switch_needs_determinism_fault());
        assert!(!SilencePolicy::Curiosity.switch_needs_determinism_fault());
        assert!(!SilencePolicy::Aggressive {
            max_quiet: VirtualDuration::TICK
        }
        .switch_needs_determinism_fault());
        assert!(SilencePolicy::HyperAggressive {
            bias: VirtualDuration::TICK
        }
        .switch_needs_determinism_fault());
    }

    #[test]
    fn codec_round_trip() {
        for p in [
            SilencePolicy::Lazy,
            SilencePolicy::Curiosity,
            SilencePolicy::Aggressive {
                max_quiet: VirtualDuration::from_micros(200),
            },
            SilencePolicy::HyperAggressive {
                bias: VirtualDuration::from_micros(50),
            },
        ] {
            assert_eq!(SilencePolicy::from_bytes(&p.to_bytes()).unwrap(), p);
        }
        assert!(SilencePolicy::from_bytes(&[9]).is_err());
    }

    #[test]
    fn display_names() {
        assert_eq!(SilencePolicy::Lazy.to_string(), "lazy");
        assert_eq!(SilencePolicy::Curiosity.to_string(), "curiosity");
        assert!(SilencePolicy::Aggressive {
            max_quiet: VirtualDuration::from_ticks(5)
        }
        .to_string()
        .starts_with("aggressive"));
        assert!(SilencePolicy::HyperAggressive {
            bias: VirtualDuration::from_ticks(5)
        }
        .to_string()
        .starts_with("hyper"));
    }
}
