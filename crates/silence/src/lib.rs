//! Silence propagation strategies.
//!
//! In TART every tick on a wire is either a data tick or a *silence* tick
//! (§II.D). A receiver may only dequeue the earliest pending message once
//! every other input wire has promised silence through that message's
//! virtual time; the wait for those promises is **pessimism delay**, the
//! principal overhead of deterministic scheduling (§II.E). How eagerly
//! senders communicate silence is therefore the main performance lever
//! (§II.G.3):
//!
//! * **Lazy** — silence travels only implicitly with the next data message;
//! * **Curiosity-driven** — a receiver in pessimism delay sends a
//!   [`ProbeRequest`] asking the sender to compute a fresh silence bound;
//! * **Aggressive** — senders volunteer silence after a quiet period,
//!   unprompted;
//! * **Hyper-aggressive (bias)** — a slow sender *pre-promises* future ticks
//!   silent before knowing whether they would be silent, constraining its
//!   own future sends to later virtual times ([`BiasFloor`]). Changing this
//!   bias changes virtual-time arithmetic and therefore requires a
//!   determinism fault, unlike the other strategies (§II.G.4).
//!
//! The types here are pure protocol bookkeeping — deciding *when* to
//! advertise silence and *what* to ask — shared by the simulator
//! (`tart-sim`) and the real runtime (`tart-engine`), both of which supply
//! the transport.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod advertiser;
mod bias;
mod policy;
mod probe;

pub use advertiser::SilenceAdvertiser;
pub use bias::BiasFloor;
pub use policy::SilencePolicy;
pub use probe::{ProbeReply, ProbeRequest, ProbeTracker};
