//! LEB128 varints and zig-zag signed mapping.

use bytes::{BufMut, BytesMut};

use crate::{DecodeError, Reader};

/// Maximum encoded width of a `u64` varint (⌈64 / 7⌉ bytes).
pub(crate) const MAX_VARINT_LEN: usize = 10;

/// Appends `v` as an unsigned LEB128 varint.
pub(crate) fn write_varint(buf: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

/// Reads an unsigned LEB128 varint.
pub(crate) fn read_varint(r: &mut Reader<'_>) -> Result<u64, DecodeError> {
    let mut v: u64 = 0;
    for i in 0..MAX_VARINT_LEN {
        let byte = r.read_u8()?;
        let payload = (byte & 0x7f) as u64;
        // The 10th byte may only contribute the single remaining bit.
        if i == MAX_VARINT_LEN - 1 && payload > 1 {
            return Err(DecodeError::VarintOverflow);
        }
        v |= payload << (7 * i);
        if byte & 0x80 == 0 {
            return Ok(v);
        }
    }
    Err(DecodeError::VarintOverflow)
}

/// Zig-zag maps a signed value into an unsigned one with small magnitudes
/// staying small: 0, -1, 1, -2, 2, … → 0, 1, 2, 3, 4, …
pub(crate) fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub(crate) fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round(v: u64) -> u64 {
        let mut buf = BytesMut::new();
        write_varint(&mut buf, v);
        let mut r = Reader::new(&buf);
        let out = read_varint(&mut r).unwrap();
        assert_eq!(r.remaining(), 0);
        out
    }

    #[test]
    fn varint_round_trips_boundaries() {
        for v in [
            0,
            1,
            127,
            128,
            255,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX,
        ] {
            assert_eq!(round(v), v);
        }
    }

    #[test]
    fn small_values_are_one_byte() {
        let mut buf = BytesMut::new();
        write_varint(&mut buf, 61);
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn overlong_varint_rejected() {
        // 11 continuation bytes.
        let bytes = [0x80u8; 11];
        let mut r = Reader::new(&bytes);
        assert_eq!(
            read_varint(&mut r).unwrap_err(),
            DecodeError::VarintOverflow
        );
        // A 10-byte varint whose last byte exceeds the single remaining bit.
        let mut bytes = [0x80u8; 10];
        bytes[9] = 0x02;
        let mut r = Reader::new(&bytes);
        assert_eq!(
            read_varint(&mut r).unwrap_err(),
            DecodeError::VarintOverflow
        );
    }

    #[test]
    fn truncated_varint_is_eof() {
        let bytes = [0x80u8, 0x80];
        let mut r = Reader::new(&bytes);
        assert!(matches!(
            read_varint(&mut r),
            Err(DecodeError::UnexpectedEof { .. })
        ));
    }

    #[test]
    fn zigzag_maps_small_magnitudes_small() {
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        assert_eq!(zigzag(-2), 3);
        for v in [i64::MIN, i64::MAX, -12345, 12345, 0] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }
}
