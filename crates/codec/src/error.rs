//! Decoding errors.

use std::fmt;

/// An error produced while decoding TART's canonical binary form.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The input ended before the value was complete.
    UnexpectedEof {
        /// How many more bytes were needed.
        needed: usize,
        /// How many bytes remained.
        remaining: usize,
    },
    /// A varint ran past its maximum encoded width.
    VarintOverflow,
    /// An enum tag byte had no corresponding variant.
    InvalidTag {
        /// The offending tag value.
        tag: u8,
        /// The type being decoded (static description for diagnostics).
        type_name: &'static str,
    },
    /// A string field held invalid UTF-8.
    InvalidUtf8,
    /// A declared length exceeded the number of available input bytes —
    /// rejected early so corrupt input cannot trigger huge allocations.
    LengthOverflow {
        /// The declared element count or byte length.
        declared: u64,
    },
    /// [`crate::Decode::from_bytes`] finished with input left over.
    TrailingBytes {
        /// Number of unconsumed bytes.
        remaining: usize,
    },
    /// A checksum did not match (corrupt log record).
    ChecksumMismatch,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnexpectedEof { needed, remaining } => {
                write!(
                    f,
                    "unexpected end of input: needed {needed} bytes, {remaining} remain"
                )
            }
            DecodeError::VarintOverflow => write!(f, "varint exceeded maximum width"),
            DecodeError::InvalidTag { tag, type_name } => {
                write!(f, "invalid tag {tag} while decoding {type_name}")
            }
            DecodeError::InvalidUtf8 => write!(f, "string field held invalid UTF-8"),
            DecodeError::LengthOverflow { declared } => {
                write!(f, "declared length {declared} exceeds available input")
            }
            DecodeError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after value")
            }
            DecodeError::ChecksumMismatch => write!(f, "checksum mismatch"),
        }
    }
}

impl std::error::Error for DecodeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = DecodeError::UnexpectedEof {
            needed: 4,
            remaining: 1,
        };
        assert_eq!(
            e.to_string(),
            "unexpected end of input: needed 4 bytes, 1 remain"
        );
        let e = DecodeError::InvalidTag {
            tag: 9,
            type_name: "Value",
        };
        assert!(e.to_string().contains("Value"));
        assert!(!DecodeError::VarintOverflow.to_string().is_empty());
        assert!(!DecodeError::InvalidUtf8.to_string().is_empty());
        assert!(!DecodeError::ChecksumMismatch.to_string().is_empty());
        assert!(DecodeError::LengthOverflow { declared: 7 }
            .to_string()
            .contains('7'));
        assert!(DecodeError::TrailingBytes { remaining: 3 }
            .to_string()
            .contains('3'));
    }

    #[test]
    fn is_std_error() {
        fn takes_err<E: std::error::Error + Send + Sync + 'static>(_e: E) {}
        takes_err(DecodeError::InvalidUtf8);
    }
}
