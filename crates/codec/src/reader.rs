//! Cursor over an input byte slice.

use crate::DecodeError;

/// A cheap cursor over a byte slice, tracking the decode position.
///
/// # Example
///
/// ```
/// use tart_codec::Reader;
///
/// let mut r = Reader::new(&[1, 2, 3]);
/// assert_eq!(r.read_u8()?, 1);
/// assert_eq!(r.take(2)?, &[2, 3]);
/// assert_eq!(r.remaining(), 0);
/// # Ok::<(), tart_codec::DecodeError>(())
/// ```
#[derive(Clone, Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Current byte offset from the start of the input.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Reads a single byte.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::UnexpectedEof`] at end of input.
    pub fn read_u8(&mut self) -> Result<u8, DecodeError> {
        let b = *self.buf.get(self.pos).ok_or(DecodeError::UnexpectedEof {
            needed: 1,
            remaining: 0,
        })?;
        self.pos += 1;
        Ok(b)
    }

    /// Consumes exactly `n` bytes and returns them.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::UnexpectedEof`] if fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::UnexpectedEof {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Validates that a declared element count can possibly fit in the
    /// remaining input (at `min_elem_size` bytes per element), guarding
    /// against allocation bombs from corrupt input.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::LengthOverflow`] when it cannot.
    pub fn check_len(&self, declared: u64, min_elem_size: usize) -> Result<usize, DecodeError> {
        let declared_usize =
            usize::try_from(declared).map_err(|_| DecodeError::LengthOverflow { declared })?;
        let need = declared_usize
            .checked_mul(min_elem_size.max(1))
            .ok_or(DecodeError::LengthOverflow { declared })?;
        if need > self.remaining() {
            return Err(DecodeError::LengthOverflow { declared });
        }
        Ok(declared_usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_and_take_advance_position() {
        let mut r = Reader::new(&[9, 8, 7, 6]);
        assert_eq!(r.read_u8().unwrap(), 9);
        assert_eq!(r.position(), 1);
        assert_eq!(r.take(2).unwrap(), &[8, 7]);
        assert_eq!(r.remaining(), 1);
    }

    #[test]
    fn eof_is_an_error() {
        let mut r = Reader::new(&[1]);
        r.read_u8().unwrap();
        assert_eq!(
            r.read_u8().unwrap_err(),
            DecodeError::UnexpectedEof {
                needed: 1,
                remaining: 0
            }
        );
        assert!(matches!(r.take(1), Err(DecodeError::UnexpectedEof { .. })));
    }

    #[test]
    fn check_len_rejects_allocation_bombs() {
        let r = Reader::new(&[0; 8]);
        assert_eq!(r.check_len(8, 1).unwrap(), 8);
        assert!(r.check_len(9, 1).is_err());
        assert!(r.check_len(u64::MAX, 1).is_err());
        assert!(r.check_len(5, 2).is_err());
        // Zero-size elements still count as one byte minimum.
        assert!(r.check_len(100, 0).is_err());
    }
}
