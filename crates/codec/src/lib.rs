//! Canonical, deterministic binary codec for TART.
//!
//! Checkpoints, message logs and wire envelopes in TART must be
//! **byte-identical across runs**: replay correctness is checked by
//! comparing serialized state, and duplicate messages are discarded by
//! timestamp equality. A general-purpose serialization framework makes no
//! canonical-form promise, so TART carries its own small codec:
//!
//! * [`Encode`] / [`Decode`] — the serialization traits;
//! * LEB128 varints for integers, zig-zag for signed values;
//! * map encodings sorted by key, so logically equal states produce equal
//!   bytes regardless of hash-map iteration order;
//! * [`crc32`] — the checksum used by the append-only message log.
//!
//! # Example
//!
//! ```
//! use tart_codec::{Decode, Encode};
//! use std::collections::HashMap;
//!
//! let mut counts: HashMap<String, u64> = HashMap::new();
//! counts.insert("the".into(), 3);
//! counts.insert("cat".into(), 1);
//!
//! let bytes = counts.to_bytes();
//! let back: HashMap<String, u64> = HashMap::from_bytes(&bytes)?;
//! assert_eq!(back, counts);
//! # Ok::<(), tart_codec::DecodeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod crc;
mod error;
mod primitives;
mod reader;
mod varint;

pub use crc::crc32;
pub use error::DecodeError;
pub use reader::Reader;

use bytes::BytesMut;

/// A value serializable into TART's canonical binary form.
///
/// Implementations must be *deterministic*: the same logical value always
/// encodes to the same bytes, on every run and every platform.
pub trait Encode {
    /// Appends the canonical encoding of `self` to `buf`.
    fn encode(&self, buf: &mut BytesMut);

    /// Convenience: encodes into a fresh byte vector.
    fn to_bytes(&self) -> Vec<u8> {
        let mut buf = BytesMut::new();
        self.encode(&mut buf);
        buf.to_vec()
    }
}

/// A value deserializable from TART's canonical binary form.
pub trait Decode: Sized {
    /// Reads one value from `r`, advancing it past the consumed bytes.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] on malformed or truncated input.
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError>;

    /// Convenience: decodes a value that must occupy the whole slice.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::TrailingBytes`] if input remains after the
    /// value, in addition to any error from [`Decode::decode`].
    fn from_bytes(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::new(bytes);
        let v = Self::decode(&mut r)?;
        if r.remaining() != 0 {
            return Err(DecodeError::TrailingBytes {
                remaining: r.remaining(),
            });
        }
        Ok(v)
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_types)] // proptests exercise the canonical HashMap codec
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::{BTreeMap, HashMap};

    fn round_trip<T: Encode + Decode + PartialEq + std::fmt::Debug>(v: &T) {
        let bytes = v.to_bytes();
        let back = T::from_bytes(&bytes).expect("decode");
        assert_eq!(&back, v);
    }

    proptest! {
        #[test]
        fn u64_round_trips(v in any::<u64>()) { round_trip(&v); }

        #[test]
        fn i64_round_trips(v in any::<i64>()) { round_trip(&v); }

        #[test]
        fn f64_round_trips(v in any::<f64>().prop_filter("NaN compares unequal", |f| !f.is_nan())) {
            round_trip(&v);
        }

        #[test]
        fn string_round_trips(v in ".*") { round_trip(&v); }

        #[test]
        fn nested_structures_round_trip(
            v in proptest::collection::vec((any::<u32>(), ".{0,8}"), 0..20)
        ) {
            round_trip(&v);
        }

        #[test]
        fn option_round_trips(v in proptest::option::of(any::<u64>())) { round_trip(&v); }

        #[test]
        fn hash_map_encoding_is_canonical(
            pairs in proptest::collection::btree_map(any::<u16>(), any::<u32>(), 0..30)
        ) {
            let pairs: Vec<(u16, u32)> = pairs.into_iter().collect();
            let forward: HashMap<u16, u32> = pairs.iter().copied().collect();
            let reverse: HashMap<u16, u32> = pairs.iter().rev().copied().collect();
            prop_assert_eq!(forward.to_bytes(), reverse.to_bytes());
            let as_btree: BTreeMap<u16, u32> = pairs.iter().copied().collect();
            // HashMap and BTreeMap of equal content encode identically.
            prop_assert_eq!(forward.to_bytes(), as_btree.to_bytes());
            round_trip(&forward);
        }

        #[test]
        fn truncated_input_errors_not_panics(
            v in proptest::collection::vec(any::<u64>(), 0..10),
            cut in 0usize..64,
        ) {
            let bytes = v.to_bytes();
            if cut < bytes.len() {
                let r = Vec::<u64>::from_bytes(&bytes[..cut]);
                prop_assert!(r.is_err());
            }
        }
    }
}
