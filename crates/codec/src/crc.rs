//! CRC-32 (IEEE 802.3) checksum for log-record integrity.

/// Computes the CRC-32 (IEEE polynomial, reflected) of `data`.
///
/// Used by the append-only external-message log to detect torn or corrupt
/// records during replay after a failure.
///
/// # Example
///
/// ```
/// use tart_codec::crc32;
///
/// // Standard check value for the ASCII string "123456789".
/// assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
/// ```
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc: u32 = 0xffff_ffff;
    for &byte in data {
        let idx = ((crc ^ u32::from(byte)) & 0xff) as usize;
        crc = (crc >> 8) ^ TABLE[idx];
    }
    !crc
}

/// Lookup table for the reflected IEEE polynomial 0xEDB88320.
static TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xedb8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b"a"), 0xe8b7_be43);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414f_a339
        );
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"external message payload at vt 50000";
        let base = crc32(data);
        let mut corrupted = data.to_vec();
        for byte in 0..corrupted.len() {
            for bit in 0..8 {
                corrupted[byte] ^= 1 << bit;
                assert_ne!(crc32(&corrupted), base, "flip at {byte}:{bit} undetected");
                corrupted[byte] ^= 1 << bit;
            }
        }
    }

    #[test]
    fn is_deterministic() {
        let data: Vec<u8> = (0..=255).collect();
        assert_eq!(crc32(&data), crc32(&data));
    }
}
