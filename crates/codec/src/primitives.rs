//! `Encode`/`Decode` implementations for primitives, std containers and the
//! `tart-vtime` vocabulary types.

#[allow(clippy::disallowed_types)]
// tart-lint: allow(HASH-ITER) -- codec support for hash maps is deliberately canonical: encode sorts by key before emission, decode is order-independent
use std::collections::{BTreeMap, HashMap};
use std::hash::{BuildHasher, Hash};

use bytes::{BufMut, BytesMut};
use tart_vtime::{
    ComponentId, EngineId, Interval, IntervalSet, PortId, VirtualDuration, VirtualTime, WireId,
};

use crate::varint::{read_varint, unzigzag, write_varint, zigzag};
use crate::{Decode, DecodeError, Encode, Reader};

// ---------------------------------------------------------------------------
// Unsigned integers: varint encoded.
// ---------------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Encode for $t {
            fn encode(&self, buf: &mut BytesMut) {
                write_varint(buf, u64::from(*self));
            }
        }
        impl Decode for $t {
            fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
                let raw = read_varint(r)?;
                <$t>::try_from(raw).map_err(|_| DecodeError::VarintOverflow)
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64);

impl Encode for usize {
    fn encode(&self, buf: &mut BytesMut) {
        write_varint(buf, *self as u64);
    }
}

impl Decode for usize {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let raw = read_varint(r)?;
        usize::try_from(raw).map_err(|_| DecodeError::VarintOverflow)
    }
}

// ---------------------------------------------------------------------------
// Signed integers: zig-zag varint.
// ---------------------------------------------------------------------------

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Encode for $t {
            fn encode(&self, buf: &mut BytesMut) {
                write_varint(buf, zigzag(i64::from(*self)));
            }
        }
        impl Decode for $t {
            fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
                let raw = unzigzag(read_varint(r)?);
                <$t>::try_from(raw).map_err(|_| DecodeError::VarintOverflow)
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64);

// ---------------------------------------------------------------------------
// Other primitives.
// ---------------------------------------------------------------------------

impl Encode for bool {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u8(u8::from(*self));
    }
}

impl Decode for bool {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.read_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(DecodeError::InvalidTag {
                tag,
                type_name: "bool",
            }),
        }
    }
}

impl Encode for f64 {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u64(self.to_bits());
    }
}

impl Decode for f64 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let bytes = r.take(8)?;
        let mut raw = [0u8; 8];
        raw.copy_from_slice(bytes);
        Ok(f64::from_bits(u64::from_be_bytes(raw)))
    }
}

impl Encode for String {
    fn encode(&self, buf: &mut BytesMut) {
        self.as_str().encode(buf);
    }
}

impl Encode for str {
    fn encode(&self, buf: &mut BytesMut) {
        write_varint(buf, self.len() as u64);
        buf.put_slice(self.as_bytes());
    }
}

impl Encode for &str {
    fn encode(&self, buf: &mut BytesMut) {
        (**self).encode(buf);
    }
}

impl Decode for String {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let len = read_varint(r)?;
        let len = r.check_len(len, 1).map_err(|e| match e {
            // A zero-length string is fine even with no remaining input.
            DecodeError::LengthOverflow { declared: 0 } => unreachable!(),
            other => other,
        })?;
        let bytes = r.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::InvalidUtf8)
    }
}

impl Encode for () {
    fn encode(&self, _buf: &mut BytesMut) {}
}

impl Decode for () {
    fn decode(_r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Containers.
// ---------------------------------------------------------------------------

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            None => buf.put_u8(0),
            Some(v) => {
                buf.put_u8(1);
                v.encode(buf);
            }
        }
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.read_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            tag => Err(DecodeError::InvalidTag {
                tag,
                type_name: "Option",
            }),
        }
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, buf: &mut BytesMut) {
        self.as_slice().encode(buf);
    }
}

impl<T: Encode> Encode for [T] {
    fn encode(&self, buf: &mut BytesMut) {
        write_varint(buf, self.len() as u64);
        for item in self {
            item.encode(buf);
        }
    }
}

impl<T: Decode> Decode for Vec<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let declared = read_varint(r)?;
        if declared == 0 {
            return Ok(Vec::new());
        }
        let len = r.check_len(declared, 1)?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<A: Encode, B: Encode> Encode for (A, B) {
    fn encode(&self, buf: &mut BytesMut) {
        self.0.encode(buf);
        self.1.encode(buf);
    }
}

impl<A: Decode, B: Decode> Decode for (A, B) {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl<A: Encode, B: Encode, C: Encode> Encode for (A, B, C) {
    fn encode(&self, buf: &mut BytesMut) {
        self.0.encode(buf);
        self.1.encode(buf);
        self.2.encode(buf);
    }
}

impl<A: Decode, B: Decode, C: Decode> Decode for (A, B, C) {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok((A::decode(r)?, B::decode(r)?, C::decode(r)?))
    }
}

impl<K: Encode + Ord, V: Encode> Encode for BTreeMap<K, V> {
    fn encode(&self, buf: &mut BytesMut) {
        write_varint(buf, self.len() as u64);
        for (k, v) in self {
            k.encode(buf);
            v.encode(buf);
        }
    }
}

impl<K: Decode + Ord, V: Decode> Decode for BTreeMap<K, V> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let declared = read_varint(r)?;
        if declared == 0 {
            return Ok(BTreeMap::new());
        }
        let len = r.check_len(declared, 1)?;
        let mut out = BTreeMap::new();
        for _ in 0..len {
            let k = K::decode(r)?;
            let v = V::decode(r)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

/// Hash maps encode *canonically*: entries are sorted by key bytes first, so
/// two maps with equal contents produce identical encodings regardless of
/// iteration order.
#[allow(clippy::disallowed_types)]
// tart-lint: allow(HASH-ITER) -- Encode for HashMap sorts entries by key first; the image is canonical (see the doc comment and the codec proptest)
impl<K, V, S> Encode for HashMap<K, V, S>
where
    K: Encode + Ord + Hash,
    V: Encode,
    S: BuildHasher,
{
    fn encode(&self, buf: &mut BytesMut) {
        let mut entries: Vec<(&K, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        write_varint(buf, entries.len() as u64);
        for (k, v) in entries {
            k.encode(buf);
            v.encode(buf);
        }
    }
}

#[allow(clippy::disallowed_types)]
// tart-lint: allow(HASH-ITER) -- Decode fills a fresh map; no order observed
impl<K, V, S> Decode for HashMap<K, V, S>
where
    K: Decode + Eq + Hash,
    V: Decode,
    S: BuildHasher + Default,
{
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let declared = read_varint(r)?;
        if declared == 0 {
            // tart-lint: allow(HASH-ITER) -- constructing the decode target; no order observed
            return Ok(HashMap::default());
        }
        let len = r.check_len(declared, 1)?;
        // tart-lint: allow(HASH-ITER) -- constructing the decode target; no order observed
        let mut out = HashMap::with_capacity_and_hasher(len, S::default());
        for _ in 0..len {
            let k = K::decode(r)?;
            let v = V::decode(r)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------------------
// tart-vtime vocabulary types.
// ---------------------------------------------------------------------------

macro_rules! impl_newtype_u64 {
    ($t:ty, $from:path, $to:ident) => {
        impl Encode for $t {
            fn encode(&self, buf: &mut BytesMut) {
                write_varint(buf, self.$to());
            }
        }
        impl Decode for $t {
            fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
                Ok($from(read_varint(r)?))
            }
        }
    };
}

impl_newtype_u64!(VirtualTime, VirtualTime::from_ticks, as_ticks);
impl_newtype_u64!(VirtualDuration, VirtualDuration::from_ticks, as_ticks);

macro_rules! impl_id {
    ($t:ty, $raw:ty) => {
        impl Encode for $t {
            fn encode(&self, buf: &mut BytesMut) {
                write_varint(buf, u64::from(self.raw()));
            }
        }
        impl Decode for $t {
            fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
                let raw = read_varint(r)?;
                <$raw>::try_from(raw)
                    .map(<$t>::new)
                    .map_err(|_| DecodeError::VarintOverflow)
            }
        }
    };
}

impl_id!(WireId, u32);
impl_id!(ComponentId, u32);
impl_id!(EngineId, u32);
impl_id!(PortId, u16);

impl Encode for Interval {
    fn encode(&self, buf: &mut BytesMut) {
        self.lo().encode(buf);
        // Delta-encode the upper bound: short intervals stay short.
        write_varint(buf, self.hi().as_ticks() - self.lo().as_ticks());
    }
}

impl Decode for Interval {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let lo = VirtualTime::decode(r)?;
        let span = read_varint(r)?;
        let hi_ticks = lo
            .as_ticks()
            .checked_add(span)
            .ok_or(DecodeError::VarintOverflow)?;
        Ok(Interval::new(lo, VirtualTime::from_ticks(hi_ticks)))
    }
}

impl Encode for IntervalSet {
    fn encode(&self, buf: &mut BytesMut) {
        let runs: Vec<Interval> = self.iter().collect();
        runs.encode(buf);
    }
}

impl Decode for IntervalSet {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let runs: Vec<Interval> = Vec::decode(r)?;
        Ok(runs.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Decode, Encode};

    fn round_trip<T: Encode + Decode + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = v.to_bytes();
        assert_eq!(T::from_bytes(&bytes).unwrap(), v);
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(0u8);
        round_trip(255u8);
        round_trip(61_827u32);
        round_trip(u64::MAX);
        round_trip(-42i32);
        round_trip(i64::MIN);
        round_trip(true);
        round_trip(false);
        round_trip(61.827f64);
        round_trip(String::from("deterministic merge"));
        round_trip(String::new());
        round_trip(());
        round_trip(12345usize);
    }

    #[test]
    fn bool_rejects_junk_tag() {
        assert!(matches!(
            bool::from_bytes(&[7]),
            Err(DecodeError::InvalidTag { tag: 7, .. })
        ));
    }

    #[test]
    fn option_and_vec_round_trip() {
        round_trip(Option::<u64>::None);
        round_trip(Some(99u64));
        round_trip(vec![1u32, 2, 3]);
        round_trip(Vec::<String>::new());
        round_trip(vec![(1u8, String::from("a")), (2, String::from("b"))]);
        round_trip((1u8, 2u16, String::from("c")));
    }

    #[test]
    #[allow(clippy::disallowed_types)] // exercises the canonical HashMap codec
    fn maps_round_trip() {
        let mut h = HashMap::new();
        h.insert(String::from("alpha"), 1u64);
        h.insert(String::from("beta"), 2);
        round_trip(h);
        let mut b = BTreeMap::new();
        b.insert(5u32, String::from("five"));
        round_trip(b);
        round_trip(HashMap::<u8, u8>::new());
    }

    #[test]
    fn vtime_types_round_trip() {
        round_trip(VirtualTime::from_ticks(233_000));
        round_trip(VirtualDuration::from_micros(61));
        round_trip(WireId::new(7));
        round_trip(ComponentId::new(1));
        round_trip(EngineId::new(2));
        round_trip(PortId::new(3));
        round_trip(Interval::new(
            VirtualTime::from_ticks(100),
            VirtualTime::from_ticks(233_000),
        ));
        let set: IntervalSet = [
            Interval::new(VirtualTime::from_ticks(0), VirtualTime::from_ticks(9)),
            Interval::new(VirtualTime::from_ticks(20), VirtualTime::from_ticks(29)),
        ]
        .into_iter()
        .collect();
        round_trip(set);
    }

    #[test]
    fn narrowing_decode_rejects_oversized() {
        let bytes = (u64::from(u32::MAX) + 1).to_bytes();
        assert!(u32::from_bytes(&bytes).is_err());
        let bytes = 300u64.to_bytes();
        assert!(u8::from_bytes(&bytes).is_err());
    }

    #[test]
    fn corrupt_vec_length_is_rejected_early() {
        // Vec claiming u64::MAX elements with 2 bytes of payload.
        let mut buf = BytesMut::new();
        crate::varint::write_varint(&mut buf, u64::MAX);
        buf.put_u8(0);
        assert!(matches!(
            Vec::<u64>::from_bytes(&buf),
            Err(DecodeError::LengthOverflow { .. })
        ));
    }

    #[test]
    fn f64_preserves_exact_bits() {
        for v in [
            0.0,
            -0.0,
            61.827,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::MIN_POSITIVE,
        ] {
            let bytes = v.to_bytes();
            let back = f64::from_bytes(&bytes).unwrap();
            assert_eq!(back.to_bits(), v.to_bits());
        }
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut buf = BytesMut::new();
        crate::varint::write_varint(&mut buf, 2);
        buf.put_slice(&[0xff, 0xfe]);
        assert_eq!(
            String::from_bytes(&buf).unwrap_err(),
            DecodeError::InvalidUtf8
        );
    }

    #[test]
    fn from_bytes_rejects_trailing_garbage() {
        let mut bytes = 5u64.to_bytes();
        bytes.push(0);
        assert!(matches!(
            u64::from_bytes(&bytes),
            Err(DecodeError::TrailingBytes { remaining: 1 })
        ));
    }
}
