//! Fuzz-style property tests: decoding arbitrary bytes must never panic —
//! corrupt checkpoints and log records have to fail *gracefully* for
//! recovery to stay available.

// Test code: free to use wall clocks and hash maps (the determinism fence guards production code only).
#![allow(clippy::disallowed_types)]

use proptest::prelude::*;
use tart_codec::{Decode, Encode};
use tart_vtime::{Interval, IntervalSet, VirtualTime};

fn never_panics<T: Decode>(bytes: &[u8]) {
    // The result may be Ok (the bytes happened to parse) or Err; the only
    // failure mode is a panic or an allocation bomb, which proptest/CI
    // would catch as a crash or timeout.
    let _ = T::from_bytes(bytes);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn arbitrary_bytes_never_panic_primitives(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        never_panics::<u64>(&bytes);
        never_panics::<i64>(&bytes);
        never_panics::<f64>(&bytes);
        never_panics::<bool>(&bytes);
        never_panics::<String>(&bytes);
        never_panics::<Vec<u64>>(&bytes);
        never_panics::<Vec<String>>(&bytes);
        never_panics::<Option<u64>>(&bytes);
        never_panics::<std::collections::HashMap<String, u64>>(&bytes);
        never_panics::<std::collections::BTreeMap<u32, String>>(&bytes);
    }

    #[test]
    fn arbitrary_bytes_never_panic_vtime(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        never_panics::<VirtualTime>(&bytes);
        never_panics::<Interval>(&bytes);
        never_panics::<IntervalSet>(&bytes);
    }

    /// Bit-flip robustness: corrupting a valid encoding decodes to Err or
    /// to a *different valid value* — never a crash.
    #[test]
    fn bit_flips_in_valid_encodings_are_safe(
        v in proptest::collection::vec((any::<u32>(), ".{0,6}"), 0..8),
        byte_idx in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        let mut bytes = v.to_bytes();
        if !bytes.is_empty() {
            let idx = byte_idx.index(bytes.len());
            bytes[idx] ^= 1 << bit;
        }
        never_panics::<Vec<(u32, String)>>(&bytes);
    }

    /// Truncation robustness.
    #[test]
    fn truncations_of_valid_encodings_are_safe(
        v in proptest::collection::vec(".{0,12}", 0..10),
        cut in any::<prop::sample::Index>(),
    ) {
        let bytes = v.to_bytes();
        let cut = cut.index(bytes.len().max(1)).min(bytes.len());
        never_panics::<Vec<String>>(&bytes[..cut]);
    }
}
