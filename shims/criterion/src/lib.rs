//! Offline shim for `criterion`.
//!
//! The build container has no crates registry, so the real `criterion` is
//! unavailable. This shim keeps the workspace's benches compiling *and*
//! producing useful numbers: each benchmark runs a short warm-up, then times
//! batches of iterations over the configured measurement window and prints
//! mean ns/iter to stdout. No statistics, plots, or baseline comparison.
//!
//! Wired in via `[patch.crates-io]`; delete the patch entry to restore the
//! real crate when a registry is available.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Benchmark runner configuration and entry point.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the target total measurement window.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up duration before timing starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self, name, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named parameter for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id displaying just the parameter value.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }

    /// An id with a function name and a parameter value.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs a benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let name = format!("{}/{}", self.name, id.id);
        run_one(self.criterion, &name, &mut f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id.id);
        run_one(self.criterion, &name, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group (prints nothing extra in this shim).
    pub fn finish(self) {}
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` invocations of `routine`.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Prevents the compiler from optimizing away a value (re-export shape).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn run_one(config: &Criterion, name: &str, f: &mut dyn FnMut(&mut Bencher)) {
    // Warm-up while estimating per-iteration cost.
    let warm_deadline = Instant::now() + config.warm_up_time;
    let mut iters_done: u64 = 0;
    let warm_start = Instant::now();
    while Instant::now() < warm_deadline {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        iters_done += 1;
    }
    let per_iter = warm_start.elapsed().as_secs_f64() / iters_done.max(1) as f64;

    // Size batches so sample_size samples roughly fill the measurement window.
    let per_sample = config.measurement_time.as_secs_f64() / config.sample_size as f64;
    let batch = ((per_sample / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000_000);

    let mut total = Duration::ZERO;
    let mut iters = 0u64;
    for _ in 0..config.sample_size {
        let mut b = Bencher {
            iters: batch,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        total += b.elapsed;
        iters += batch;
    }

    let ns = total.as_secs_f64() * 1e9 / iters.max(1) as f64;
    println!("{name:<48} {ns:>14.1} ns/iter  ({iters} iters)");
}

/// Declares a benchmark group runner function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(5))
    }

    #[test]
    fn bench_function_runs_routine() {
        let mut c = quick();
        c.bench_function("smoke", |b| b.iter(|| 2u64 + 2));
    }

    #[test]
    fn groups_and_inputs_run() {
        let mut c = quick();
        let mut group = c.benchmark_group("group");
        for n in [1usize, 4] {
            group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
                b.iter(|| (0..n).sum::<usize>())
            });
        }
        group.finish();
    }
}
