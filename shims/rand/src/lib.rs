//! Offline shim for `rand` 0.8.
//!
//! TART only *implements* `rand::RngCore` for its own seed-stable `DetRng`
//! (for ecosystem interoperability) — it never consumes randomness from
//! `rand`. This shim provides exactly that trait surface.
//!
//! Wired in via `[patch.crates-io]`; delete the patch entry to restore the
//! real crate when a registry is available.

use std::fmt;

/// Error type for fallible RNG operations (never produced by TART's RNGs).
#[derive(Debug)]
pub struct Error {
    msg: &'static str,
}

impl Error {
    /// Creates an error with a static message.
    pub fn new(msg: &'static str) -> Self {
        Error { msg }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.msg)
    }
}

impl std::error::Error for Error {}

/// The core RNG trait (rand 0.8 shape).
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible [`RngCore::fill_bytes`].
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error>;
}

/// Named generators (placeholder module mirroring `rand::rngs`).
pub mod rngs {}
