//! Offline shim for the `crossbeam` facade crate.
//!
//! The build container used to grow this repository has no network access
//! and no vendored registry, so the real `crossbeam` cannot be fetched. The
//! workspace only uses `crossbeam::channel` (unbounded MPMC channels), which
//! this shim reimplements on `Mutex<VecDeque>` + `Condvar`. Semantics mirror
//! `crossbeam-channel`:
//!
//! * both `Sender` and `Receiver` are `Clone + Send + Sync`;
//! * `send` on a channel with no live receivers fails with [`SendError`];
//! * `recv` on an empty channel with no live senders fails with
//!   [`RecvError`]; while senders exist it blocks.
//!
//! It is wired in via `[patch.crates-io]` in the workspace `Cargo.toml`; if
//! the real crate ever becomes fetchable, deleting the patch entry restores
//! it with no source changes.

pub mod channel {
    //! Unbounded MPMC channels (the `crossbeam-channel` subset TART uses).

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
        /// Receivers currently parked in `ready`. Senders skip the condvar
        /// notification entirely while this is zero — on a busy channel the
        /// receiver is draining, not parked, so the common-case send is
        /// push + unlock with no futex wake.
        waiting: AtomicUsize,
        /// Set when a `notify_one` has been issued for a parked receiver
        /// that has not yet woken. With exactly one parked receiver a
        /// second notify is redundant — the woken receiver re-checks the
        /// queue under the lock before parking again — so senders skip
        /// the futex wake while this is set. On a single-CPU host a
        /// sender can run a long burst before a woken receiver is
        /// scheduled; without this flag every send in the burst pays a
        /// wake syscall for the same parked thread.
        wake_pending: AtomicBool,
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
            waiting: AtomicUsize::new(0),
            wake_pending: AtomicBool::new(false),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    /// Error returned by [`Sender::send`] when every receiver is gone; the
    /// unsent message is handed back.
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T> std::error::Error for SendError<T> {}

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty, disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => f.write_str("channel empty"),
                TryRecvError::Disconnected => f.write_str("channel disconnected"),
            }
        }
    }

    impl std::error::Error for TryRecvError {}

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed with the channel still empty.
        Timeout,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.write_str("recv timed out"),
                RecvTimeoutError::Disconnected => f.write_str("channel disconnected"),
            }
        }
    }

    impl std::error::Error for RecvTimeoutError {}

    /// The sending half; cloneable and shareable across threads.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Sender<T> {
        /// Enqueues `msg`, failing only if every receiver is gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(msg));
            }
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            q.push_back(msg);
            drop(q);
            // `waiting` is only incremented under the queue lock before
            // parking, so a receiver either saw this message while holding
            // the lock or its increment is visible here — no lost wakeup.
            let waiting = self.shared.waiting.load(Ordering::Relaxed);
            if waiting > 0 {
                // A pending wake can only stand in for this one when it
                // targets the *same* receiver, i.e. exactly one is parked.
                // With several parked receivers every send must notify.
                let first = !self.shared.wake_pending.swap(true, Ordering::AcqRel);
                if first || waiting > 1 {
                    self.shared.ready.notify_one();
                }
            }
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender gone: wake blocked receivers so they observe
                // the disconnect.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    /// The receiving half; cloneable and shareable across threads.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(msg) = q.pop_front() {
                    return Ok(msg);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                self.shared.waiting.fetch_add(1, Ordering::Relaxed);
                let waited = self.shared.ready.wait(q);
                self.shared.waiting.fetch_sub(1, Ordering::Relaxed);
                self.shared.wake_pending.store(false, Ordering::Release);
                q = waited.unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(msg) = q.pop_front() {
                    return Ok(msg);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                self.shared.waiting.fetch_add(1, Ordering::Relaxed);
                let waited = self.shared.ready.wait_timeout(q, deadline - now);
                self.shared.waiting.fetch_sub(1, Ordering::Relaxed);
                self.shared.wake_pending.store(false, Ordering::Release);
                let (guard, _res) = waited.unwrap_or_else(|e| e.into_inner());
                q = guard;
            }
        }

        /// Batch receive: blocks up to `timeout` for the first message,
        /// then drains up to `max` queued messages into `buf` under a
        /// **single** lock acquisition. Returns the number appended.
        ///
        /// This is the inbox hot path: an engine waking up under load pays
        /// one mutex round-trip for a whole batch instead of one per
        /// message (`crossbeam-channel` proper has no such API — its
        /// lock-free list makes per-message `try_recv` cheap; this shim's
        /// `Mutex<VecDeque>` does not).
        pub fn recv_batch_timeout(
            &self,
            buf: &mut Vec<T>,
            max: usize,
            timeout: Duration,
        ) -> Result<usize, RecvTimeoutError> {
            let mut deadline: Option<Instant> = None;
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if !q.is_empty() {
                    let take = q.len().min(max);
                    buf.extend(q.drain(..take));
                    return Ok(take);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                // The deadline is computed lazily: a wakeup that finds
                // messages queued never reads the clock at all.
                let now = Instant::now();
                let deadline = *deadline.get_or_insert(now + timeout);
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                self.shared.waiting.fetch_add(1, Ordering::Relaxed);
                let waited = self.shared.ready.wait_timeout(q, deadline - now);
                self.shared.waiting.fetch_sub(1, Ordering::Relaxed);
                self.shared.wake_pending.store(false, Ordering::Release);
                let (guard, _res) = waited.unwrap_or_else(|e| e.into_inner());
                q = guard;
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(msg) = q.pop_front() {
                return Ok(msg);
            }
            if self.shared.senders.load(Ordering::Acquire) == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }

        /// Drains currently queued messages without blocking.
        pub fn try_iter(&self) -> TryIter<'_, T> {
            TryIter { receiver: self }
        }

        /// Blocking iterator: yields until every sender is gone.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .len()
        }

        /// Returns `true` if no message is currently queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// Iterator over [`Receiver::try_iter`].
    pub struct TryIter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for TryIter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.try_recv().ok()
        }
    }

    /// Iterator over [`Receiver::iter`].
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_fifo() {
            let (tx, rx) = unbounded();
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            for i in 0..100 {
                assert_eq!(rx.recv(), Ok(i));
            }
        }

        #[test]
        fn disconnect_semantics() {
            let (tx, rx) = unbounded::<u32>();
            drop(rx);
            assert_eq!(tx.send(1), Err(SendError(1)));

            let (tx, rx) = unbounded::<u32>();
            tx.send(7).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(7));
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn timeout_fires_on_empty_channel() {
            let (tx, rx) = unbounded::<u32>();
            let start = Instant::now();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(20)),
                Err(RecvTimeoutError::Timeout)
            );
            assert!(start.elapsed() >= Duration::from_millis(20));
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(1)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn cross_thread_delivery_wakes_blocked_receiver() {
            let (tx, rx) = unbounded();
            let t = std::thread::spawn(move || rx.recv().unwrap());
            std::thread::sleep(Duration::from_millis(10));
            tx.send(42u64).unwrap();
            assert_eq!(t.join().unwrap(), 42);
        }

        #[test]
        fn recv_batch_drains_up_to_max_in_one_call() {
            let (tx, rx) = unbounded();
            for i in 0..10 {
                tx.send(i).unwrap();
            }
            let mut buf = Vec::new();
            let n = rx
                .recv_batch_timeout(&mut buf, 4, Duration::from_millis(10))
                .unwrap();
            assert_eq!((n, buf.as_slice()), (4, &[0, 1, 2, 3][..]));
            let n = rx
                .recv_batch_timeout(&mut buf, 100, Duration::from_millis(10))
                .unwrap();
            assert_eq!(n, 6, "remaining messages drain in one batch");
            assert_eq!(buf, (0..10).collect::<Vec<_>>());
            assert_eq!(
                rx.recv_batch_timeout(&mut buf, 4, Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
            drop(tx);
            assert_eq!(
                rx.recv_batch_timeout(&mut buf, 4, Duration::from_millis(5)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn recv_batch_wakes_on_cross_thread_send() {
            let (tx, rx) = unbounded();
            let t = std::thread::spawn(move || {
                let mut buf = Vec::new();
                rx.recv_batch_timeout(&mut buf, 8, Duration::from_secs(5))
                    .unwrap();
                buf
            });
            std::thread::sleep(Duration::from_millis(10));
            tx.send(42u64).unwrap();
            assert_eq!(t.join().unwrap(), vec![42]);
        }

        #[test]
        fn try_iter_drains_without_blocking() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            let got: Vec<i32> = rx.try_iter().collect();
            assert_eq!(got, vec![1, 2]);
            assert!(rx.try_iter().next().is_none());
        }
    }
}
