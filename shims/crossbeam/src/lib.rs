//! Offline shim for the `crossbeam` facade crate.
//!
//! The build container used to grow this repository has no network access
//! and no vendored registry, so the real `crossbeam` cannot be fetched. The
//! workspace only uses `crossbeam::channel` (unbounded MPMC channels), which
//! this shim reimplements on `Mutex<VecDeque>` + `Condvar`. Semantics mirror
//! `crossbeam-channel`:
//!
//! * both `Sender` and `Receiver` are `Clone + Send + Sync`;
//! * `send` on a channel with no live receivers fails with [`SendError`];
//! * `recv` on an empty channel with no live senders fails with
//!   [`RecvError`]; while senders exist it blocks.
//!
//! It is wired in via `[patch.crates-io]` in the workspace `Cargo.toml`; if
//! the real crate ever becomes fetchable, deleting the patch entry restores
//! it with no source changes.

pub mod channel {
    //! Unbounded MPMC channels (the `crossbeam-channel` subset TART uses).

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    /// Error returned by [`Sender::send`] when every receiver is gone; the
    /// unsent message is handed back.
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T> std::error::Error for SendError<T> {}

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty, disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => f.write_str("channel empty"),
                TryRecvError::Disconnected => f.write_str("channel disconnected"),
            }
        }
    }

    impl std::error::Error for TryRecvError {}

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed with the channel still empty.
        Timeout,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.write_str("recv timed out"),
                RecvTimeoutError::Disconnected => f.write_str("channel disconnected"),
            }
        }
    }

    impl std::error::Error for RecvTimeoutError {}

    /// The sending half; cloneable and shareable across threads.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Sender<T> {
        /// Enqueues `msg`, failing only if every receiver is gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(msg));
            }
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            q.push_back(msg);
            drop(q);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender gone: wake blocked receivers so they observe
                // the disconnect.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    /// The receiving half; cloneable and shareable across threads.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(msg) = q.pop_front() {
                    return Ok(msg);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                q = self
                    .shared
                    .ready
                    .wait(q)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(msg) = q.pop_front() {
                    return Ok(msg);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _res) = self
                    .shared
                    .ready
                    .wait_timeout(q, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                q = guard;
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(msg) = q.pop_front() {
                return Ok(msg);
            }
            if self.shared.senders.load(Ordering::Acquire) == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }

        /// Drains currently queued messages without blocking.
        pub fn try_iter(&self) -> TryIter<'_, T> {
            TryIter { receiver: self }
        }

        /// Blocking iterator: yields until every sender is gone.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .len()
        }

        /// Returns `true` if no message is currently queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// Iterator over [`Receiver::try_iter`].
    pub struct TryIter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for TryIter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.try_recv().ok()
        }
    }

    /// Iterator over [`Receiver::iter`].
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_fifo() {
            let (tx, rx) = unbounded();
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            for i in 0..100 {
                assert_eq!(rx.recv(), Ok(i));
            }
        }

        #[test]
        fn disconnect_semantics() {
            let (tx, rx) = unbounded::<u32>();
            drop(rx);
            assert_eq!(tx.send(1), Err(SendError(1)));

            let (tx, rx) = unbounded::<u32>();
            tx.send(7).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(7));
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn timeout_fires_on_empty_channel() {
            let (tx, rx) = unbounded::<u32>();
            let start = Instant::now();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(20)),
                Err(RecvTimeoutError::Timeout)
            );
            assert!(start.elapsed() >= Duration::from_millis(20));
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(1)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn cross_thread_delivery_wakes_blocked_receiver() {
            let (tx, rx) = unbounded();
            let t = std::thread::spawn(move || rx.recv().unwrap());
            std::thread::sleep(Duration::from_millis(10));
            tx.send(42u64).unwrap();
            assert_eq!(t.join().unwrap(), 42);
        }

        #[test]
        fn try_iter_drains_without_blocking() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            let got: Vec<i32> = rx.try_iter().collect();
            assert_eq!(got, vec![1, 2]);
            assert!(rx.try_iter().next().is_none());
        }
    }
}
