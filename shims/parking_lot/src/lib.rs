//! Offline shim for `parking_lot`.
//!
//! Provides the `Mutex`/`RwLock` subset TART uses, implemented over
//! `std::sync` with parking_lot's API shape: `lock()`/`read()`/`write()`
//! return guards directly (no `Result`), and a poisoned std lock is
//! recovered rather than propagated (parking_lot has no poisoning).
//!
//! Wired in via `[patch.crates-io]`; delete the patch entry to restore the
//! real crate when a registry is available.

use std::fmt;
use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock with parking_lot's panic-free API.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// A reader-writer lock with parking_lot's panic-free API.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(g) => f.debug_tuple("RwLock").field(&&*g).finish(),
            Err(sync::TryLockError::Poisoned(e)) => {
                f.debug_tuple("RwLock").field(&&*e.into_inner()).finish()
            }
            Err(sync::TryLockError::WouldBlock) => f.write_str("RwLock { <locked> }"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn poisoned_mutex_recovers() {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
