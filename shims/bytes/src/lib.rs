//! Offline shim for the `bytes` crate.
//!
//! Implements the `BytesMut`/`BufMut` subset the TART codec uses as a thin
//! wrapper over `Vec<u8>`. Multi-byte `put_*` writes are big-endian, exactly
//! like the real crate — the codec's wire format depends on it.
//!
//! Wired in via `[patch.crates-io]`; delete the patch entry to restore the
//! real crate when a registry is available.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A growable byte buffer (shim over `Vec<u8>`).
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BytesMut {
    vec: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut { vec: Vec::new() }
    }

    /// Creates an empty buffer with room for `capacity` bytes.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            vec: Vec::with_capacity(capacity),
        }
    }

    /// Number of bytes written.
    pub fn len(&self) -> usize {
        self.vec.len()
    }

    /// Returns `true` if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.vec.is_empty()
    }

    /// Ensures room for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.vec.reserve(additional);
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.vec.extend_from_slice(extend);
    }

    /// Clears the buffer.
    pub fn clear(&mut self) {
        self.vec.clear();
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.vec.clone()
    }

    /// The written bytes.
    pub fn as_ref_slice(&self) -> &[u8] {
        &self.vec
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.vec
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.vec
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.vec
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(b: BytesMut) -> Vec<u8> {
        b.vec
    }
}

impl From<&[u8]> for BytesMut {
    fn from(s: &[u8]) -> BytesMut {
        BytesMut { vec: s.to_vec() }
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in &self.vec {
            write!(f, "\\x{b:02x}")?;
        }
        write!(f, "\"")
    }
}

impl Extend<u8> for BytesMut {
    fn extend<T: IntoIterator<Item = u8>>(&mut self, iter: T) {
        self.vec.extend(iter);
    }
}

/// Byte-sink trait (shim of `bytes::BufMut`); multi-byte writes are
/// big-endian like the real crate.
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, n: u8) {
        self.put_slice(&[n]);
    }

    /// Appends a `u16`, big-endian.
    fn put_u16(&mut self, n: u16) {
        self.put_slice(&n.to_be_bytes());
    }

    /// Appends a `u32`, big-endian.
    fn put_u32(&mut self, n: u32) {
        self.put_slice(&n.to_be_bytes());
    }

    /// Appends a `u64`, big-endian.
    fn put_u64(&mut self, n: u64) {
        self.put_slice(&n.to_be_bytes());
    }

    /// Appends an `i64`, big-endian.
    fn put_i64(&mut self, n: i64) {
        self.put_slice(&n.to_be_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bits, big-endian.
    fn put_f64(&mut self, n: f64) {
        self.put_u64(n.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.vec.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_are_big_endian() {
        let mut b = BytesMut::new();
        b.put_u8(0x01);
        b.put_u64(0x0203_0405_0607_0809);
        b.put_slice(&[0xaa, 0xbb]);
        assert_eq!(
            &b[..],
            &[0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0xaa, 0xbb]
        );
        assert_eq!(b.len(), 11);
        assert_eq!(b.to_vec(), Vec::from(b.clone()));
    }

    #[test]
    fn deref_gives_slice_ops() {
        let mut b = BytesMut::with_capacity(4);
        assert!(b.is_empty());
        b.extend_from_slice(b"abc");
        assert_eq!(&b[1..], b"bc");
    }
}
