//! Offline shim for `proptest`.
//!
//! The build container has no crates registry, so the real `proptest` is
//! unavailable; this shim reimplements the subset of its API the TART
//! workspace uses — enough to *run* every property test, not just compile
//! them:
//!
//! * [`Strategy`] with `prop_map` / `prop_filter` / `boxed`;
//! * [`any`] for the primitive types and [`sample::Index`];
//! * integer/float ranges, `&str` patterns of the form `".{a,b}"`,
//!   [`strategy::Just`], tuples, [`collection::vec`],
//!   [`collection::btree_map`], [`option::of`], and weighted
//!   [`prop_oneof!`];
//! * the [`proptest!`] macro with `#![proptest_config(..)]` support, and the
//!   `prop_assert*` macros.
//!
//! Unlike the real crate there is **no shrinking**: a failing case panics
//! immediately, printing the case number and the RNG seed. Generation is
//! fully deterministic per test function (seeded from the test name and the
//! `PROPTEST_SEED` environment variable when set), so failures reproduce.
//!
//! Wired in via `[patch.crates-io]`; delete the patch entry to restore the
//! real crate when a registry is available.

/// Deterministic test RNG and run configuration.
pub mod test_runner {
    /// SplitMix64: tiny, seed-stable, good enough for case generation.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a generator from a 64-bit seed.
        pub fn from_seed(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// A uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0, "below(0)");
            // Rejection sampling to avoid modulo bias.
            let zone = u64::MAX - (u64::MAX % bound + 1) % bound;
            loop {
                let v = self.next_u64();
                if v <= zone {
                    return v % bound;
                }
            }
        }

        /// A uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Run configuration: how many cases each property executes.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(64);
            ProptestConfig { cases }
        }
    }

    /// The base seed for a named test: `PROPTEST_SEED` when set, else a
    /// stable hash of the test name (deterministic across runs).
    pub fn base_seed(test_name: &str) -> u64 {
        if let Ok(s) = std::env::var("PROPTEST_SEED") {
            if let Ok(n) = s.parse::<u64>() {
                return n;
            }
        }
        // FNV-1a over the test name.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

/// Strategies: composable value generators.
pub mod strategy {
    use super::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A generator of values of type `Self::Value`.
    ///
    /// Object-safe for sampling; the combinators require `Self: Sized`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Keeps only values satisfying `f`, re-drawing otherwise.
        fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                whence,
                f,
            }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<V> Strategy for Box<dyn Strategy<Value = V>> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            (**self).sample(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            (**self).sample(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// [`Strategy::prop_map`] adapter.
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// [`Strategy::prop_filter`] adapter.
    #[derive(Clone, Debug)]
    pub struct Filter<S, F> {
        pub(crate) inner: S,
        pub(crate) whence: &'static str,
        pub(crate) f: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1_000 {
                let v = self.inner.sample(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter '{}' rejected 1000 consecutive draws",
                self.whence
            );
        }
    }

    /// Weighted choice among boxed strategies ([`crate::prop_oneof!`]).
    pub struct WeightedUnion<V> {
        arms: Vec<(u32, BoxedStrategy<V>)>,
        total: u64,
    }

    impl<V> WeightedUnion<V> {
        /// Builds a union; weights must sum to a non-zero value.
        pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
            let total = arms.iter().map(|(w, _)| u64::from(*w)).sum();
            assert!(total > 0, "prop_oneof! needs at least one weighted arm");
            WeightedUnion { arms, total }
        }
    }

    impl<V> Strategy for WeightedUnion<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            let mut roll = rng.below(self.total);
            for (w, s) in &self.arms {
                let w = u64::from(*w);
                if roll < w {
                    return s.sample(rng);
                }
                roll -= w;
            }
            unreachable!("roll below total weight")
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    let off = rng.below(span);
                    ((self.start as i128) + off as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start() <= self.end(), "empty range strategy");
                    let span = (*self.end() as i128 - *self.start() as i128) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    let off = rng.below(span + 1);
                    ((*self.start() as i128) + off as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    /// `&str` as a strategy: supports the regex forms `".{lo,hi}"` (a
    /// string of `lo..=hi` arbitrary printable characters) and
    /// `"[class]{lo,hi}"` (characters drawn from a simple class of literals
    /// and `a-z`-style ranges); any other pattern yields itself literally.
    impl Strategy for &'static str {
        type Value = String;
        fn sample(&self, rng: &mut TestRng) -> String {
            if let Some((alphabet, lo, hi)) = parse_repeat(self) {
                let len = lo + rng.below((hi - lo) as u64 + 1) as usize;
                (0..len)
                    .map(|_| match &alphabet {
                        // Printable ASCII, '.'-matchable (no newline).
                        None => char::from(0x20 + rng.below(0x5f) as u8),
                        Some(chars) => chars[rng.below(chars.len() as u64) as usize],
                    })
                    .collect()
            } else {
                (*self).to_string()
            }
        }
    }

    /// Parses `".{lo,hi}"` or `"[class]{lo,hi}"`, returning the alphabet
    /// (`None` = any printable) and the repeat bounds.
    fn parse_repeat(pattern: &str) -> Option<(Option<Vec<char>>, usize, usize)> {
        let (head, rest) = if let Some(rest) = pattern.strip_prefix(".{") {
            (None, rest)
        } else if let Some(tail) = pattern.strip_prefix('[') {
            let (class, rest) = tail.split_once("]{")?;
            (Some(expand_class(class)?), rest)
        } else {
            return None;
        };
        let (lo, hi) = rest.strip_suffix('}')?.split_once(',')?;
        Some((head, lo.trim().parse().ok()?, hi.trim().parse().ok()?))
    }

    /// Expands a character class of literals and `a-z`-style ranges.
    fn expand_class(class: &str) -> Option<Vec<char>> {
        let chars: Vec<char> = class.chars().collect();
        let mut out = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            if i + 2 < chars.len() && chars[i + 1] == '-' {
                let (lo, hi) = (chars[i] as u32, chars[i + 2] as u32);
                if lo > hi {
                    return None;
                }
                out.extend((lo..=hi).filter_map(char::from_u32));
                i += 3;
            } else {
                out.push(chars[i]);
                i += 1;
            }
        }
        if out.is_empty() {
            None
        } else {
            Some(out)
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);

    /// Strategy produced by [`crate::arbitrary::any`].
    pub struct Any<T> {
        pub(crate) _marker: PhantomData<T>,
    }

    impl<T: crate::arbitrary::Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// `any::<T>()` and the [`Arbitrary`] trait.
pub mod arbitrary {
    use super::strategy::Any;
    use super::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "generate anything" strategy.
    pub trait Arbitrary {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The canonical strategy for `A`.
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any {
            _marker: PhantomData,
        }
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Mix finite decimals with raw bit patterns (infinities, NaNs,
            // subnormals) half the time, like real proptest's edge bias.
            if rng.next_u64() & 1 == 0 {
                f64::from_bits(rng.next_u64())
            } else {
                (rng.unit_f64() - 0.5) * 2e9
            }
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> char {
            char::from(0x20 + rng.below(0x5f) as u8)
        }
    }

    impl Arbitrary for crate::sample::Index {
        fn arbitrary(rng: &mut TestRng) -> crate::sample::Index {
            crate::sample::Index::from_unit(rng.unit_f64())
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::collections::BTreeMap;
    use std::ops::Range;

    /// An inclusive-exclusive size bound for generated collections.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            self.lo + rng.below((self.hi - self.lo) as u64) as usize
        }
    }

    /// Generates `Vec`s of `element` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Generates `BTreeMap`s from key/value strategies; the size bound is an
    /// upper bound (duplicate keys collapse, as in real proptest).
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }

    /// Strategy returned by [`btree_map`].
    #[derive(Clone, Debug)]
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn sample(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
            let len = self.size.sample(rng);
            (0..len)
                .map(|_| (self.key.sample(rng), self.value.sample(rng)))
                .collect()
        }
    }
}

/// `Option` strategies.
pub mod option {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Generates `Some` three times out of four, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// Strategy returned by [`of`].
    #[derive(Clone, Debug)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }
}

/// Index-into-a-collection helper.
pub mod sample {
    /// A position drawn uniformly from `[0, 1)`, projected onto any
    /// collection length with [`Index::index`].
    #[derive(Clone, Copy, Debug, PartialEq)]
    pub struct Index {
        unit: f64,
    }

    impl Index {
        pub(crate) fn from_unit(unit: f64) -> Index {
            Index { unit }
        }

        /// Projects onto `0..len`.
        ///
        /// # Panics
        ///
        /// Panics if `len` is zero.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            ((self.unit * len as f64) as usize).min(len - 1)
        }
    }
}

/// The glob-import surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Alias of the crate root, so `prop::sample::Index` etc. resolve.
    pub use crate as prop;
}

/// Runs one property: samples `cases` inputs and applies the body.
/// Used by the [`proptest!`] expansion; not part of the public API shape.
pub fn run_cases(test_name: &str, cases: u32, mut body: impl FnMut(&mut test_runner::TestRng, u32)) {
    let base = test_runner::base_seed(test_name);
    for case in 0..cases {
        let mut rng = test_runner::TestRng::from_seed(base ^ (u64::from(case) << 32 | 0x5eed));
        body(&mut rng, case);
    }
}

/// The property-test macro: deterministic case generation, no shrinking.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr);) => {};
    (
        cfg = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cases = ($cfg).cases;
            $crate::run_cases(stringify!($name), cases, |rng, case| {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), rng);)+
                let run = ::std::panic::AssertUnwindSafe(move || { $body });
                if let Err(e) = ::std::panic::catch_unwind(run) {
                    eprintln!(
                        "proptest shim: property '{}' failed at case {} (set PROPTEST_SEED to reproduce a specific base seed)",
                        stringify!($name), case
                    );
                    ::std::panic::resume_unwind(e);
                }
            });
        }
        $crate::__proptest_impl!{ cfg = ($cfg); $($rest)* }
    };
}

/// `assert!` under a property (no shrinking, so a plain assert).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `assert_eq!` under a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `assert_ne!` under a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Weighted (`w => strategy`) or uniform choice among strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::WeightedUnion::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::WeightedUnion::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::test_runner::TestRng::from_seed(1);
        for _ in 0..1_000 {
            let v = (3u64..17).sample(&mut rng);
            assert!((3..17).contains(&v));
            let s = (-5i64..6).sample(&mut rng);
            assert!((-5..6).contains(&s));
        }
    }

    #[test]
    fn string_pattern_generates_in_length_band() {
        let mut rng = crate::test_runner::TestRng::from_seed(2);
        for _ in 0..200 {
            let s = ".{2,6}".sample(&mut rng);
            assert!((2..=6).contains(&s.chars().count()), "{s:?}");
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let strat = prop_oneof![Just(1u8), Just(2), Just(3)];
        let mut rng = crate::test_runner::TestRng::from_seed(3);
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[strat.sample(&mut rng) as usize] = true;
        }
        assert_eq!(seen, [false, true, true, true]);
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = crate::collection::vec((0usize..4, any::<u32>()), 0..9);
        let draw = || {
            let mut rng = crate::test_runner::TestRng::from_seed(7);
            (0..50).map(|_| strat.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(), draw());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_binds_multiple_args(
            v in crate::collection::vec(any::<u8>(), 0..10),
            idx in any::<prop::sample::Index>(),
            flip in 0u8..8,
        ) {
            prop_assert!(v.len() < 10);
            prop_assert!(flip < 8);
            if !v.is_empty() {
                let i = idx.index(v.len());
                prop_assert!(i < v.len());
            }
        }

        #[test]
        fn filter_and_map_compose(x in (0u32..100).prop_map(|v| v * 2).prop_filter("even", |v| v % 2 == 0)) {
            prop_assert_eq!(x % 2, 0);
            prop_assert!(x < 200);
        }
    }
}
