//! Workspace-level integration tests: the public `tart` API exercised end
//! to end — determinism, recovery, and the simulation studies, through the
//! same facade a downstream user sees.

// Test code: free to use wall clocks and hash maps (the determinism fence guards production code only).
#![allow(clippy::disallowed_methods)]

use tart::prelude::*;
use tart::reference::{self, SENDER_LOOP_BLOCK};
use tart::{Cluster, ExecMode, FanInSim, SimConfig};

fn paper_config(spec: &AppSpec) -> ClusterConfig {
    let mut config = ClusterConfig::logical_time();
    for c in spec.components() {
        let est = if c.name().starts_with("Sender") {
            EstimatorSpec::per_iteration(SENDER_LOOP_BLOCK, 61_000)
        } else {
            EstimatorSpec::constant(VirtualDuration::from_micros(400))
        };
        config = config.with_estimator(c.id(), est);
    }
    config
}

fn workload() -> Vec<(&'static str, &'static str)> {
    vec![
        ("client1", "a b c"),
        ("client2", "c d"),
        ("client1", "a c d e"),
        ("client2", "e"),
        ("client1", "b b b"),
        ("client2", "a d e"),
    ]
}

fn run_once(spec_fn: impl Fn() -> AppSpec, engines: u32) -> Vec<(u64, String)> {
    let spec = spec_fn();
    let placement = Placement::round_robin(&spec, engines);
    let cluster = Cluster::deploy(spec.clone(), placement, paper_config(&spec)).expect("deploys");
    for (client, sentence) in workload() {
        cluster
            .injector(client)
            .expect("injector")
            .send(Value::from(sentence));
    }
    cluster.finish_inputs();
    let mut outs: Vec<(u64, String)> = cluster
        .shutdown()
        .into_iter()
        .map(|o| (o.vt.as_ticks(), o.payload.to_string()))
        .collect();
    outs.sort();
    outs
}

#[test]
fn outputs_identical_across_runs_and_placements() {
    let spec = || reference::fan_in_app(2).expect("valid");
    let one_engine = run_once(spec, 1);
    let two_engines_a = run_once(spec, 2);
    let two_engines_b = run_once(spec, 2);
    let three_engines = run_once(spec, 3);
    assert_eq!(one_engine.len(), 6);
    assert_eq!(
        one_engine, two_engines_a,
        "placement does not change behaviour"
    );
    assert_eq!(
        two_engines_a, two_engines_b,
        "repetition does not change behaviour"
    );
    assert_eq!(one_engine, three_engines);
}

#[test]
fn word_count_totals_are_correct() {
    // Independent of scheduling, the merger's final total must equal the
    // ground-truth word-count semantics applied in virtual-time order.
    let outs = run_once(|| reference::fan_in_app(2).expect("valid"), 2);
    let finals: Vec<i64> = outs
        .iter()
        .filter_map(|(_, p)| {
            // Extract "total: N" from the rendered map.
            p.split("total: ")
                .nth(1)?
                .trim_end_matches('}')
                .parse()
                .ok()
        })
        .collect();
    assert_eq!(finals.len(), 6);
    // Totals are non-decreasing (counts only accumulate).
    for w in finals.windows(2) {
        assert!(w[1] >= w[0], "running totals never decrease: {finals:?}");
    }
}

#[test]
fn wider_fan_in_works() {
    let spec = reference::fan_in_app(5).expect("valid");
    let placement = Placement::round_robin(&spec, 3);
    let cluster = Cluster::deploy(spec.clone(), placement, paper_config(&spec)).expect("deploys");
    for i in 0..5 {
        cluster
            .injector(&format!("client{}", i + 1))
            .expect("injector")
            .send(Value::from("x y z"));
    }
    cluster.finish_inputs();
    let outs = cluster.shutdown();
    assert_eq!(outs.len(), 5);
}

#[test]
fn failover_under_load_is_transparent() {
    let spec = reference::fan_in_app(2).expect("valid");
    let reference_run = run_once(|| reference::fan_in_app(2).expect("valid"), 2);

    let placement = Placement::round_robin(&spec, 2);
    let config = paper_config(&spec).with_checkpoint_every(1);
    let mut cluster = Cluster::deploy(spec.clone(), placement, config).expect("deploys");
    let work = workload();
    for (client, sentence) in &work[..3] {
        cluster
            .injector(client)
            .expect("injector")
            .send(Value::from(*sentence));
    }
    // Collect early outputs, give checkpoints a moment to ship.
    std::thread::sleep(std::time::Duration::from_millis(50));
    let mut outs = cluster.take_outputs();
    for engine in [EngineId::new(0), EngineId::new(1)] {
        cluster.kill(engine);
        cluster
            .promote(engine)
            .expect("promotion of a killed engine succeeds");
    }
    for (client, sentence) in &work[3..] {
        cluster
            .injector(client)
            .expect("injector")
            .send(Value::from(*sentence));
    }
    cluster.finish_inputs();
    outs.extend(cluster.shutdown());
    let mut deduped: Vec<(u64, String)> = Cluster::dedup_outputs(outs)
        .into_iter()
        .map(|o| (o.vt.as_ticks(), o.payload.to_string()))
        .collect();
    deduped.sort();
    assert_eq!(
        deduped, reference_run,
        "serial double failover is invisible"
    );
}

#[test]
fn simulation_smoke_matches_paper_shape() {
    let mut cfg = SimConfig::paper_iii_a();
    cfg.messages_per_sender = 2_000;
    let mut nondet_cfg = cfg.clone();
    nondet_cfg.mode = ExecMode::NonDeterministic;
    let nondet = FanInSim::new(nondet_cfg).run();
    let det = FanInSim::new(cfg).run();
    let overhead = det.overhead_percent_vs(&nondet);
    assert!(
        overhead > -2.0 && overhead < 12.0,
        "determinism overhead plausible: {overhead:.1}%"
    );
    assert_eq!(det.completed, 4_000);
}

#[test]
fn recalibration_mid_run_keeps_cluster_consistent() {
    let spec = reference::fan_in_app(2).expect("valid");
    let s1 = spec.component_by_name("Sender1").expect("exists").id();
    let placement = Placement::round_robin(&spec, 2);
    let config = paper_config(&spec).with_checkpoint_every(2);
    let mut cluster = Cluster::deploy(spec.clone(), placement, config).expect("deploys");
    let work = workload();
    for (client, sentence) in &work[..3] {
        cluster
            .injector(client)
            .expect("injector")
            .send(Value::from(*sentence));
    }
    std::thread::sleep(std::time::Duration::from_millis(30));
    let mut outs = cluster.take_outputs();
    // Re-calibrate Sender1 mid-run (a determinism fault), then fail and
    // recover the engine hosting it: the fault log must survive.
    cluster.recalibrate(s1, EstimatorSpec::per_iteration(SENDER_LOOP_BLOCK, 62_000));
    std::thread::sleep(std::time::Duration::from_millis(30));
    let merger_engine = EngineId::new(0); // round_robin: c0=Merger→e0
    cluster.kill(merger_engine);
    cluster
        .promote(merger_engine)
        .expect("promotion of a killed engine succeeds");
    for (client, sentence) in &work[3..] {
        cluster
            .injector(client)
            .expect("injector")
            .send(Value::from(*sentence));
    }
    cluster.finish_inputs();
    outs.extend(cluster.shutdown());
    let deduped = Cluster::dedup_outputs(outs);
    assert_eq!(deduped.len(), 6, "all six outputs delivered exactly once");
}

#[test]
fn instrumented_components_auto_recalibrate() {
    use std::sync::Arc;
    use tart::reference::{ConstantService, IN_PORT, OUT_PORT};
    use tart::Instrumented;

    // A pipeline of un-instrumented components wrapped by `Instrumented`:
    // the wrapper supplies per-port and payload-weight features, and the
    // engine's dynamic re-tuning fits an estimator from them (§II.G.4).
    let mut b = AppSpec::builder();
    let stage1 = b.component(
        "Stage1",
        Arc::new(|| Box::new(Instrumented::new(ConstantService::new())) as Box<dyn Component>),
    );
    let stage2 = b.component(
        "Stage2",
        Arc::new(|| Box::new(Instrumented::new(ConstantService::new())) as Box<dyn Component>),
    );
    b.wire_in("source", stage1, IN_PORT);
    b.wire(stage1, OUT_PORT, stage2, IN_PORT);
    b.wire_out(stage2, OUT_PORT, "sink");
    let spec = b.build().expect("valid");

    let placement = Placement::single_engine(&spec);
    let config = ClusterConfig::logical_time().with_auto_recalibrate_after(5);
    let cluster = Cluster::deploy(spec, placement, config).expect("deploys");
    for i in 0..12 {
        cluster
            .injector("source")
            .expect("injector")
            .send(Value::from(format!("payload number {i}")));
    }
    cluster.finish_inputs();
    // Metrics must show the determinism faults before shutdown.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    let mut outs = Vec::new();
    while outs.len() < 12 && std::time::Instant::now() < deadline {
        outs.extend(cluster.take_outputs());
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    let metrics = cluster
        .engine_metrics(EngineId::new(0))
        .expect("engine exists");
    assert!(
        metrics.determinism_faults >= 2,
        "both wrapped stages should re-tune, metrics: {metrics:?}"
    );
    outs.extend(cluster.shutdown());
    assert_eq!(outs.len(), 12, "re-tuning never disturbs delivery");
}
