//! TART — Time-Aware Run-Time.
//!
//! Umbrella crate re-exporting the public API of [`tart_core`]. See the
//! repository README for an architecture overview and `DESIGN.md` for the
//! full system inventory of this ICDCS 2009 reproduction.

#![forbid(unsafe_code)]

pub use tart_core::*;
