//! Transparent recovery: kill an engine mid-stream and watch replay make it
//! invisible — first by hand, then fully automatically.
//!
//! The Fig 1 application is deployed across two engines (senders on engine
//! 0, merger on engine 1), each with a passive replica receiving soft
//! checkpoints. Mid-run we fail-stop the merger's engine — its state and
//! every in-flight message are gone — then promote the replica. The
//! restored engine asks upstream retention buffers and the external-input
//! log to replay the ticks it is missing, re-executes deterministically,
//! and the consumer sees (after dropping stuttered duplicates by timestamp)
//! exactly the failure-free output.
//!
//! The final act hands the same drill to the runtime itself: with
//! supervision enabled, engines heartbeat a supervisor whose phi-accrual
//! failure detector notices an unannounced crash (injected here by a seeded
//! chaos plan) and runs kill → promote on its own.
//!
//! Run with:
//!
//! ```text
//! cargo run --example failover
//! ```

use std::time::Duration;

use tart::prelude::*;
use tart::reference::{self, SENDER_LOOP_BLOCK};
use tart::{ChaosOptions, ChaosPlan, Cluster};

fn config(spec: &AppSpec) -> ClusterConfig {
    let mut config = ClusterConfig::logical_time().with_checkpoint_every(2);
    for c in spec.components() {
        let est = if c.name().starts_with("Sender") {
            EstimatorSpec::per_iteration(SENDER_LOOP_BLOCK, 61_000)
        } else {
            EstimatorSpec::constant(tart::VirtualDuration::from_micros(400))
        };
        config = config.with_estimator(c.id(), est);
    }
    config
}

fn placement(spec: &AppSpec) -> Placement {
    let mut p = Placement::new();
    for c in spec.components() {
        let engine = if c.name() == "Merger" { 1 } else { 0 };
        p.assign(c.id(), EngineId::new(engine));
    }
    p
}

const SENTENCES: &[(&str, &str)] = &[
    ("client1", "alpha beta gamma"),
    ("client2", "beta gamma delta"),
    ("client1", "gamma delta epsilon"),
    ("client2", "delta epsilon alpha"),
    ("client1", "epsilon alpha beta"),
    ("client2", "alpha beta gamma delta"),
];

fn run(fail: bool) -> Vec<(u64, String)> {
    let spec = reference::fan_in_app(2).expect("valid topology");
    let mut cluster =
        Cluster::deploy(spec.clone(), placement(&spec), config(&spec)).expect("deploys");

    let mut outputs = Vec::new();
    for (i, (client, sentence)) in SENTENCES.iter().enumerate() {
        cluster
            .injector(client)
            .expect("client exists")
            .send(Value::from(*sentence));
        if fail && i == 2 {
            // Let some work flow and checkpoint, then pull the plug.
            std::thread::sleep(Duration::from_millis(30));
            outputs.extend(cluster.take_outputs());
            println!("  !! killing the merger's engine (checkpointed replica stays)");
            cluster.kill(EngineId::new(1));
            println!("  !! promoting the passive replica — replay begins");
            cluster
                .promote(EngineId::new(1))
                .expect("promotion of a killed engine succeeds");
        }
    }
    cluster.finish_inputs();
    outputs.extend(cluster.shutdown());

    Cluster::dedup_outputs(outputs)
        .into_iter()
        .map(|o| (o.vt.as_ticks(), o.payload.to_string()))
        .collect()
}

/// The same workload on a *supervised* cluster: a seeded chaos plan crashes
/// an engine unannounced; the heartbeat failure detector notices and runs
/// the drill with no operator in the loop.
fn supervised_run() -> Vec<(u64, String)> {
    let spec = reference::fan_in_app(2).expect("valid topology");
    let config = config(&spec).with_supervision(SupervisionConfig::fast());
    let cluster = Cluster::deploy(spec.clone(), placement(&spec), config).expect("deploys");

    let plan = ChaosPlan::generate(42, &cluster.engine_ids(), &ChaosOptions::fast());
    println!("  chaos plan (seed 42): {} events", plan.events.len());
    let chaos = cluster.launch_chaos(plan);

    for (client, sentence) in SENTENCES {
        cluster
            .injector(client)
            .expect("client exists")
            .send(Value::from(*sentence));
        std::thread::sleep(Duration::from_millis(80));
    }
    let report = chaos.wait();
    let metrics = cluster.supervision_metrics().expect("supervision on");
    println!(
        "  chaos: {} crash(es), {} partition(s), {} latency spike(s), {} unrecovered",
        report.crashes, report.partitions, report.latency_spikes, report.unrecovered
    );
    println!(
        "  supervisor: {} heartbeats seen, {} suspicion(s), {} automatic failover(s)",
        metrics.heartbeats_seen, metrics.suspicions, metrics.failovers
    );
    assert_eq!(report.unrecovered, 0, "supervisor must recover every crash");
    cluster.finish_inputs();
    Cluster::dedup_outputs(cluster.shutdown())
        .into_iter()
        .map(|o| (o.vt.as_ticks(), o.payload.to_string()))
        .collect()
}

fn main() {
    println!("failure-free run:");
    let clean = run(false);
    for (vt, payload) in &clean {
        println!("  vt:{vt} → {payload}");
    }

    println!("\nrun with mid-stream engine failure + manual promotion:");
    let recovered = run(true);
    for (vt, payload) in &recovered {
        println!("  vt:{vt} → {payload}");
    }

    assert_eq!(
        clean, recovered,
        "recovery must be transparent modulo output stutter"
    );
    println!(
        "\nOutputs identical — the failure was invisible to the consumer \
         (checkpoint + deterministic replay, §II.F of the paper)."
    );

    println!("\nsupervised run — unannounced crash, automatic failover:");
    let supervised = supervised_run();
    assert_eq!(
        clean, supervised,
        "automatic recovery must be exactly as transparent as manual"
    );
    println!(
        "\nOutputs identical again — nobody called kill() or promote(); the \
         heartbeat failure detector ran the drill on its own."
    );
}
