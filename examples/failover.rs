//! Transparent recovery: kill an engine mid-stream and watch replay make it
//! invisible.
//!
//! The Fig 1 application is deployed across two engines (senders on engine
//! 0, merger on engine 1), each with a passive replica receiving soft
//! checkpoints. Mid-run we fail-stop the merger's engine — its state and
//! every in-flight message are gone — then promote the replica. The
//! restored engine asks upstream retention buffers and the external-input
//! log to replay the ticks it is missing, re-executes deterministically,
//! and the consumer sees (after dropping stuttered duplicates by timestamp)
//! exactly the failure-free output.
//!
//! Run with:
//!
//! ```text
//! cargo run --example failover
//! ```

use std::time::Duration;

use tart::prelude::*;
use tart::reference::{self, SENDER_LOOP_BLOCK};
use tart::Cluster;

fn config(spec: &AppSpec) -> ClusterConfig {
    let mut config = ClusterConfig::logical_time().with_checkpoint_every(2);
    for c in spec.components() {
        let est = if c.name().starts_with("Sender") {
            EstimatorSpec::per_iteration(SENDER_LOOP_BLOCK, 61_000)
        } else {
            EstimatorSpec::constant(tart::VirtualDuration::from_micros(400))
        };
        config = config.with_estimator(c.id(), est);
    }
    config
}

fn placement(spec: &AppSpec) -> Placement {
    let mut p = Placement::new();
    for c in spec.components() {
        let engine = if c.name() == "Merger" { 1 } else { 0 };
        p.assign(c.id(), EngineId::new(engine));
    }
    p
}

const SENTENCES: &[(&str, &str)] = &[
    ("client1", "alpha beta gamma"),
    ("client2", "beta gamma delta"),
    ("client1", "gamma delta epsilon"),
    ("client2", "delta epsilon alpha"),
    ("client1", "epsilon alpha beta"),
    ("client2", "alpha beta gamma delta"),
];

fn run(fail: bool) -> Vec<(u64, String)> {
    let spec = reference::fan_in_app(2).expect("valid topology");
    let mut cluster =
        Cluster::deploy(spec.clone(), placement(&spec), config(&spec)).expect("deploys");

    let mut outputs = Vec::new();
    for (i, (client, sentence)) in SENTENCES.iter().enumerate() {
        cluster
            .injector(client)
            .expect("client exists")
            .send(Value::from(*sentence));
        if fail && i == 2 {
            // Let some work flow and checkpoint, then pull the plug.
            std::thread::sleep(Duration::from_millis(30));
            outputs.extend(cluster.take_outputs());
            println!("  !! killing the merger's engine (checkpointed replica stays)");
            cluster.kill(EngineId::new(1));
            println!("  !! promoting the passive replica — replay begins");
            cluster.promote(EngineId::new(1));
        }
    }
    cluster.finish_inputs();
    outputs.extend(cluster.shutdown());

    Cluster::dedup_outputs(outputs)
        .into_iter()
        .map(|o| (o.vt.as_ticks(), o.payload.to_string()))
        .collect()
}

fn main() {
    println!("failure-free run:");
    let clean = run(false);
    for (vt, payload) in &clean {
        println!("  vt:{vt} → {payload}");
    }

    println!("\nrun with mid-stream engine failure + promotion:");
    let recovered = run(true);
    for (vt, payload) in &recovered {
        println!("  vt:{vt} → {payload}");
    }

    assert_eq!(
        clean, recovered,
        "recovery must be transparent modulo output stutter"
    );
    println!(
        "\nOutputs identical — the failure was invisible to the consumer \
         (checkpoint + deterministic replay, §II.F of the paper)."
    );
}
