//! Quickstart: the paper's Fig 1 application end to end.
//!
//! Two word-count senders (the paper's Code Body 1) receive sentences from
//! external clients and fan into a merger, which emits a running total to
//! an external consumer. Everything runs deterministically under TART:
//! identical inputs always produce identical outputs, down to the virtual
//! timestamps.
//!
//! Run with:
//!
//! ```text
//! cargo run --example quickstart
//! ```

use tart::prelude::*;
use tart::reference::{self, SENDER_LOOP_BLOCK};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The application topology — static wiring, known before deployment.
    let spec = reference::fan_in_app(2)?;
    println!(
        "deploying {} components, {} wires",
        spec.components().len(),
        spec.wires().len()
    );

    // 2. Placement: everything on one engine here (see the failover example
    //    for a multi-engine deployment).
    let placement = Placement::single_engine(&spec);

    // 3. Estimators: the paper's 61 000 ticks (61 µs) per loop iteration for
    //    the senders, 400 µs per message for the merger.
    let mut config = ClusterConfig::logical_time();
    for c in spec.components() {
        let est = if c.name().starts_with("Sender") {
            EstimatorSpec::per_iteration(SENDER_LOOP_BLOCK, 61_000)
        } else {
            EstimatorSpec::constant(tart::VirtualDuration::from_micros(400))
        };
        config = config.with_estimator(c.id(), est);
    }

    // 4. Deploy and feed input.
    let cluster = Cluster::deploy(spec, placement, config)?;
    let sentences = [
        ("client1", "the quick brown fox"),
        ("client2", "jumps over the lazy dog"),
        ("client1", "the fox jumps again"),
        ("client2", "the dog sleeps"),
    ];
    for (client, sentence) in sentences {
        let vt = cluster
            .injector(client)
            .expect("client exists")
            .send(Value::from(sentence));
        println!("{client} sent {sentence:?} at {vt}");
    }
    cluster.finish_inputs();

    // 5. Collect output: one sequence-numbered running total per sentence.
    let outputs = cluster.shutdown();
    println!("\nconsumer received:");
    for out in &outputs {
        println!("  {} → {}", out.vt, out.payload);
    }
    assert_eq!(outputs.len(), sentences.len());
    println!(
        "\nRe-run this example: the outputs (including virtual times) are identical every time."
    );
    Ok(())
}
