//! Live estimator calibration and determinism faults.
//!
//! TART's virtual times come from estimators; the better the estimate, the
//! less pessimism delay. This example shows the full lifecycle from §II.H
//! and §II.G.4:
//!
//! 1. start with a rough "known costs per instruction" guess;
//! 2. measure real handler times while processing;
//! 3. fit the coefficient by linear regression (the paper's Eq. 2);
//! 4. install it as a **determinism fault** — logged with its virtual time
//!    so replay uses the old estimator before the switch point and the new
//!    one after.
//!
//! Run with:
//!
//! ```text
//! cargo run --example calibration
//! ```

// Test code: free to use wall clocks and hash maps (the determinism fence guards production code only).
#![allow(clippy::disallowed_methods)]

use std::time::Instant;

use tart::prelude::*;
use tart::reference::{WordCountSender, IN_PORT, SENDER_LOOP_BLOCK};
use tart::tart_model::RecordingCtx;
use tart::{Calibrator, EstimatorSchedule};

fn main() {
    // 1. The rough static guess: 500 ns per loop iteration.
    let initial = EstimatorSpec::per_iteration(SENDER_LOOP_BLOCK, 500);
    let mut schedule = EstimatorSchedule::new(initial);
    println!(
        "initial estimator: {:?}",
        schedule.active_at(VirtualTime::ZERO)
    );

    // 2. Run the real component, sampling features and measured times — the
    //    runtime does this transparently; here we drive it by hand.
    let mut component = WordCountSender::new();
    let mut calibrator = Calibrator::new(300);
    let vocab: Vec<String> = (0..500)
        .map(|i| format!("vocabulary-word-{i:03}"))
        .collect();
    let mut virtual_now = VirtualTime::ZERO;
    let mut sentence_no = 0u64;
    while !calibrator.is_ready() {
        sentence_no += 1;
        let words: Vec<Value> = (0..(sentence_no % 19 + 1))
            .map(|w| Value::from(vocab[((sentence_no * 7 + w) % 500) as usize].as_str()))
            .collect();
        let sentence = Value::List(words);
        let mut ctx = RecordingCtx::at(virtual_now);
        let start = Instant::now();
        for _ in 0..100 {
            component.on_message(IN_PORT, &sentence, &mut ctx);
        }
        let measured = (start.elapsed().as_nanos() / 100) as u64;
        let features = ctx.take_features();
        // The context accumulated 100 runs of features; scale down.
        let per_run = Features::single(SENDER_LOOP_BLOCK, features.count(SENDER_LOOP_BLOCK) / 100);
        virtual_now = virtual_now + schedule.estimate_at(virtual_now, &per_run);
        calibrator.add_sample(per_run, measured.max(1));
    }
    println!(
        "collected {} samples up to {virtual_now}",
        calibrator.sample_count()
    );

    // 3. Fit the paper's through-origin regression.
    let (fitted, fit) = calibrator
        .fit_through_origin(SENDER_LOOP_BLOCK)
        .expect("enough samples");
    println!(
        "fitted: {:?}  (R² = {:.3}, residual skew {:+.2})",
        fitted,
        fit.r_squared,
        fit.residuals.skewness()
    );

    // 4. Install it as a determinism fault at the next tick. The fault
    //    record is what the runtime logs synchronously to the replica.
    let fault = schedule
        .recalibrate_at(virtual_now.next(), fitted)
        .expect("strictly later than any prior switch");
    println!(
        "determinism fault logged: switch at {} to {:?}",
        fault.vt, fault.new_spec
    );

    // Replay honours the switch point: before it, the old estimate; after
    // it, the new one.
    let probe = Features::single(SENDER_LOOP_BLOCK, 10);
    let before = schedule.estimate_at(fault.vt.prev(), &probe);
    let after = schedule.estimate_at(fault.vt, &probe);
    println!("estimate for 10 iterations: before switch {before}, after switch {after}");
    assert_eq!(
        before.as_ticks(),
        5_000,
        "old coefficient until the logged vt"
    );
    assert_ne!(before, after, "new coefficient from the logged vt on");

    // A replica replaying the fault log reconstructs the same schedule.
    let mut replayed = EstimatorSchedule::new(EstimatorSpec::per_iteration(SENDER_LOOP_BLOCK, 500));
    replayed.apply_fault(&fault).expect("fault log is monotone");
    assert_eq!(replayed, schedule);
    println!("replayed schedule identical — recalibration survives failover.");
}
