//! A domain scenario: windowed sensor aggregation with custom components.
//!
//! This is the kind of stateful event-processing pipeline the paper's
//! introduction motivates ("components keep state in order to correlate
//! events from different sources or to average or aggregate events"). Two
//! sensor gateways normalize readings from external sensors; a windowed
//! aggregator correlates them, emitting min/mean/max every N readings. All
//! state lives in ordinary checkpointable containers — no transactions, no
//! entity beans — and the whole pipeline is recoverable by construction.
//!
//! Run with:
//!
//! ```text
//! cargo run --example stream_aggregation
//! ```

use std::sync::Arc;

use tart::prelude::*;
use tart::reference::{IN_PORT, OUT_PORT};
use tart::Cluster;

/// Normalizes raw sensor payloads: filters junk, converts to millivolts.
#[derive(Debug, Default)]
struct Gateway {
    seen: CkptCell<u64>,
    rejected: CkptCell<u64>,
}

impl Component for Gateway {
    fn on_message(&mut self, _port: PortId, msg: &Value, ctx: &mut dyn Ctx) {
        ctx.tick_block(BlockId(0), 1);
        self.seen.update(|s| *s += 1);
        match msg.as_f64() {
            Some(volts) if volts.is_finite() && (0.0..=5.0).contains(&volts) => {
                ctx.send(OUT_PORT, Value::F64(volts * 1_000.0));
            }
            _ => self.rejected.update(|r| *r += 1),
        }
    }

    fn checkpoint(&mut self, mode: CheckpointMode, vt: VirtualTime) -> Snapshot {
        let mut snap = Snapshot::new(vt);
        if let Some(chunk) = self.seen.take_chunk(mode) {
            snap.put("seen", chunk);
        }
        if let Some(chunk) = self.rejected.take_chunk(mode) {
            snap.put("rejected", chunk);
        }
        snap
    }

    fn restore(&mut self, snapshot: &Snapshot) -> Result<(), RestoreError> {
        for (field, chunk) in snapshot.iter() {
            let cell = match field {
                "seen" => &mut self.seen,
                "rejected" => &mut self.rejected,
                other => {
                    return Err(RestoreError::UnknownField {
                        field: other.to_owned(),
                    })
                }
            };
            cell.apply_chunk(chunk)
                .map_err(|source| RestoreError::Corrupt {
                    field: field.to_owned(),
                    source,
                })?;
        }
        Ok(())
    }
}

/// Correlates readings from all gateways into fixed-size windows.
#[derive(Debug)]
struct WindowAggregator {
    window: CkptVec<f64>,
    emitted: CkptCell<u64>,
    window_size: usize,
}

impl WindowAggregator {
    fn new(window_size: usize) -> Self {
        WindowAggregator {
            window: CkptVec::new(),
            emitted: CkptCell::new(0),
            window_size,
        }
    }
}

impl Component for WindowAggregator {
    fn on_message(&mut self, _port: PortId, msg: &Value, ctx: &mut dyn Ctx) {
        ctx.tick_block(BlockId(0), 1);
        let Some(mv) = msg.as_f64() else { return };
        self.window.push(mv);
        if self.window.len() >= self.window_size {
            let values = self.window.as_slice();
            let min = values.iter().copied().fold(f64::INFINITY, f64::min);
            let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let mean = values.iter().sum::<f64>() / values.len() as f64;
            self.window.clear();
            self.emitted.update(|e| *e += 1);
            ctx.send(
                OUT_PORT,
                Value::map([
                    ("window", Value::I64(*self.emitted.get() as i64)),
                    ("min_mv", Value::F64(min)),
                    ("mean_mv", Value::F64(mean)),
                    ("max_mv", Value::F64(max)),
                ]),
            );
        }
    }

    fn checkpoint(&mut self, mode: CheckpointMode, vt: VirtualTime) -> Snapshot {
        let mut snap = Snapshot::new(vt);
        if let Some(chunk) = self.window.take_chunk(mode) {
            snap.put("window", chunk);
        }
        if let Some(chunk) = self.emitted.take_chunk(mode) {
            snap.put("emitted", chunk);
        }
        snap
    }

    fn restore(&mut self, snapshot: &Snapshot) -> Result<(), RestoreError> {
        for (field, chunk) in snapshot.iter() {
            let result = match field {
                "window" => self.window.apply_chunk(chunk),
                "emitted" => self.emitted.apply_chunk(chunk),
                other => {
                    return Err(RestoreError::UnknownField {
                        field: other.to_owned(),
                    })
                }
            };
            result.map_err(|source| RestoreError::Corrupt {
                field: field.to_owned(),
                source,
            })?;
        }
        Ok(())
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Topology: sensorA → Gateway A ─┐
    //           sensorB → Gateway B ─┴→ WindowAggregator → dashboard
    let mut b = AppSpec::builder();
    let agg = b.component(
        "Aggregator",
        Arc::new(|| Box::new(WindowAggregator::new(4)) as Box<dyn Component>),
    );
    let gw_a = b.component(
        "GatewayA",
        Arc::new(|| Box::new(Gateway::default()) as Box<dyn Component>),
    );
    let gw_b = b.component(
        "GatewayB",
        Arc::new(|| Box::new(Gateway::default()) as Box<dyn Component>),
    );
    b.wire_in("sensorA", gw_a, IN_PORT);
    b.wire_in("sensorB", gw_b, IN_PORT);
    b.wire(gw_a, OUT_PORT, agg, IN_PORT);
    b.wire(gw_b, OUT_PORT, agg, IN_PORT);
    b.wire_out(agg, OUT_PORT, "dashboard");
    let spec = b.build()?;

    let placement = Placement::single_engine(&spec);
    let mut config = ClusterConfig::logical_time();
    for c in spec.components() {
        // A crude constant estimator is plenty for this workload.
        config = config.with_estimator(
            c.id(),
            EstimatorSpec::constant(tart::VirtualDuration::from_micros(20)),
        );
    }
    let cluster = Cluster::deploy(spec, placement, config)?;

    // Interleaved sensor readings, including junk the gateways reject.
    let readings_a = [3.30, 3.35, f64::NAN, 3.28, 3.40, 9.99, 3.31, 3.29];
    let readings_b = [3.10, 3.12, 3.08, -1.0, 3.15, 3.11, 3.09, 3.16];
    for (a, b_val) in readings_a.iter().zip(readings_b.iter()) {
        cluster.injector("sensorA").unwrap().send(Value::F64(*a));
        cluster
            .injector("sensorB")
            .unwrap()
            .send(Value::F64(*b_val));
    }
    cluster.finish_inputs();

    let outputs = cluster.shutdown();
    println!("dashboard received {} window aggregates:", outputs.len());
    for out in &outputs {
        println!("  {} → {}", out.vt, out.payload);
    }
    // 13 valid readings (3 rejected) → 3 full windows of 4.
    assert_eq!(outputs.len(), 3);
    Ok(())
}
