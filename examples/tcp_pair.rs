//! Two engine "hosts" joined by real TCP sockets.
//!
//! The paper's §III.C experiment ran the senders on one machine and the
//! merger on another. This example builds exactly that split with the
//! `tart_engine::net` building blocks: each host has its own router; remote
//! engines are spliced in over length-prefixed, CRC-protected TCP frames.
//! Run the two halves in one process here; in production each half would be
//! its own process on its own machine, connected by the same three calls.
//!
//! Run with:
//!
//! ```text
//! cargo run --example tcp_pair
//! ```

use std::time::Duration;

use crossbeam::channel::unbounded;
use tart::prelude::*;
use tart::reference::{fan_in_app, SENDER_LOOP_BLOCK};
use tart::tart_engine::net::{remote_engine, TcpInbound};
use tart::tart_engine::{EngineCore, Envelope, Flow, ReplicaStore, Router};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = fan_in_app(2)?;
    let mut placement = Placement::new();
    for c in spec.components() {
        let engine = if c.name() == "Merger" { 1 } else { 0 };
        placement.assign(c.id(), EngineId::new(engine));
    }
    let mut config = ClusterConfig::logical_time();
    for c in spec.components() {
        let est = if c.name().starts_with("Sender") {
            EstimatorSpec::per_iteration(SENDER_LOOP_BLOCK, 61_000)
        } else {
            EstimatorSpec::constant(VirtualDuration::from_micros(400))
        };
        config = config.with_estimator(c.id(), est);
    }

    // ---- "Host A": the sender engine. -----------------------------------
    let router_a = Router::new(FaultPlan::none());
    let (a_tx, a_rx) = unbounded();
    router_a.register(EngineId::new(0), a_tx);
    let (outs_a, _drop_a) = unbounded();
    let core_a = EngineCore::new(
        EngineId::new(0),
        &spec,
        &placement,
        &config,
        router_a.clone(),
        ReplicaStore::new(),
        outs_a,
    );

    // ---- "Host B": the merger engine. ------------------------------------
    let router_b = Router::new(FaultPlan::none());
    let (b_tx, b_rx) = unbounded();
    router_b.register(EngineId::new(1), b_tx);
    let (outs_b, collected) = unbounded();
    let core_b = EngineCore::new(
        EngineId::new(1),
        &spec,
        &placement,
        &config,
        router_b.clone(),
        ReplicaStore::new(),
        outs_b,
    );

    // ---- The actual network between them. --------------------------------
    let inbound_b = TcpInbound::listen("127.0.0.1:0", router_b.clone())?;
    let inbound_a = TcpInbound::listen("127.0.0.1:0", router_a.clone())?;
    println!(
        "host A listening on {}, host B on {}",
        inbound_a.local_addr(),
        inbound_b.local_addr()
    );
    // Keep the link handles alive: dropping a RemoteLink stops its writer.
    let link_a_to_b = remote_engine(&router_a, EngineId::new(1), ("127.0.0.1", inbound_b.port()))?;
    let link_b_to_a = remote_engine(&router_b, EngineId::new(0), ("127.0.0.1", inbound_a.port()))?;

    // ---- Run both engine loops. -------------------------------------------
    let run = |mut core: EngineCore, rx: crossbeam::channel::Receiver<Envelope>| {
        std::thread::spawn(move || {
            let mut draining = false;
            loop {
                match rx.recv_timeout(Duration::from_micros(200)) {
                    Ok(env) => match core.handle(env) {
                        Flow::Die => return,
                        Flow::Drain => draining = true,
                        Flow::Continue => {}
                    },
                    Err(crossbeam::channel::RecvTimeoutError::Timeout) => core.on_idle_tick(),
                    Err(crossbeam::channel::RecvTimeoutError::Disconnected) => return,
                }
                core.pump();
                if draining && core.drain_step() {
                    return;
                }
            }
        })
    };
    let engine_a = run(core_a, a_rx);
    let engine_b = run(core_b, b_rx);

    // ---- External input arrives at host A. --------------------------------
    let wires: Vec<WireId> = spec.external_inputs().iter().map(|w| w.id()).collect();
    let workload = [
        (0usize, 1_000_000u64, "tcp frames carry ticks"),
        (1, 2_000_000, "across real sockets"),
        (0, 3_000_000, "and determinism survives"),
        (1, 4_000_000, "the journey intact"),
    ];
    let mut prev = [0u64; 2];
    for (client, ts, sentence) in workload {
        router_a.send(
            EngineId::new(0),
            Envelope::Data {
                wire: wires[client],
                vt: VirtualTime::from_ticks(ts),
                prev_vt: VirtualTime::from_ticks(prev[client]),
                payload: Value::from(sentence),
            },
        );
        prev[client] = ts;
    }
    for (client, wire) in wires.iter().enumerate() {
        router_a.send(
            EngineId::new(0),
            Envelope::Eos {
                wire: *wire,
                last_data: VirtualTime::from_ticks(prev[client]),
            },
        );
    }
    router_a.send(EngineId::new(0), Envelope::Drain);
    router_b.send(EngineId::new(1), Envelope::Drain);
    engine_a.join().expect("host A drains");
    engine_b.join().expect("host B drains");

    println!("\nconsumer (host B) received:");
    let mut n = 0;
    while let Ok(out) = collected.try_recv() {
        println!("  {} → {}", out.vt, out.payload);
        n += 1;
    }
    assert_eq!(n, workload.len());
    println!(
        "\nlink A→B health: {:?}\nlink B→A health: {:?}",
        link_a_to_b.snapshot(),
        link_b_to_a.snapshot()
    );
    println!("\nSame virtual times as any other transport — the network is invisible.");
    Ok(())
}
