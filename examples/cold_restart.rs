//! Cold restart: survive the loss of the *whole* cluster.
//!
//! Replica promotion (see the `failover` example) handles one engine dying
//! while its peers keep running. This example exercises the harsher drill:
//! every process is gone at once — power cut, `kill -9`, kernel panic — and
//! the only survivors are the on-disk write-ahead log and checkpoint store.
//! Relaunching from that directory must reproduce, after dropping stuttered
//! duplicates by timestamp, exactly the failure-free output.
//!
//! Three modes, built for a CI drill that SIGKILLs the process mid-run:
//!
//! ```text
//! cargo run --example cold_restart -- clean          # failure-free reference
//! cargo run --example cold_restart -- crash <dir>    # run with durability; expects to be killed
//! cargo run --example cold_restart -- recover <dir>  # relaunch from <dir>, finish the workload
//! ```
//!
//! Each mode prints one `consumer\twire\tvt\tpayload` line per output; the
//! union of the `crash` and `recover` lines, deduplicated, must equal the
//! `clean` lines (`sort -u crash recover | diff - <(sort -u clean)`).

use std::io::Write;
use std::time::Duration;

use tart::prelude::*;
use tart::reference::{self, SENDER_LOOP_BLOCK};
use tart::{Cluster, FsyncPolicy};

const SENTENCES: &[(&str, &str)] = &[
    ("client1", "alpha beta gamma"),
    ("client2", "beta gamma delta"),
    ("client1", "gamma delta epsilon"),
    ("client2", "delta epsilon alpha"),
    ("client1", "epsilon alpha beta"),
    ("client2", "alpha beta gamma delta"),
    ("client1", "beta delta"),
    ("client2", "gamma epsilon alpha beta"),
    ("client1", "delta alpha"),
    ("client2", "epsilon beta gamma"),
];

fn config(spec: &AppSpec) -> ClusterConfig {
    let mut config = ClusterConfig::logical_time().with_checkpoint_every(2);
    for c in spec.components() {
        let est = if c.name().starts_with("Sender") {
            EstimatorSpec::per_iteration(SENDER_LOOP_BLOCK, 61_000)
        } else {
            EstimatorSpec::per_iteration(BlockId(0), 400_000)
        };
        config = config.with_estimator(c.id(), est);
    }
    config
}

fn placement(spec: &AppSpec) -> Placement {
    let mut p = Placement::new();
    for c in spec.components() {
        let engine = if c.name() == "Merger" { 1 } else { 0 };
        p.assign(c.id(), EngineId::new(engine));
    }
    p
}

/// Prints outputs in a line format stable across runs, flushing each line
/// so a SIGKILL loses at most the line being written.
fn print_outputs(outputs: Vec<OutputRecord>) {
    let mut stdout = std::io::stdout().lock();
    for o in Cluster::dedup_outputs(outputs) {
        writeln!(
            stdout,
            "{}\t{}\t{}\t{}",
            o.consumer,
            o.wire,
            o.vt.as_ticks(),
            o.payload
        )
        .expect("stdout");
        stdout.flush().expect("stdout");
    }
}

/// Failure-free reference run: no durability, no crash.
fn clean() {
    let spec = reference::fan_in_app(2).expect("valid topology");
    let cluster = Cluster::deploy(spec.clone(), placement(&spec), config(&spec)).expect("deploys");
    for (client, sentence) in SENTENCES {
        cluster
            .injector(client)
            .expect("client exists")
            .send(Value::from(*sentence));
    }
    cluster.finish_inputs();
    print_outputs(cluster.shutdown());
}

/// Runs the workload with the durability layer on, pacing the sends and
/// streaming outputs as they surface. Never exits on its own: the harness
/// is expected to SIGKILL this process at an arbitrary moment.
fn crash(dir: &str) {
    let spec = reference::fan_in_app(2).expect("valid topology");
    let config = config(&spec).with_durability(dir, FsyncPolicy::Always);
    let cluster = Cluster::deploy(spec.clone(), placement(&spec), config).expect("deploys");
    for (i, (client, sentence)) in SENTENCES.iter().enumerate() {
        cluster
            .injector(client)
            .expect("client exists")
            .send(Value::from(*sentence));
        std::thread::sleep(Duration::from_millis(120));
        if i % 2 == 1 {
            for engine in cluster.engine_ids() {
                cluster.checkpoint_now(engine);
            }
        }
        print_outputs(cluster.take_outputs());
    }
    // Keep streaming until the lights go out.
    loop {
        std::thread::sleep(Duration::from_millis(50));
        print_outputs(cluster.take_outputs());
    }
}

/// Relaunches from the durable directory, re-sends everything the WAL
/// never made durable, and finishes the workload.
fn recover(dir: &str) {
    let spec = reference::fan_in_app(2).expect("valid topology");
    let config = config(&spec).with_durability(dir, FsyncPolicy::Always);
    let (cluster, report) = Cluster::recover_from_disk(spec.clone(), placement(&spec), config)
        .expect("recovers from disk");
    eprintln!(
        "recovered: {} durable sends, {} bytes torn, {} engines restored",
        report.wal_records,
        report.wal_truncated_bytes,
        report.engines.len()
    );
    // Anything past the durable record count was never acknowledged; a real
    // producer re-sends it, and the restored logical clock reproduces the
    // original timestamps so duplicates collapse by vt downstream.
    for (client, sentence) in &SENTENCES[report.wal_records.min(SENTENCES.len())..] {
        cluster
            .injector(client)
            .expect("client exists")
            .send(Value::from(*sentence));
    }
    cluster.finish_inputs();
    // Snapshot only after shutdown() has drained the engines: the counters
    // are live, and a report taken mid-drain undercounts deliveries.
    let obs = std::sync::Arc::clone(cluster.obs());
    print_outputs(cluster.shutdown());
    match tart::write_report(&obs.snapshot()) {
        Ok(path) => eprintln!("obs report written to {}", path.display()),
        Err(e) => eprintln!("obs report not written: {e}"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("clean") => clean(),
        Some("crash") => crash(args.get(2).expect("usage: crash <dir>")),
        Some("recover") => recover(args.get(2).expect("usage: recover <dir>")),
        _ => {
            eprintln!("usage: cold_restart clean | crash <dir> | recover <dir>");
            std::process::exit(2);
        }
    }
}
